//! Rigid transforms (rotation + translation) between frames.
//!
//! Calibration rigs express scan trajectories in a local frame (the paper's
//! Fig. 11 puts `L1` on the x-axis) and then place that frame in front of
//! each antenna. [`Isometry`] captures exactly that mapping: a proper
//! rotation followed by a translation, with composition and inversion.

use serde::{Deserialize, Serialize};

use crate::point::{Point3, Vec3};
use crate::GeomError;

/// A rigid transform `p ↦ R·p + t` with `R` a proper rotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Isometry {
    /// Rotation matrix rows.
    rows: [Vec3; 3],
    /// Translation applied after the rotation.
    translation: Vec3,
}

impl Isometry {
    /// The identity transform.
    pub fn identity() -> Self {
        Isometry {
            rows: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: Vec3::new(0.0, 0.0, 0.0),
        }
    }

    /// Pure translation.
    pub fn translation(t: Vec3) -> Self {
        Isometry {
            translation: t,
            ..Isometry::identity()
        }
    }

    /// Rotation by `angle` radians about the z-axis (right-handed).
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Isometry {
            rows: [
                Vec3::new(c, -s, 0.0),
                Vec3::new(s, c, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: Vec3::new(0.0, 0.0, 0.0),
        }
    }

    /// Rotation by `angle` radians about the x-axis.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Isometry {
            rows: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, c, -s),
                Vec3::new(0.0, s, c),
            ],
            translation: Vec3::new(0.0, 0.0, 0.0),
        }
    }

    /// Rotation by `angle` radians about the y-axis.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Isometry {
            rows: [
                Vec3::new(c, 0.0, s),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(-s, 0.0, c),
            ],
            translation: Vec3::new(0.0, 0.0, 0.0),
        }
    }

    /// Builds a frame from orthonormal basis vectors (the columns of `R`)
    /// and an origin: local coordinates `(u, v, w)` map to
    /// `origin + u·e1 + v·e2 + w·e3`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] when the basis is not
    /// right-handed orthonormal (tolerance `1e-9`).
    pub fn from_basis(origin: Point3, e1: Vec3, e2: Vec3, e3: Vec3) -> Result<Self, GeomError> {
        let tol = 1e-9;
        let orthonormal = (e1.norm() - 1.0).abs() < tol
            && (e2.norm() - 1.0).abs() < tol
            && (e3.norm() - 1.0).abs() < tol
            && e1.dot(e2).abs() < tol
            && e1.dot(e3).abs() < tol
            && e2.dot(e3).abs() < tol;
        let right_handed = (e1.cross(e2) - e3).norm() < 1e-6;
        if !orthonormal || !right_handed {
            return Err(GeomError::InvalidInput {
                operation: "isometry from basis",
                found: "basis is not right-handed orthonormal".to_string(),
            });
        }
        // Columns e1 e2 e3 → rows are (e1.x, e2.x, e3.x), ...
        Ok(Isometry {
            rows: [
                Vec3::new(e1.x, e2.x, e3.x),
                Vec3::new(e1.y, e2.y, e3.y),
                Vec3::new(e1.z, e2.z, e3.z),
            ],
            translation: origin - Point3::ORIGIN,
        })
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point3) -> Point3 {
        let v = p - Point3::ORIGIN;
        Point3::ORIGIN
            + Vec3::new(
                self.rows[0].dot(v),
                self.rows[1].dot(v),
                self.rows[2].dot(v),
            )
            + self.translation
    }

    /// Applies only the rotational part to a direction vector.
    pub fn apply_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Composition: `(a.then(b)).apply(p) == b.apply(a.apply(p))`.
    pub fn then(&self, after: &Isometry) -> Isometry {
        // Rows of the composed rotation: after.R · self.R.
        let col = |c: usize| {
            Vec3::new(
                match c {
                    0 => self.rows[0].x,
                    1 => self.rows[0].y,
                    _ => self.rows[0].z,
                },
                match c {
                    0 => self.rows[1].x,
                    1 => self.rows[1].y,
                    _ => self.rows[1].z,
                },
                match c {
                    0 => self.rows[2].x,
                    1 => self.rows[2].y,
                    _ => self.rows[2].z,
                },
            )
        };
        let composed = |r: usize| {
            Vec3::new(
                after.rows[r].dot(col(0)),
                after.rows[r].dot(col(1)),
                after.rows[r].dot(col(2)),
            )
        };
        Isometry {
            rows: [composed(0), composed(1), composed(2)],
            translation: after.apply_vec(self.translation) + after.translation,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Isometry {
        // Rᵀ rows are the columns of R.
        let rows = [
            Vec3::new(self.rows[0].x, self.rows[1].x, self.rows[2].x),
            Vec3::new(self.rows[0].y, self.rows[1].y, self.rows[2].y),
            Vec3::new(self.rows[0].z, self.rows[1].z, self.rows[2].z),
        ];
        let inv = Isometry {
            rows,
            translation: Vec3::new(0.0, 0.0, 0.0),
        };
        Isometry {
            translation: -inv.apply_vec(self.translation),
            ..inv
        }
    }

    /// The translation component.
    pub fn translation_part(&self) -> Vec3 {
        self.translation
    }

    /// Transforms a list of `(position, payload)` pairs — the shape of a
    /// measurement set — into this frame.
    pub fn apply_measurements<T: Copy>(&self, items: &[(Point3, T)]) -> Vec<(Point3, T)> {
        items.iter().map(|&(p, t)| (self.apply(p), t)).collect()
    }
}

impl Default for Isometry {
    fn default() -> Self {
        Isometry::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Point3, b: Point3) -> bool {
        a.distance(b) < 1e-12
    }

    #[test]
    fn identity_and_translation() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert!(close(Isometry::identity().apply(p), p));
        let t = Isometry::translation(Vec3::new(0.5, -1.0, 2.0));
        assert!(close(t.apply(p), Point3::new(1.5, 1.0, 5.0)));
        assert!(close(t.inverse().apply(t.apply(p)), p));
    }

    #[test]
    fn rotations_about_axes() {
        let p = Point3::new(1.0, 0.0, 0.0);
        assert!(close(
            Isometry::rotation_z(FRAC_PI_2).apply(p),
            Point3::new(0.0, 1.0, 0.0)
        ));
        assert!(close(
            Isometry::rotation_y(FRAC_PI_2).apply(p),
            Point3::new(0.0, 0.0, -1.0)
        ));
        let q = Point3::new(0.0, 1.0, 0.0);
        assert!(close(
            Isometry::rotation_x(FRAC_PI_2).apply(q),
            Point3::new(0.0, 0.0, 1.0)
        ));
        // Full turn is identity.
        let full = Isometry::rotation_z(2.0 * PI);
        assert!(full.apply(p).distance(p) < 1e-12);
    }

    #[test]
    fn rigidity_preserves_distances() {
        let iso = Isometry::rotation_z(0.7)
            .then(&Isometry::rotation_x(-0.3))
            .then(&Isometry::translation(Vec3::new(1.0, 2.0, -0.5)));
        let a = Point3::new(0.3, -0.8, 1.1);
        let b = Point3::new(-0.5, 0.2, 0.4);
        let d_before = a.distance(b);
        let d_after = iso.apply(a).distance(iso.apply(b));
        assert!((d_before - d_after).abs() < 1e-12);
    }

    #[test]
    fn composition_order() {
        let rot = Isometry::rotation_z(FRAC_PI_2);
        let shift = Isometry::translation(Vec3::new(1.0, 0.0, 0.0));
        let p = Point3::new(1.0, 0.0, 0.0);
        // rotate then shift: (0,1,0) + (1,0,0) = (1,1,0)
        let rs = rot.then(&shift);
        assert!(close(rs.apply(p), Point3::new(1.0, 1.0, 0.0)));
        // shift then rotate: (2,0,0) rotated = (0,2,0)
        let sr = shift.then(&rot);
        assert!(close(sr.apply(p), Point3::new(0.0, 2.0, 0.0)));
    }

    #[test]
    fn inverse_roundtrips_composites() {
        let iso = Isometry::rotation_y(1.1)
            .then(&Isometry::translation(Vec3::new(-0.4, 0.9, 0.2)))
            .then(&Isometry::rotation_z(-2.0));
        let p = Point3::new(0.123, -0.456, 0.789);
        assert!(close(iso.inverse().apply(iso.apply(p)), p));
        assert!(close(iso.apply(iso.inverse().apply(p)), p));
        // Inverse of identity is identity.
        assert_eq!(Isometry::identity().inverse(), Isometry::identity());
    }

    #[test]
    fn from_basis_builds_the_expected_frame() {
        // Scan frame: x along world y, y along world −x, origin at (0, 0.7, 0).
        let iso = Isometry::from_basis(
            Point3::new(0.0, 0.7, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )
        .unwrap();
        // Local (1, 0, 0) → origin + e1.
        assert!(close(
            iso.apply(Point3::new(1.0, 0.0, 0.0)),
            Point3::new(0.0, 1.7, 0.0)
        ));
        assert!(close(
            iso.apply(Point3::new(0.0, 2.0, 0.0)),
            Point3::new(-2.0, 0.7, 0.0)
        ));
    }

    #[test]
    fn from_basis_rejects_bad_bases() {
        let o = Point3::ORIGIN;
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        // Left-handed.
        assert!(Isometry::from_basis(o, x, y, -z).is_err());
        // Non-unit.
        assert!(Isometry::from_basis(o, x * 2.0, y, z).is_err());
        // Non-orthogonal.
        assert!(Isometry::from_basis(o, x, Vec3::new(0.7, 0.7, 0.0), z).is_err());
    }

    #[test]
    fn measurement_transform() {
        let iso = Isometry::translation(Vec3::new(0.0, 0.7, 0.0));
        let m = vec![
            (Point3::new(0.1, 0.0, 0.0), 1.5),
            (Point3::new(0.2, 0.0, 0.0), 2.5),
        ];
        let out = iso.apply_measurements(&m);
        assert_eq!(out.len(), 2);
        assert!(close(out[0].0, Point3::new(0.1, 0.7, 0.0)));
        assert_eq!(out[0].1, 1.5);
        assert_eq!(out[1].1, 2.5);
    }

    #[test]
    fn apply_vec_ignores_translation() {
        let iso = Isometry::translation(Vec3::new(5.0, 5.0, 5.0));
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(iso.apply_vec(v), v);
    }
}
