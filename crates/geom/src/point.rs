//! Points and vectors in 2D and 3D.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in the 2D plane (meters, matching the paper's coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate (the paper's antenna-plane direction).
    pub x: f64,
    /// Depth coordinate (perpendicular distance from the antenna plane).
    pub y: f64,
}

/// A point in 3D space (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Horizontal coordinate along the antenna plane.
    pub x: f64,
    /// Depth coordinate.
    pub y: f64,
    /// Vertical coordinate.
    pub z: f64,
}

/// A displacement in the 2D plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

/// A displacement in 3D space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Point2 {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    ///
    /// # Example
    ///
    /// ```
    /// use lion_geom::Point2;
    /// assert_eq!(Point2::new(0.0, 0.0).distance(Point2::new(3.0, 4.0)), 5.0);
    /// ```
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance (avoids the square root).
    pub fn distance_squared(self, other: Point2) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Midpoint with another point.
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Embeds into 3D at height `z`.
    pub fn with_z(self, z: f64) -> Point3 {
        Point3::new(self.x, self.y, z)
    }

    /// Returns `true` when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Point3 {
    /// Origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance.
    pub fn distance_squared(self, other: Point3) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y + d.z * d.z
    }

    /// Midpoint with another point.
    pub fn midpoint(self, other: Point3) -> Point3 {
        Point3::new(
            (self.x + other.x) / 2.0,
            (self.y + other.y) / 2.0,
            (self.z + other.z) / 2.0,
        )
    }

    /// Projects onto the `xy`-plane, dropping `z`.
    pub fn to_xy(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Returns `true` when all coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point3, t: f64) -> Point3 {
        self + (other - self) * t
    }
}

impl Vec2 {
    /// Creates a vector.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (signed area).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 {
            Some(Vec2::new(self.x / n, self.y / n))
        } else {
            None
        }
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Vec3 {
    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 {
            Some(Vec3::new(self.x / n, self.y / n, self.z / n))
        } else {
            None
        }
    }

    /// Projects onto the `xy`-plane.
    pub fn to_xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

// --- operator impls -------------------------------------------------------

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Sub for Point3 {
    type Output = Vec3;
    fn sub(self, rhs: Point3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Add<Vec3> for Point3 {
    type Output = Point3;
    fn add(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub<Vec3> for Point3 {
    type Output = Point3;
    fn sub(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

macro_rules! vec_ops {
    ($t:ty, { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                <$t>::new($(self.$f + rhs.$f),+)
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                <$t>::new($(self.$f - rhs.$f),+)
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, rhs: $t) {
                $(self.$f += rhs.$f;)+
            }
        }
        impl SubAssign for $t {
            fn sub_assign(&mut self, rhs: $t) {
                $(self.$f -= rhs.$f;)+
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, rhs: f64) -> $t {
                <$t>::new($(self.$f * rhs),+)
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            fn div(self, rhs: f64) -> $t {
                <$t>::new($(self.$f / rhs),+)
            }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t {
                <$t>::new($(-self.$f),+)
            }
        }
    };
}

vec_ops!(Vec2, { x, y });
vec_ops!(Vec3, { x, y, z });

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.4}, {:.4}>", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.4}, {:.4}, {:.4}>", self.x, self.y, self.z)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        let p = Point3::new(1.0, 2.0, 2.0);
        assert_eq!(Point3::ORIGIN.distance(p), 3.0);
        assert_eq!(Point3::ORIGIN.distance_squared(p), 9.0);
    }

    #[test]
    fn midpoints_and_lerp() {
        assert_eq!(
            Point2::new(0.0, 0.0).midpoint(Point2::new(2.0, 4.0)),
            Point2::new(1.0, 2.0)
        );
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 2.0, 2.0);
        assert_eq!(a.midpoint(b), Point3::new(1.0, 1.0, 1.0));
        assert_eq!(a.lerp(b, 0.25), Point3::new(0.5, 0.5, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn point_vector_algebra() {
        let p = Point2::new(1.0, 1.0);
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(p + v, Point2::new(3.0, 0.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(Point2::new(3.0, 0.0) - p, v);
        let q = Point3::new(1.0, 2.0, 3.0);
        let w = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!((q + w) - q, w);
        assert_eq!(q - w, Point3::new(0.5, 1.5, 2.5));
    }

    #[test]
    fn vec_ops() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
        assert_eq!((a + b).norm(), 2.0_f64.sqrt());
        let mut c = a;
        c += b;
        assert_eq!(c, Vec2::new(1.0, 1.0));
        c -= b;
        assert_eq!(c, a);
        assert_eq!(-a, Vec2::new(-1.0, 0.0));
        assert_eq!(a * 3.0, Vec2::new(3.0, 0.0));
        assert_eq!(Vec2::new(4.0, 2.0) / 2.0, Vec2::new(2.0, 1.0));
    }

    #[test]
    fn cross_product_3d() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.cross(x), Vec3::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn normalization() {
        assert_eq!(Vec2::new(3.0, 4.0).normalized().unwrap().norm(), 1.0);
        assert_eq!(Vec2::new(0.0, 0.0).normalized(), None);
        let n = Vec3::new(1.0, 1.0, 1.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::new(0.0, 0.0, 0.0).normalized(), None);
    }

    #[test]
    fn embeddings() {
        assert_eq!(
            Point2::new(1.0, 2.0).with_z(3.0),
            Point3::new(1.0, 2.0, 3.0)
        );
        assert_eq!(Point3::new(1.0, 2.0, 3.0).to_xy(), Point2::new(1.0, 2.0));
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_xy(), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn conversions_and_display() {
        let p: Point2 = (1.0, 2.0).into();
        assert_eq!(p, Point2::new(1.0, 2.0));
        let q: Point3 = (1.0, 2.0, 3.0).into();
        assert_eq!(q, Point3::new(1.0, 2.0, 3.0));
        assert!(!format!("{p}").is_empty());
        assert!(!format!("{q}").is_empty());
        assert!(!format!("{}", Vec2::new(0.0, 0.0)).is_empty());
        assert!(!format!("{}", Vec3::new(0.0, 0.0, 0.0)).is_empty());
    }

    #[test]
    fn finite_checks() {
        assert!(Point2::new(0.0, 0.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(Point3::ORIGIN.is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
