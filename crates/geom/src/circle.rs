//! Circles and spheres — the loci of constant tag–antenna distance.
//!
//! In the LION model, every phase sample taken at tag position `Tᵢ` pins the
//! antenna to a circle (2D, paper Eq. 2–4) or sphere (3D) centered at `Tᵢ`
//! with radius equal to the inferred distance `dᵢ`.

use serde::{Deserialize, Serialize};

use crate::point::{Point2, Point3};
use crate::GeomError;

/// A circle in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center (a tag position in the LION setting).
    pub center: Point2,
    /// Radius (the tag–antenna distance).
    pub radius: f64,
}

/// A sphere in 3D space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    /// Center (a tag position in the LION setting).
    pub center: Point3,
    /// Radius (the tag–antenna distance).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative (use [`Circle::try_new`] to validate
    /// dynamically).
    pub fn new(center: Point2, radius: f64) -> Self {
        assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// Creates a circle, validating the radius.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] for a negative or non-finite
    /// radius.
    pub fn try_new(center: Point2, radius: f64) -> Result<Self, GeomError> {
        if !(radius >= 0.0 && radius.is_finite()) {
            return Err(GeomError::InvalidInput {
                operation: "circle",
                found: format!("radius {radius}"),
            });
        }
        Ok(Circle { center, radius })
    }

    /// Signed power of a point with respect to this circle:
    /// `|p − center|² − r²`. Zero on the circle, negative inside.
    ///
    /// The radical line of two circles is precisely the set of points with
    /// equal power with respect to both.
    pub fn power(&self, p: Point2) -> f64 {
        p.distance_squared(self.center) - self.radius * self.radius
    }

    /// Returns `true` when `p` lies on the circle within `tol`.
    pub fn contains(&self, p: Point2, tol: f64) -> bool {
        (p.distance(self.center) - self.radius).abs() <= tol
    }
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn new(center: Point3, radius: f64) -> Self {
        assert!(radius >= 0.0, "sphere radius must be non-negative");
        Sphere { center, radius }
    }

    /// Creates a sphere, validating the radius.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] for a negative or non-finite
    /// radius.
    pub fn try_new(center: Point3, radius: f64) -> Result<Self, GeomError> {
        if !(radius >= 0.0 && radius.is_finite()) {
            return Err(GeomError::InvalidInput {
                operation: "sphere",
                found: format!("radius {radius}"),
            });
        }
        Ok(Sphere { center, radius })
    }

    /// Signed power of a point with respect to this sphere.
    pub fn power(&self, p: Point3) -> f64 {
        p.distance_squared(self.center) - self.radius * self.radius
    }

    /// Returns `true` when `p` lies on the sphere within `tol`.
    pub fn contains(&self, p: Point3, tol: f64) -> bool {
        (p.distance(self.center) - self.radius).abs() <= tol
    }
}

/// Intersection points of two circles.
///
/// Returns zero, one (tangent), or two points. Concentric circles yield an
/// error because the intersection is either empty or the whole circle.
///
/// # Errors
///
/// Returns [`GeomError::Degenerate`] when the centers coincide.
///
/// # Example
///
/// ```
/// use lion_geom::{circle_intersections, Circle, Point2};
///
/// let a = Circle::new(Point2::new(0.0, 0.0), 1.0);
/// let b = Circle::new(Point2::new(1.0, 0.0), 1.0);
/// let pts = circle_intersections(&a, &b).unwrap();
/// assert_eq!(pts.len(), 2);
/// for p in pts {
///     assert!(a.contains(p, 1e-12) && b.contains(p, 1e-12));
/// }
/// ```
pub fn circle_intersections(a: &Circle, b: &Circle) -> Result<Vec<Point2>, GeomError> {
    let d = a.center.distance(b.center);
    if d == 0.0 {
        return Err(GeomError::Degenerate {
            operation: "circle intersection",
        });
    }
    // No intersection: too far apart or one inside the other.
    if d > a.radius + b.radius || d < (a.radius - b.radius).abs() {
        return Ok(Vec::new());
    }
    // Distance from a.center to the radical line along the center line.
    let h = (a.radius * a.radius - b.radius * b.radius + d * d) / (2.0 * d);
    let base = a.center + (b.center - a.center) * (h / d);
    let half_chord_sq = a.radius * a.radius - h * h;
    if half_chord_sq <= 0.0 {
        // Tangent (within rounding).
        return Ok(vec![base]);
    }
    let half = half_chord_sq.sqrt();
    let dir = (b.center - a.center).normalized().expect("d > 0").perp();
    Ok(vec![base + dir * half, base - dir * half])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_sign() {
        let c = Circle::new(Point2::new(0.0, 0.0), 2.0);
        assert!(c.power(Point2::new(0.0, 0.0)) < 0.0);
        assert_eq!(c.power(Point2::new(2.0, 0.0)), 0.0);
        assert!(c.power(Point2::new(3.0, 0.0)) > 0.0);
        let s = Sphere::new(Point3::ORIGIN, 1.0);
        assert!(s.power(Point3::new(0.5, 0.0, 0.0)) < 0.0);
        assert!(s.power(Point3::new(0.0, 2.0, 0.0)) > 0.0);
    }

    #[test]
    fn contains_tolerance() {
        let c = Circle::new(Point2::new(1.0, 1.0), 1.0);
        assert!(c.contains(Point2::new(2.0, 1.0), 1e-12));
        assert!(!c.contains(Point2::new(2.1, 1.0), 1e-3));
        assert!(c.contains(Point2::new(2.05, 1.0), 0.1));
    }

    #[test]
    fn validation() {
        assert!(Circle::try_new(Point2::ORIGIN, -1.0).is_err());
        assert!(Circle::try_new(Point2::ORIGIN, f64::NAN).is_err());
        assert!(Circle::try_new(Point2::ORIGIN, 0.0).is_ok());
        assert!(Sphere::try_new(Point3::ORIGIN, -0.1).is_err());
        assert!(Sphere::try_new(Point3::ORIGIN, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Circle::new(Point2::ORIGIN, -2.0);
    }

    #[test]
    fn two_point_intersection() {
        let a = Circle::new(Point2::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point2::new(6.0, 0.0), 5.0);
        let pts = circle_intersections(&a, &b).unwrap();
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!((p.x - 3.0).abs() < 1e-12);
            assert!((p.y.abs() - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tangent_intersection() {
        let a = Circle::new(Point2::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point2::new(2.0, 0.0), 1.0);
        let pts = circle_intersections(&a, &b).unwrap();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].distance(Point2::new(1.0, 0.0)) < 1e-9);
    }

    #[test]
    fn disjoint_and_nested() {
        let a = Circle::new(Point2::new(0.0, 0.0), 1.0);
        let far = Circle::new(Point2::new(5.0, 0.0), 1.0);
        assert!(circle_intersections(&a, &far).unwrap().is_empty());
        let inner = Circle::new(Point2::new(0.1, 0.0), 0.2);
        assert!(circle_intersections(&a, &inner).unwrap().is_empty());
    }

    #[test]
    fn concentric_is_degenerate() {
        let a = Circle::new(Point2::new(1.0, 1.0), 1.0);
        let b = Circle::new(Point2::new(1.0, 1.0), 2.0);
        assert!(matches!(
            circle_intersections(&a, &b),
            Err(GeomError::Degenerate { .. })
        ));
    }

    #[test]
    fn intersections_lie_on_both_circles() {
        let a = Circle::new(Point2::new(-0.3, 0.2), 0.9);
        let b = Circle::new(Point2::new(0.4, -0.1), 0.7);
        for p in circle_intersections(&a, &b).unwrap() {
            assert!(a.contains(p, 1e-10));
            assert!(b.contains(p, 1e-10));
        }
    }
}
