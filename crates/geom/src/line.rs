//! Lines, planes, and the radical constructions at the heart of LION.
//!
//! Subtracting the equations of two circles (paper Eq. 3 − Eq. 4) cancels
//! the quadratic terms and leaves the **radical line** (paper Eq. 5):
//!
//! ```text
//! 2(xᵢ−xⱼ)·x + 2(yᵢ−yⱼ)·y = xᵢ²−xⱼ² + yᵢ²−yⱼ² − dᵢ² + dⱼ²
//! ```
//!
//! The same subtraction on spheres leaves the **radical plane** (Eq. 8).
//! These are exactly the linear equations LION stacks into its
//! least-squares system.

use serde::{Deserialize, Serialize};

use crate::circle::{Circle, Sphere};
use crate::point::{Point2, Point3, Vec3};
use crate::GeomError;

/// A line in the plane in implicit form `a·x + b·y = c` with `(a, b)`
/// normalized to unit length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line2 {
    /// Unit normal x-component.
    pub a: f64,
    /// Unit normal y-component.
    pub b: f64,
    /// Offset: the signed distance of the origin times −1.
    pub c: f64,
}

/// A plane in implicit form `n·p = d` with unit normal `n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plane {
    /// Unit normal.
    pub normal: Vec3,
    /// Offset along the normal.
    pub d: f64,
}

impl Line2 {
    /// Builds a line from raw implicit coefficients `a·x + b·y = c`,
    /// normalizing the normal vector.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Degenerate`] when `a = b = 0`.
    pub fn from_implicit(a: f64, b: f64, c: f64) -> Result<Self, GeomError> {
        let n = a.hypot(b);
        if n == 0.0 || !n.is_finite() {
            return Err(GeomError::Degenerate {
                operation: "line from implicit coefficients",
            });
        }
        Ok(Line2 {
            a: a / n,
            b: b / n,
            c: c / n,
        })
    }

    /// Builds the line through two distinct points.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Degenerate`] when the points coincide.
    pub fn through(p: Point2, q: Point2) -> Result<Self, GeomError> {
        let d = q - p;
        // Normal is perpendicular to the direction.
        Line2::from_implicit(-d.y, d.x, -d.y * p.x + d.x * p.y)
    }

    /// Unsigned distance from a point to the line.
    pub fn distance_to(&self, p: Point2) -> f64 {
        (self.a * p.x + self.b * p.y - self.c).abs()
    }

    /// Signed evaluation `a·x + b·y − c` (zero on the line).
    pub fn eval(&self, p: Point2) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// Returns `true` when `p` lies on the line within `tol`.
    pub fn contains(&self, p: Point2, tol: f64) -> bool {
        self.distance_to(p) <= tol
    }
}

impl Plane {
    /// Builds a plane from a (not necessarily unit) normal and offset
    /// `n·p = d`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Degenerate`] for a zero normal.
    pub fn from_normal(normal: Vec3, d: f64) -> Result<Self, GeomError> {
        let n = normal.norm();
        if n == 0.0 || !n.is_finite() {
            return Err(GeomError::Degenerate {
                operation: "plane from normal",
            });
        }
        Ok(Plane {
            normal: normal / n,
            d: d / n,
        })
    }

    /// Unsigned distance from a point to the plane.
    pub fn distance_to(&self, p: Point3) -> f64 {
        (self.normal.dot(p - Point3::ORIGIN) - self.d).abs()
    }

    /// Returns `true` when `p` lies on the plane within `tol`.
    pub fn contains(&self, p: Point3, tol: f64) -> bool {
        self.distance_to(p) <= tol
    }
}

/// Radical line of two circles (paper Eq. 5): the locus of equal power,
/// which passes through both intersection points when the circles meet.
///
/// # Errors
///
/// Returns [`GeomError::Degenerate`] for concentric circles.
///
/// # Example
///
/// ```
/// use lion_geom::{circle_intersections, radical_line, Circle, Point2};
///
/// let a = Circle::new(Point2::new(0.0, 0.0), 1.0);
/// let b = Circle::new(Point2::new(1.5, 0.0), 1.0);
/// let line = radical_line(&a, &b).unwrap();
/// for p in circle_intersections(&a, &b).unwrap() {
///     assert!(line.contains(p, 1e-9));
/// }
/// ```
pub fn radical_line(a: &Circle, b: &Circle) -> Result<Line2, GeomError> {
    let (ti, tj) = (a.center, b.center);
    let alpha = 2.0 * (ti.x - tj.x);
    let beta = 2.0 * (ti.y - tj.y);
    let kappa = ti.x * ti.x - tj.x * tj.x + ti.y * ti.y - tj.y * tj.y - a.radius * a.radius
        + b.radius * b.radius;
    Line2::from_implicit(alpha, beta, kappa)
}

/// Radical plane of two spheres (paper Eq. 8).
///
/// # Errors
///
/// Returns [`GeomError::Degenerate`] for concentric spheres.
pub fn radical_plane(a: &Sphere, b: &Sphere) -> Result<Plane, GeomError> {
    let (ti, tj) = (a.center, b.center);
    let normal = Vec3::new(
        2.0 * (ti.x - tj.x),
        2.0 * (ti.y - tj.y),
        2.0 * (ti.z - tj.z),
    );
    let kappa = ti.x * ti.x - tj.x * tj.x + ti.y * ti.y - tj.y * tj.y + ti.z * ti.z
        - tj.z * tj.z
        - a.radius * a.radius
        + b.radius * b.radius;
    Plane::from_normal(normal, kappa)
}

/// Intersection point of two lines.
///
/// # Errors
///
/// Returns [`GeomError::Degenerate`] for (anti)parallel lines.
pub fn line_intersection(l1: &Line2, l2: &Line2) -> Result<Point2, GeomError> {
    let det = l1.a * l2.b - l2.a * l1.b;
    if det.abs() < 1e-12 {
        return Err(GeomError::Degenerate {
            operation: "line intersection",
        });
    }
    Ok(Point2::new(
        (l1.c * l2.b - l2.c * l1.b) / det,
        (l1.a * l2.c - l2.a * l1.c) / det,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::circle_intersections;

    #[test]
    fn line_normalization() {
        let l = Line2::from_implicit(3.0, 4.0, 10.0).unwrap();
        assert!((l.a * l.a + l.b * l.b - 1.0).abs() < 1e-12);
        assert!((l.c - 2.0).abs() < 1e-12);
        assert!(Line2::from_implicit(0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn line_through_points() {
        let l = Line2::through(Point2::new(0.0, 1.0), Point2::new(1.0, 2.0)).unwrap();
        assert!(l.contains(Point2::new(0.5, 1.5), 1e-12));
        assert!(l.contains(Point2::new(-1.0, 0.0), 1e-12));
        assert!(!l.contains(Point2::new(0.0, 0.0), 1e-6));
        assert!(Line2::through(Point2::ORIGIN, Point2::ORIGIN).is_err());
    }

    #[test]
    fn line_distance() {
        // x-axis: normal (0, 1), c = 0.
        let l = Line2::from_implicit(0.0, 2.0, 0.0).unwrap();
        assert_eq!(l.distance_to(Point2::new(5.0, 3.0)), 3.0);
        assert_eq!(l.distance_to(Point2::new(-2.0, -4.0)), 4.0);
        assert!(l.eval(Point2::new(0.0, 3.0)) > 0.0);
        assert!(l.eval(Point2::new(0.0, -3.0)) < 0.0);
    }

    #[test]
    fn radical_line_passes_through_intersections() {
        let a = Circle::new(Point2::new(-0.2, 0.1), 1.0);
        let b = Circle::new(Point2::new(0.5, -0.3), 0.8);
        let line = radical_line(&a, &b).unwrap();
        let pts = circle_intersections(&a, &b).unwrap();
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert!(line.contains(p, 1e-9), "distance {}", line.distance_to(p));
        }
    }

    #[test]
    fn radical_line_is_equal_power_locus() {
        let a = Circle::new(Point2::new(0.0, 0.0), 2.0);
        let b = Circle::new(Point2::new(3.0, 1.0), 1.0);
        let line = radical_line(&a, &b).unwrap();
        // Walk along the line and confirm equal powers.
        let dir = Vec3::new(-line.b, line.a, 0.0); // direction ⟂ normal
        let base = Point2::new(line.a * line.c, line.b * line.c);
        for t in [-2.0, -0.5, 0.0, 0.7, 1.9] {
            let p = Point2::new(base.x + dir.x * t, base.y + dir.y * t);
            assert!((a.power(p) - b.power(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn radical_line_concentric_degenerate() {
        let a = Circle::new(Point2::new(1.0, 1.0), 1.0);
        let b = Circle::new(Point2::new(1.0, 1.0), 2.0);
        assert!(radical_line(&a, &b).is_err());
    }

    #[test]
    fn observation1_three_circles_common_point() {
        // Paper Observation 1: radical lines of circles sharing a point all
        // pass through it.
        let antenna = Point2::new(0.5, 0.5);
        let tags = [
            Point2::new(-0.3, 0.0),
            Point2::new(0.0, -0.2),
            Point2::new(0.3, 0.1),
        ];
        let circles: Vec<Circle> = tags
            .iter()
            .map(|&t| Circle::new(t, antenna.distance(t)))
            .collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let l = radical_line(&circles[i], &circles[j]).unwrap();
                assert!(l.contains(antenna, 1e-9));
            }
        }
        // And pairwise radical lines intersect at the antenna.
        let l01 = radical_line(&circles[0], &circles[1]).unwrap();
        let l12 = radical_line(&circles[1], &circles[2]).unwrap();
        let p = line_intersection(&l01, &l12).unwrap();
        assert!(p.distance(antenna) < 1e-9);
    }

    #[test]
    fn radical_plane_contains_common_point() {
        let antenna = Point3::new(0.2, 0.8, 0.3);
        let t1 = Point3::new(0.0, 0.0, 0.0);
        let t2 = Point3::new(0.3, 0.0, 0.2);
        let s1 = Sphere::new(t1, antenna.distance(t1));
        let s2 = Sphere::new(t2, antenna.distance(t2));
        let plane = radical_plane(&s1, &s2).unwrap();
        assert!(plane.contains(antenna, 1e-9));
        // Equal power along the plane.
        assert!((s1.power(antenna) - s2.power(antenna)).abs() < 1e-9);
    }

    #[test]
    fn radical_plane_concentric_degenerate() {
        let s1 = Sphere::new(Point3::ORIGIN, 1.0);
        let s2 = Sphere::new(Point3::ORIGIN, 2.0);
        assert!(radical_plane(&s1, &s2).is_err());
    }

    #[test]
    fn plane_normalization_and_distance() {
        let p = Plane::from_normal(Vec3::new(0.0, 0.0, 2.0), 4.0).unwrap();
        assert!((p.normal.norm() - 1.0).abs() < 1e-12);
        assert_eq!(p.distance_to(Point3::new(1.0, 1.0, 5.0)), 3.0);
        assert!(p.contains(Point3::new(7.0, -2.0, 2.0), 1e-12));
        assert!(Plane::from_normal(Vec3::new(0.0, 0.0, 0.0), 1.0).is_err());
    }

    #[test]
    fn line_intersection_cases() {
        let h = Line2::from_implicit(0.0, 1.0, 2.0).unwrap(); // y = 2
        let v = Line2::from_implicit(1.0, 0.0, 3.0).unwrap(); // x = 3
        let p = line_intersection(&h, &v).unwrap();
        assert!(p.distance(Point2::new(3.0, 2.0)) < 1e-12);
        let h2 = Line2::from_implicit(0.0, 1.0, 5.0).unwrap();
        assert!(line_intersection(&h, &h2).is_err());
    }
}
