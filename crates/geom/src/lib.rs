//! # lion-geom
//!
//! Geometry substrate for the LION reproduction (ICDCS 2022): points and
//! vectors in 2D/3D, circles and spheres with their **radical lines /
//! radical planes** (the core geometric object of the paper's linear
//! localization model), and the tag trajectories used for antenna
//! calibration (linear slide, three-line 3D scan, turntable circle).
//!
//! The paper's Observation 1 is a classical fact of circle geometry: when
//! three or more circles share a common point, that point lies on every
//! pairwise radical line. [`radical_line`] computes exactly the line of
//! paper Eq. (5); [`radical_plane`] is its 3D counterpart feeding Eq. (8).
//!
//! # Example
//!
//! ```
//! use lion_geom::{radical_line, Circle, Point2};
//!
//! let target = Point2::new(0.5, 0.5);
//! let c1 = Circle::new(Point2::new(-0.3, 0.0), target.distance(Point2::new(-0.3, 0.0)));
//! let c2 = Circle::new(Point2::new(0.3, 0.0), target.distance(Point2::new(0.3, 0.0)));
//! let line = radical_line(&c1, &c2).expect("distinct centers");
//! assert!(line.distance_to(target) < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod line;
mod point;
mod trajectory;
mod transform;

pub use circle::{circle_intersections, Circle, Sphere};
pub use line::{line_intersection, radical_line, radical_plane, Line2, Plane};
pub use point::{Point2, Point3, Vec2, Vec3};
pub use trajectory::{CircularArc, LineSegment, Path, ThreeLineScan, Trajectory, TrajectoryPoint};
pub use transform::Isometry;

/// Geometry-level errors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// The requested construction is degenerate (e.g. radical line of two
    /// concentric circles, intersection of parallel lines).
    Degenerate {
        /// What was being constructed.
        operation: &'static str,
    },
    /// An input value was invalid (negative radius, zero-length segment…).
    InvalidInput {
        /// What was being constructed.
        operation: &'static str,
        /// Human-readable description of the bad value.
        found: String,
    },
}

impl GeomError {
    /// A stable snake_case label for this error's variant, independent of
    /// the variant's payload — the same taxonomy contract as
    /// `CoreError::kind` in `lion-core` (used for failure counters and
    /// the workspace-wide `lion::Error::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            GeomError::Degenerate { .. } => "degenerate",
            GeomError::InvalidInput { .. } => "invalid_input",
        }
    }
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::Degenerate { operation } => {
                write!(f, "degenerate geometry in {operation}")
            }
            GeomError::InvalidInput { operation, found } => {
                write!(f, "invalid input to {operation}: {found}")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let e = GeomError::Degenerate {
            operation: "radical line",
        };
        assert!(!e.to_string().is_empty());
        let e = GeomError::InvalidInput {
            operation: "circle",
            found: "radius -1".into(),
        };
        assert!(e.to_string().contains("circle"));
    }
}
