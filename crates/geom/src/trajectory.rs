//! Tag trajectories: the known scanning paths LION uses to calibrate an
//! antenna.
//!
//! The paper's experiments use three families of trajectories:
//!
//! - a **linear slide** (Sec. V: a 2.5 m track at 10 cm/s) — [`LineSegment`];
//! - the **three-line 3D scan** of Fig. 11 (parallel lines offset by `y_o`
//!   and `z_o`) — [`ThreeLineScan`];
//! - a **turntable circle** (Sec. V-F2) — [`CircularArc`].
//!
//! All implement [`Trajectory`]: a curve parameterized by arc length that
//! can be sampled at a reader-like `(speed, rate)` to produce timestamped
//! tag positions.

use serde::{Deserialize, Serialize};

use crate::point::{Point3, Vec3};
use crate::GeomError;

/// A timestamped position along a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Seconds since the start of the traversal.
    pub time: f64,
    /// Arc length traveled so far (meters).
    pub arc_length: f64,
    /// Tag position.
    pub position: Point3,
}

/// A curve parameterized by arc length.
///
/// Implementors guarantee `position(0)` is the start, `position(length())`
/// the end, and that `position` clamps out-of-range inputs to the ends.
pub trait Trajectory {
    /// Total arc length in meters.
    fn length(&self) -> f64;

    /// Position after traveling `s` meters from the start (clamped).
    fn position(&self, s: f64) -> Point3;

    /// Samples the trajectory at constant `speed` (m/s) and sampling `rate`
    /// (Hz), mimicking an RFID reader interrogating a tag on a motorized
    /// track. Always includes the start point; includes the end point when
    /// the final step lands within one sample of it.
    ///
    /// Returns an empty vector when `speed` or `rate` is not positive.
    fn sample(&self, speed: f64, rate: f64) -> Vec<TrajectoryPoint> {
        if speed <= 0.0 || rate <= 0.0 || !speed.is_finite() || !rate.is_finite() {
            return Vec::new();
        }
        let step = speed / rate;
        let len = self.length();
        let n = (len / step).floor() as usize + 1;
        let mut out = Vec::with_capacity(n + 1);
        let mut s = 0.0;
        let mut i = 0_u64;
        while s <= len + 1e-12 {
            out.push(TrajectoryPoint {
                time: i as f64 / rate,
                arc_length: s.min(len),
                position: self.position(s),
            });
            i += 1;
            s = i as f64 * step;
        }
        out
    }
}

/// A straight line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineSegment {
    start: Point3,
    end: Point3,
}

impl LineSegment {
    /// Creates a segment.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] when the endpoints coincide or
    /// are non-finite.
    pub fn new(start: Point3, end: Point3) -> Result<Self, GeomError> {
        if !start.is_finite() || !end.is_finite() {
            return Err(GeomError::InvalidInput {
                operation: "line segment",
                found: "non-finite endpoint".to_string(),
            });
        }
        if start.distance(end) == 0.0 {
            return Err(GeomError::InvalidInput {
                operation: "line segment",
                found: "zero-length segment".to_string(),
            });
        }
        Ok(LineSegment { start, end })
    }

    /// Convenience: a segment along the x-axis at depth `y` and height `z`,
    /// from `x_start` to `x_end` — the paper's linear slide.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] when `x_start == x_end`.
    pub fn along_x(x_start: f64, x_end: f64, y: f64, z: f64) -> Result<Self, GeomError> {
        LineSegment::new(Point3::new(x_start, y, z), Point3::new(x_end, y, z))
    }

    /// Start point.
    pub fn start(&self) -> Point3 {
        self.start
    }

    /// End point.
    pub fn end(&self) -> Point3 {
        self.end
    }

    /// Reversed copy (end to start).
    pub fn reversed(&self) -> LineSegment {
        LineSegment {
            start: self.end,
            end: self.start,
        }
    }
}

impl Trajectory for LineSegment {
    fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    fn position(&self, s: f64) -> Point3 {
        let t = (s / self.length()).clamp(0.0, 1.0);
        self.start.lerp(self.end, t)
    }
}

/// A circular arc in an arbitrary plane, parameterized by arc length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircularArc {
    center: Point3,
    u: Vec3,
    v: Vec3,
    radius: f64,
    start_angle: f64,
    sweep: f64,
}

impl CircularArc {
    /// Creates an arc in the plane spanned by orthonormal axes `u`, `v`
    /// through `center`, starting at `start_angle` and sweeping `sweep`
    /// radians (signed).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] when the radius is not positive,
    /// the sweep is zero, or `u`/`v` are not orthonormal.
    pub fn new(
        center: Point3,
        u: Vec3,
        v: Vec3,
        radius: f64,
        start_angle: f64,
        sweep: f64,
    ) -> Result<Self, GeomError> {
        if !(radius > 0.0 && radius.is_finite()) {
            return Err(GeomError::InvalidInput {
                operation: "circular arc",
                found: format!("radius {radius}"),
            });
        }
        if sweep == 0.0 || !sweep.is_finite() {
            return Err(GeomError::InvalidInput {
                operation: "circular arc",
                found: format!("sweep {sweep}"),
            });
        }
        let tol = 1e-9;
        if (u.norm() - 1.0).abs() > tol || (v.norm() - 1.0).abs() > tol || u.dot(v).abs() > tol {
            return Err(GeomError::InvalidInput {
                operation: "circular arc",
                found: "axes not orthonormal".to_string(),
            });
        }
        Ok(CircularArc {
            center,
            u,
            v,
            radius,
            start_angle,
            sweep,
        })
    }

    /// Full circle in the horizontal `xy`-plane at the height of `center` —
    /// the turntable of the paper's rotating-tag case study.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] for a non-positive radius.
    pub fn turntable(center: Point3, radius: f64) -> Result<Self, GeomError> {
        CircularArc::new(
            center,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            radius,
            0.0,
            std::f64::consts::TAU,
        )
    }

    /// Center of the arc.
    pub fn center(&self) -> Point3 {
        self.center
    }

    /// Radius of the arc.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Position at a given angle (radians, in the arc's own plane).
    pub fn position_at_angle(&self, angle: f64) -> Point3 {
        self.center + self.u * (self.radius * angle.cos()) + self.v * (self.radius * angle.sin())
    }
}

impl Trajectory for CircularArc {
    fn length(&self) -> f64 {
        self.radius * self.sweep.abs()
    }

    fn position(&self, s: f64) -> Point3 {
        let t = (s / self.length()).clamp(0.0, 1.0);
        self.position_at_angle(self.start_angle + self.sweep * t)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Segment {
    Line(LineSegment),
    Arc(CircularArc),
}

impl Segment {
    fn length(&self) -> f64 {
        match self {
            Segment::Line(l) => l.length(),
            Segment::Arc(a) => a.length(),
        }
    }

    fn position(&self, s: f64) -> Point3 {
        match self {
            Segment::Line(l) => l.position(s),
            Segment::Arc(a) => a.position(s),
        }
    }
}

/// A multi-segment trajectory traversed in order.
///
/// Segments need not be connected — a gap models the tag being carried
/// (instantaneously, from the sampler's point of view) between separate
/// scan lines, which is exactly the discontinuity the paper's profile
/// stitching must repair. Use [`Path::is_continuous`] to check.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Path {
    segments: Vec<Segment>,
}

impl Path {
    /// Creates an empty path.
    pub fn new() -> Self {
        Path::default()
    }

    /// Appends a line segment.
    pub fn push_line(&mut self, segment: LineSegment) -> &mut Self {
        self.segments.push(Segment::Line(segment));
        self
    }

    /// Appends an arc.
    pub fn push_arc(&mut self, arc: CircularArc) -> &mut Self {
        self.segments.push(Segment::Arc(arc));
        self
    }

    /// Appends a straight connector from the current end to `target`
    /// (no-op when already there).
    pub fn connect_to(&mut self, target: Point3) -> &mut Self {
        if let Some(end) = self.end() {
            if let Ok(seg) = LineSegment::new(end, target) {
                self.segments.push(Segment::Line(seg));
            }
        }
        self
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Start of the first segment, if any.
    pub fn start(&self) -> Option<Point3> {
        self.segments.first().map(|s| s.position(0.0))
    }

    /// End of the last segment, if any.
    pub fn end(&self) -> Option<Point3> {
        self.segments.last().map(|s| s.position(s.length()))
    }

    /// Returns `true` when consecutive segments share endpoints within
    /// `tol` — i.e. the tag physically travels the whole path and the
    /// unwrapped phase profile will be continuous.
    pub fn is_continuous(&self, tol: f64) -> bool {
        self.segments.windows(2).all(|w| {
            let end = w[0].position(w[0].length());
            let start = w[1].position(0.0);
            end.distance(start) <= tol
        })
    }
}

impl Trajectory for Path {
    fn length(&self) -> f64 {
        self.segments.iter().map(Segment::length).sum()
    }

    fn position(&self, s: f64) -> Point3 {
        let mut remaining = s.max(0.0);
        for seg in &self.segments {
            let len = seg.length();
            if remaining <= len {
                return seg.position(remaining);
            }
            remaining -= len;
        }
        self.end().unwrap_or(Point3::ORIGIN)
    }
}

/// The paper's three-line 3D calibration trajectory (Fig. 11).
///
/// Three parallel lines along the x-axis:
///
/// - `L1`: `(x, 0, 0)` — the reference line,
/// - `L2`: `(x, 0, z_o)` — offset vertically by `z_o`,
/// - `L3`: `(x, −y_o, 0)` — offset in depth by `y_o`.
///
/// `to_path()` traverses them serpentine-style (L1 forward, connector, L2
/// backward, connector, L3 forward) so the tag physically travels between
/// lines and the unwrapped phase profile stays continuous, as the paper
/// recommends ("let the tag move from the end of one linear trajectory to
/// the start of the other").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreeLineScan {
    x_start: f64,
    x_end: f64,
    y_offset: f64,
    z_offset: f64,
}

impl ThreeLineScan {
    /// Creates the scan geometry.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInput`] when `x_start == x_end` or an
    /// offset is zero/non-finite (the pair selection would degenerate).
    pub fn new(x_start: f64, x_end: f64, y_offset: f64, z_offset: f64) -> Result<Self, GeomError> {
        if x_start == x_end || !x_start.is_finite() || !x_end.is_finite() {
            return Err(GeomError::InvalidInput {
                operation: "three-line scan",
                found: format!("x range [{x_start}, {x_end}]"),
            });
        }
        if y_offset == 0.0 || z_offset == 0.0 || !y_offset.is_finite() || !z_offset.is_finite() {
            return Err(GeomError::InvalidInput {
                operation: "three-line scan",
                found: format!("offsets y_o={y_offset}, z_o={z_offset}"),
            });
        }
        Ok(ThreeLineScan {
            x_start,
            x_end,
            y_offset,
            z_offset,
        })
    }

    /// The scanned x-range `(start, end)`.
    pub fn x_range(&self) -> (f64, f64) {
        (self.x_start, self.x_end)
    }

    /// Depth offset `y_o` between `L1` and `L3`.
    pub fn y_offset(&self) -> f64 {
        self.y_offset
    }

    /// Height offset `z_o` between `L1` and `L2`.
    pub fn z_offset(&self) -> f64 {
        self.z_offset
    }

    /// The reference line `L1`.
    pub fn line1(&self) -> LineSegment {
        LineSegment::along_x(self.x_start, self.x_end, 0.0, 0.0).expect("validated")
    }

    /// The height-offset line `L2`.
    pub fn line2(&self) -> LineSegment {
        LineSegment::along_x(self.x_start, self.x_end, 0.0, self.z_offset).expect("validated")
    }

    /// The depth-offset line `L3`.
    pub fn line3(&self) -> LineSegment {
        LineSegment::along_x(self.x_start, self.x_end, -self.y_offset, 0.0).expect("validated")
    }

    /// The triple of same-`x` positions `(P_{i,1}, P_{i,2}, P_{i,3})` used
    /// by the paper's pair selection.
    pub fn positions_at(&self, x: f64) -> (Point3, Point3, Point3) {
        (
            Point3::new(x, 0.0, 0.0),
            Point3::new(x, 0.0, self.z_offset),
            Point3::new(x, -self.y_offset, 0.0),
        )
    }

    /// Continuous serpentine traversal: L1 forward → connector → L2
    /// backward → connector → L3 forward.
    pub fn to_path(&self) -> Path {
        let l1 = self.line1();
        let l2 = self.line2().reversed();
        let l3 = self.line3();
        let mut path = Path::new();
        path.push_line(l1)
            .connect_to(l2.start())
            .push_line(l2)
            .connect_to(l3.start())
            .push_line(l3);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn segment_basics() {
        let s = LineSegment::along_x(-1.0, 1.0, 0.8, 0.0).unwrap();
        assert_eq!(s.length(), 2.0);
        assert_eq!(s.position(0.0), Point3::new(-1.0, 0.8, 0.0));
        assert_eq!(s.position(2.0), Point3::new(1.0, 0.8, 0.0));
        assert_eq!(s.position(1.0), Point3::new(0.0, 0.8, 0.0));
        // Clamping.
        assert_eq!(s.position(-5.0), s.start());
        assert_eq!(s.position(99.0), s.end());
        let r = s.reversed();
        assert_eq!(r.start(), s.end());
        assert_eq!(r.end(), s.start());
    }

    #[test]
    fn segment_validation() {
        assert!(LineSegment::new(Point3::ORIGIN, Point3::ORIGIN).is_err());
        assert!(LineSegment::new(Point3::ORIGIN, Point3::new(f64::NAN, 0.0, 0.0)).is_err());
        assert!(LineSegment::along_x(1.0, 1.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn sampling_rate_and_speed() {
        // 1 m at 10 cm/s sampled at 100 Hz → 1001 samples, 1 mm apart.
        let s = LineSegment::along_x(0.0, 1.0, 0.0, 0.0).unwrap();
        let pts = s.sample(0.1, 100.0);
        assert_eq!(pts.len(), 1001);
        assert_eq!(pts[0].time, 0.0);
        assert!((pts[1].position.x - 0.001).abs() < 1e-12);
        assert!((pts.last().unwrap().position.x - 1.0).abs() < 1e-9);
        assert!((pts.last().unwrap().time - 10.0).abs() < 1e-9);
        // Degenerate sampler inputs.
        assert!(s.sample(0.0, 100.0).is_empty());
        assert!(s.sample(0.1, 0.0).is_empty());
        assert!(s.sample(f64::NAN, 10.0).is_empty());
    }

    #[test]
    fn sample_arc_lengths_monotonic() {
        let s = LineSegment::along_x(0.0, 2.5, 0.8, 0.0).unwrap();
        let pts = s.sample(0.1, 37.0);
        for w in pts.windows(2) {
            assert!(w[1].arc_length > w[0].arc_length);
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn arc_geometry() {
        let arc = CircularArc::turntable(Point3::new(0.0, 0.7, 0.0), 0.2).unwrap();
        assert!((arc.length() - 0.2 * TAU).abs() < 1e-12);
        let start = arc.position(0.0);
        assert!(start.distance(Point3::new(0.2, 0.7, 0.0)) < 1e-12);
        // Quarter way round.
        let q = arc.position(arc.length() / 4.0);
        assert!(q.distance(Point3::new(0.0, 0.9, 0.0)) < 1e-9);
        // All points at the radius from the center.
        for i in 0..=20 {
            let p = arc.position(arc.length() * i as f64 / 20.0);
            assert!((p.distance(arc.center()) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn arc_validation() {
        let u = Vec3::new(1.0, 0.0, 0.0);
        let v = Vec3::new(0.0, 1.0, 0.0);
        assert!(CircularArc::new(Point3::ORIGIN, u, v, 0.0, 0.0, PI).is_err());
        assert!(CircularArc::new(Point3::ORIGIN, u, v, 1.0, 0.0, 0.0).is_err());
        assert!(CircularArc::new(Point3::ORIGIN, u, u, 1.0, 0.0, PI).is_err());
        assert!(CircularArc::new(Point3::ORIGIN, u * 2.0, v, 1.0, 0.0, PI).is_err());
        assert!(CircularArc::turntable(Point3::ORIGIN, -1.0).is_err());
    }

    #[test]
    fn arc_in_vertical_plane() {
        let arc = CircularArc::new(
            Point3::new(0.0, 0.5, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.3,
            0.0,
            PI,
        )
        .unwrap();
        let top = arc.position(arc.length() / 2.0);
        assert!(top.distance(Point3::new(0.0, 0.5, 1.3)) < 1e-9);
        // y stays constant in the xz-plane arc.
        for i in 0..=10 {
            let p = arc.position(arc.length() * i as f64 / 10.0);
            assert!((p.y - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn path_concatenation() {
        let mut path = Path::new();
        path.push_line(LineSegment::along_x(0.0, 1.0, 0.0, 0.0).unwrap());
        path.connect_to(Point3::new(1.0, 0.0, 0.5));
        path.push_line(
            LineSegment::new(Point3::new(1.0, 0.0, 0.5), Point3::new(0.0, 0.0, 0.5)).unwrap(),
        );
        assert_eq!(path.segment_count(), 3);
        assert!((path.length() - 2.5).abs() < 1e-12);
        assert!(path.is_continuous(1e-12));
        assert_eq!(path.start(), Some(Point3::ORIGIN));
        assert_eq!(path.end(), Some(Point3::new(0.0, 0.0, 0.5)));
        // Position lookup across segments.
        assert!(path.position(1.25).distance(Point3::new(1.0, 0.0, 0.25)) < 1e-12);
        assert!(path.position(99.0).distance(path.end().unwrap()) < 1e-12);
    }

    #[test]
    fn discontinuous_path_detected() {
        let mut path = Path::new();
        path.push_line(LineSegment::along_x(0.0, 1.0, 0.0, 0.0).unwrap());
        path.push_line(LineSegment::along_x(0.0, 1.0, 0.5, 0.0).unwrap());
        assert!(!path.is_continuous(1e-6));
    }

    #[test]
    fn connect_to_same_point_is_noop() {
        let mut path = Path::new();
        path.push_line(LineSegment::along_x(0.0, 1.0, 0.0, 0.0).unwrap());
        path.connect_to(Point3::new(1.0, 0.0, 0.0));
        assert_eq!(path.segment_count(), 1);
        // connect_to on an empty path is also a no-op.
        let mut empty = Path::new();
        empty.connect_to(Point3::ORIGIN);
        assert_eq!(empty.segment_count(), 0);
        assert_eq!(empty.start(), None);
        assert_eq!(empty.end(), None);
    }

    #[test]
    fn three_line_scan_geometry() {
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        let (p1, p2, p3) = scan.positions_at(0.1);
        assert_eq!(p1, Point3::new(0.1, 0.0, 0.0));
        assert_eq!(p2, Point3::new(0.1, 0.0, 0.2));
        assert_eq!(p3, Point3::new(0.1, -0.2, 0.0));
        assert_eq!(scan.line1().length(), scan.line2().length());
        assert_eq!(scan.x_range(), (-0.4, 0.4));
        assert_eq!(scan.y_offset(), 0.2);
        assert_eq!(scan.z_offset(), 0.2);
    }

    #[test]
    fn three_line_scan_path_is_continuous() {
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.15).unwrap();
        let path = scan.to_path();
        assert!(path.is_continuous(1e-12));
        // 3 lines + 2 connectors.
        assert_eq!(path.segment_count(), 5);
        // Path visits all three lines.
        assert_eq!(path.start(), Some(Point3::new(-0.4, 0.0, 0.0)));
        assert_eq!(path.end(), Some(Point3::new(0.4, -0.2, 0.0)));
    }

    #[test]
    fn three_line_scan_validation() {
        assert!(ThreeLineScan::new(0.0, 0.0, 0.2, 0.2).is_err());
        assert!(ThreeLineScan::new(-0.4, 0.4, 0.0, 0.2).is_err());
        assert!(ThreeLineScan::new(-0.4, 0.4, 0.2, 0.0).is_err());
        assert!(ThreeLineScan::new(f64::NAN, 0.4, 0.2, 0.2).is_err());
    }

    #[test]
    fn empty_path_length_zero() {
        let p = Path::new();
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.position(1.0), Point3::ORIGIN);
        assert!(p.is_continuous(1e-12));
    }
}
