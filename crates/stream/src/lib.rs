//! # lion-stream
//!
//! Online (streaming) phase calibration for the LION reproduction
//! (ICDCS 2022). The batch pipeline ([`lion_core`]) answers *"given this
//! whole trace, where is the antenna?"*; this crate answers the deployed
//! question — *"the reader is producing reads **right now**; where is the
//! antenna, and has the answer settled?"* — one read at a time, in
//! bounded memory, forever.
//!
//! Pieces:
//!
//! - [`StreamRead`] — the input record `(timestamp, position, phase,
//!   rssi, channel)`, convertible from [`lion_sim::PhaseSample`].
//! - [`StreamLocalizer`] — the pipeline: a bounded, time-ordered
//!   [`lion_core::SlidingWindow`] of the newest reads (out-of-order
//!   arrivals are spliced into their time slot, reads older than a full
//!   window retains are rejected), re-solved on a configurable
//!   [`Cadence`] — every *N* reads or every *T* seconds of *stream*
//!   time — emitting [`StreamEstimate`]s with hysteresis-based
//!   convergence detection ([`ConvergenceConfig`]).
//! - [`Ingress`] — the bounded hand-off queue used by
//!   `lion_engine`'s stream mode: fixed capacity, oldest-drop on
//!   overflow, deterministic and counted.
//!
//! Guarantees the tests pin:
//!
//! 1. **Bit-identical to batch** (in the default [`ResolveMode::Replay`]).
//!    A solve replays the window's wrapped phases through the exact same
//!    unwrap → smooth → pair → solve path as
//!    [`lion_core::Localizer2d::locate`], so a streaming estimate on a
//!    static window equals the batch answer **bit for bit** — including
//!    under shuffled arrival, because insertion is timestamp-sorted
//!    (`tests/stream_parity.rs`).
//! 2. **O(delta) re-solves on demand.** [`ResolveMode::Incremental`]
//!    patches persistent state ([`lion_core::IncrementalState`]) with
//!    only the reads that entered/left since the previous tick. Fallback
//!    and resync ticks literally run the replay path (bit-identical);
//!    delta ticks agree with replay to a documented 1e-6, and every
//!    fallback trigger is a pure function of the read sequence, so the
//!    replay/delta tick pattern is identical on any worker count.
//! 3. **O(window) memory.** Ring buffer and scratch allocations are made
//!    once; million-read streams do not grow them.
//!
//! Observability: solves run under a `lion.stream.solve` span; the global
//! [`lion_obs`] registry collects [`SOLVE_HISTOGRAM`] (solve latency) and
//! [`STREAM_LAG_HISTOGRAM`] (read-arrival → estimate-emission lag).
//!
//! # Example
//!
//! ```
//! use lion_stream::{Cadence, StreamConfig, StreamLocalizer, StreamRead};
//! use lion_geom::Point3;
//! use std::f64::consts::{PI, TAU};
//!
//! # fn main() -> Result<(), lion_core::CoreError> {
//! let antenna = Point3::new(1.2, 0.4, 0.0);
//! let config = StreamConfig::builder()
//!     .window_capacity(128)
//!     .cadence(Cadence::EveryReads(25))
//!     .build()?;
//! let lambda = config.localizer.wavelength;
//! let mut stream = StreamLocalizer::new(config)?;
//! let mut last = None;
//! for i in 0..300 {
//!     // Circular scan, 120 reads per revolution.
//!     let a = i as f64 * TAU / 120.0;
//!     let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
//!     let read = StreamRead {
//!         time: i as f64 * 0.01,
//!         position: p,
//!         phase: (4.0 * PI * antenna.distance(p) / lambda) % TAU,
//!         ..StreamRead::default()
//!     };
//!     if let Some(est) = stream.push(read)? {
//!         last = Some(est);
//!     }
//! }
//! assert!(last.expect("estimates emitted").position.distance(antenna) < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod convergence;
mod estimator;
mod ingress;
mod read;

pub use config::{
    Cadence, ConvergenceConfig, ResolveMode, Space, StreamConfig, StreamConfigBuilder,
};
pub use convergence::ConvergenceTracker;
pub use estimator::{StreamEstimate, StreamLocalizer, SOLVE_HISTOGRAM, STREAM_LAG_HISTOGRAM};
pub use ingress::Ingress;
pub use read::StreamRead;
