//! The streaming input record.

use lion_geom::Point3;
use lion_sim::PhaseSample;

/// One read delivered to the streaming pipeline: `(timestamp, position,
/// phase, rssi, channel)` exactly as a reader reports it.
///
/// Field-for-field this mirrors [`lion_sim::PhaseSample`] (and converts
/// from it), but it lives here so the pipeline is not tied to the
/// simulator — hardware adapters construct it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRead {
    /// Seconds on the stream's own clock.
    pub time: f64,
    /// Tag position at the moment of the read (the calibration scan's
    /// known trajectory point).
    pub position: Point3,
    /// Reported phase in `[0, 2π)` radians.
    pub phase: f64,
    /// Received signal strength (dBm).
    pub rssi_dbm: f64,
    /// Carrier frequency of this read's channel (Hz).
    pub frequency_hz: f64,
}

impl Default for StreamRead {
    /// Zero time/position/phase at the US-band default channel with a
    /// strong (-50 dBm) RSSI — a convenient base for struct-update syntax
    /// in tests and examples.
    fn default() -> Self {
        StreamRead {
            time: 0.0,
            position: Point3::ORIGIN,
            phase: 0.0,
            rssi_dbm: -50.0,
            frequency_hz: lion_sim::US_DEFAULT_FREQUENCY_HZ,
        }
    }
}

impl From<PhaseSample> for StreamRead {
    fn from(s: PhaseSample) -> Self {
        StreamRead {
            time: s.time,
            position: s.position,
            phase: s.phase,
            rssi_dbm: s.rssi_dbm,
            frequency_hz: s.frequency_hz,
        }
    }
}

impl From<&PhaseSample> for StreamRead {
    fn from(s: &PhaseSample) -> Self {
        StreamRead::from(*s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_from_phase_sample() {
        let sample = PhaseSample {
            time: 1.5,
            position: Point3::new(0.1, 0.2, 0.3),
            phase: 2.0,
            rssi_dbm: -60.0,
            frequency_hz: 915e6,
        };
        let read = StreamRead::from(sample);
        assert_eq!(read.time, 1.5);
        assert_eq!(read.position, Point3::new(0.1, 0.2, 0.3));
        assert_eq!(read.phase, 2.0);
        assert_eq!(read.rssi_dbm, -60.0);
        assert_eq!(read.frequency_hz, 915e6);
    }
}
