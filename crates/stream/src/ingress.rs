//! Bounded ingress queue with oldest-drop backpressure.
//!
//! A live reader produces reads faster than a solver under load can drain
//! them. [`Ingress`] is the buffer between the two: a fixed-capacity FIFO
//! that, when full, **drops the oldest queued read** to admit the newest —
//! the right policy for a localization stream, where the newest reads
//! carry the freshest geometry and an old read's information is
//! superseded anyway once the window slides past it.
//!
//! Drops are deterministic (a pure function of the offered sequence and
//! the drain schedule) and counted, so backpressure behaviour is testable
//! exactly — see `tests/stream_backpressure.rs` at the workspace root.

use std::collections::VecDeque;
use std::time::Instant;

use crate::read::StreamRead;

/// A bounded FIFO of [`StreamRead`]s that sheds the oldest entry on
/// overflow.
///
/// # Example
///
/// ```
/// use lion_stream::{Ingress, StreamRead};
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let mut q = Ingress::new(2)?;
/// let read = |t: f64| StreamRead {
///     time: t,
///     ..StreamRead::default()
/// };
/// assert!(q.offer(read(0.0)).is_none());
/// assert!(q.offer(read(1.0)).is_none());
/// // Full: the oldest read is pushed out and handed back.
/// let shed = q.offer(read(2.0)).expect("overflow sheds");
/// assert_eq!(shed.time, 0.0);
/// assert_eq!(q.overflow_dropped(), 1);
/// assert_eq!(q.pop().expect("queued").time, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ingress {
    queue: VecDeque<(StreamRead, Instant)>,
    capacity: usize,
    offered: u64,
    overflow_dropped: u64,
}

impl Ingress {
    /// Creates a queue admitting at most `capacity` reads, allocated once
    /// up front (offers never reallocate).
    ///
    /// # Errors
    ///
    /// [`lion_core::CoreError::InvalidConfig`] when `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, lion_core::CoreError> {
        if capacity == 0 {
            return Err(lion_core::CoreError::InvalidConfig {
                parameter: "ingress_capacity",
                found: "0".to_string(),
            });
        }
        Ok(Ingress {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            offered: 0,
            overflow_dropped: 0,
        })
    }

    /// Enqueues a read, stamping its arrival instant. When full, the
    /// **oldest** queued read is removed to make room and returned (so
    /// callers can count or log it); otherwise returns `None`.
    pub fn offer(&mut self, read: StreamRead) -> Option<StreamRead> {
        self.offered += 1;
        let shed = if self.queue.len() == self.capacity {
            // Shed before pushing so the backing buffer never exceeds
            // `capacity` elements and therefore never reallocates.
            self.overflow_dropped += 1;
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back((read, Instant::now()));
        shed.map(|(read, _)| read)
    }

    /// Dequeues the oldest queued read.
    pub fn pop(&mut self) -> Option<StreamRead> {
        self.queue.pop_front().map(|(read, _)| read)
    }

    /// Dequeues the oldest queued read together with the instant it was
    /// offered — feed both to [`crate::StreamLocalizer::push_at`] so the
    /// `lion.stream.stream_lag_ns` histogram includes queue wait.
    pub fn pop_with_arrival(&mut self) -> Option<(StreamRead, Instant)> {
        self.queue.pop_front()
    }

    /// Reads currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Maximum queued reads.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total reads ever offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total reads shed to overflow.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(t: f64) -> StreamRead {
        StreamRead {
            time: t,
            ..StreamRead::default()
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(Ingress::new(0).is_err());
    }

    #[test]
    fn fifo_under_capacity() {
        let mut q = Ingress::new(4).unwrap();
        for t in 0..3 {
            assert!(q.offer(read(t as f64)).is_none());
        }
        assert_eq!(q.len(), 3);
        for t in 0..3 {
            assert_eq!(q.pop().unwrap().time, t as f64);
        }
        assert!(q.is_empty());
        assert_eq!(q.overflow_dropped(), 0);
    }

    #[test]
    fn overflow_sheds_oldest_deterministically() {
        let mut q = Ingress::new(3).unwrap();
        for t in 0..8 {
            q.offer(read(t as f64));
        }
        // Reads 0..5 were shed, 5..8 survive.
        assert_eq!(q.overflow_dropped(), 5);
        assert_eq!(q.offered(), 8);
        let survivors: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|r| r.time).collect();
        assert_eq!(survivors, vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn pop_with_arrival_orders_instants() {
        let mut q = Ingress::new(4).unwrap();
        q.offer(read(0.0));
        q.offer(read(1.0));
        let (first, t0) = q.pop_with_arrival().unwrap();
        let (second, t1) = q.pop_with_arrival().unwrap();
        assert_eq!(first.time, 0.0);
        assert_eq!(second.time, 1.0);
        assert!(t1 >= t0);
    }

    #[test]
    fn backing_buffer_never_grows() {
        let mut q = Ingress::new(16).unwrap();
        for t in 0..64 {
            q.offer(read(t as f64));
        }
        let warm = q.queue.capacity();
        for t in 64..4096 {
            q.offer(read(t as f64));
        }
        assert_eq!(q.queue.capacity(), warm, "ingress buffer reallocated");
    }
}
