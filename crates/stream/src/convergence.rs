//! Hysteresis-based convergence detection.

use lion_geom::Point3;

use crate::config::ConvergenceConfig;

/// Tracks whether successive position estimates have settled.
///
/// Pure hysteresis state machine (see [`ConvergenceConfig`]): feed it each
/// solve's position via [`ConvergenceTracker::observe`] and read back
/// whether the stream counts as converged. No wall-clock, no randomness —
/// the same estimate sequence always produces the same verdict sequence.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    config: ConvergenceConfig,
    last: Option<Point3>,
    streak: usize,
    converged: bool,
}

impl ConvergenceTracker {
    /// A tracker in the unconverged state.
    pub fn new(config: ConvergenceConfig) -> Self {
        ConvergenceTracker {
            config,
            last: None,
            streak: 0,
            converged: false,
        }
    }

    /// Feeds the next solve's position; returns the updated verdict.
    ///
    /// The first observation never converges (there is no movement to
    /// measure yet).
    pub fn observe(&mut self, position: Point3) -> bool {
        if let Some(last) = self.last {
            let movement = position.distance(last);
            if self.converged {
                if movement > self.config.exit_eps {
                    self.converged = false;
                    self.streak = 0;
                }
            } else if movement < self.config.enter_eps {
                self.streak += 1;
                if self.streak >= self.config.hold {
                    self.converged = true;
                }
            } else {
                self.streak = 0;
            }
        }
        self.last = Some(position);
        self.converged
    }

    /// The current verdict without feeding a new estimate.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Forgets all state (verdict, streak, last position).
    pub fn reset(&mut self) {
        self.last = None;
        self.streak = 0;
        self.converged = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(enter: f64, exit: f64, hold: usize) -> ConvergenceTracker {
        ConvergenceTracker::new(ConvergenceConfig {
            enter_eps: enter,
            exit_eps: exit,
            hold,
        })
    }

    #[test]
    fn converges_after_hold_quiet_solves() {
        let mut t = tracker(1e-3, 5e-3, 3);
        let p = Point3::new(1.0, 0.0, 0.0);
        assert!(!t.observe(p)); // first: no movement defined
        assert!(!t.observe(p)); // streak 1
        assert!(!t.observe(p)); // streak 2
        assert!(t.observe(p)); // streak 3 → converged
    }

    #[test]
    fn hysteresis_band_does_not_flap() {
        let mut t = tracker(1e-3, 5e-3, 1);
        let p = Point3::new(1.0, 0.0, 0.0);
        t.observe(p);
        assert!(t.observe(p));
        // Movement inside (enter_eps, exit_eps): converged holds.
        assert!(t.observe(Point3::new(1.0 + 3e-3, 0.0, 0.0)));
        // Movement beyond exit_eps: drops out.
        assert!(!t.observe(Point3::new(1.0 + 20e-3, 0.0, 0.0)));
        // And it must re-earn the streak.
        assert!(t.observe(Point3::new(1.0 + 20e-3, 0.0, 0.0)));
    }

    #[test]
    fn noisy_movement_resets_the_streak() {
        let mut t = tracker(1e-3, 5e-3, 2);
        let p = Point3::new(1.0, 0.0, 0.0);
        t.observe(p);
        assert!(!t.observe(p)); // streak 1
        assert!(!t.observe(Point3::new(1.1, 0.0, 0.0))); // reset
        assert!(!t.observe(Point3::new(1.1, 0.0, 0.0))); // streak 1
        assert!(t.observe(Point3::new(1.1, 0.0, 0.0))); // streak 2 → converged
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = tracker(1e-3, 5e-3, 1);
        let p = Point3::new(1.0, 0.0, 0.0);
        t.observe(p);
        assert!(t.observe(p));
        t.reset();
        assert!(!t.is_converged());
        assert!(!t.observe(p)); // first observation again
    }
}
