//! The online calibration pipeline: reads in, estimates out.

use std::time::Instant;

use lion_core::calibrate::estimate_offset;
use lion_core::{
    locate_window_in, CoreError, Estimate, IncrementalState, PushOutcome, ResolvePath,
    SlidingWindow, SolverKind, Workspace,
};
use lion_geom::Point3;
use lion_obs::HistogramTimer;

use crate::config::{Cadence, ResolveMode, StreamConfig};
use crate::convergence::ConvergenceTracker;
use crate::read::StreamRead;

/// Histogram name for end-to-end read→estimate latency (nanoseconds):
/// the time from a read's arrival (its [`Instant`] at ingress) to the
/// emission of the estimate it triggered.
pub const STREAM_LAG_HISTOGRAM: &str = "lion.stream.stream_lag_ns";

/// Histogram name for the solve-only latency (nanoseconds).
pub const SOLVE_HISTOGRAM: &str = "lion.stream.solve_ns";

/// One emission of the streaming pipeline.
#[derive(Debug, Clone)]
pub struct StreamEstimate {
    /// Emission sequence number, starting at 0.
    pub seq: u64,
    /// Stream timestamp of the read that triggered this solve.
    pub trigger_time: f64,
    /// Total reads offered to the pipeline so far (accepted or not).
    pub reads_seen: u64,
    /// Reads in the window at solve time.
    pub window_len: usize,
    /// Stream-time span of the window (newest − oldest timestamp) — the
    /// online analogue of the paper's scanning range.
    pub window_span: f64,
    /// Estimated antenna phase-center position.
    pub position: Point3,
    /// Estimated reference distance `d_r` (meters).
    pub d_r: f64,
    /// Diversity-phase offset `θ_div` estimated against `position`
    /// (radians), `None` when the offset fit was degenerate — and always
    /// `None` on incremental delta ticks, which skip the O(window) offset
    /// fit to stay O(delta) (every resync/fallback tick refreshes it).
    pub phase_offset: Option<f64>,
    /// Circular spread of the per-sample offsets (radians), `None`
    /// whenever `phase_offset` is.
    pub offset_spread: Option<f64>,
    /// Mean equation residual of the underlying solve (meters).
    pub mean_residual: f64,
    /// Heuristic confidence in `[0, 1]`: the window fill fraction damped
    /// by the solve residual (`fill · exp(−|mean_residual| / (λ/8))`).
    /// Comparable across solves of one stream, not across configs.
    pub confidence: f64,
    /// Convergence verdict under the configured hysteresis.
    pub converged: bool,
    /// Which path produced this emission. Always
    /// [`ResolvePath::Replayed`] in [`ResolveMode::Replay`];
    /// in [`ResolveMode::Incremental`] a `Replayed` tick is a resync or
    /// deterministic fallback.
    pub resolve_path: ResolvePath,
    /// The full solver estimate this emission is derived from. On
    /// [`ResolvePath::Replayed`] ticks it is bit-identical to running the
    /// batch localizer on the window's reads; on
    /// [`ResolvePath::Incremental`] ticks the position agrees with that
    /// replay to a documented 1e-6 (DESIGN.md §14).
    pub batch: Estimate,
}

/// Online calibration: feed reads one at a time, get a stream of
/// [`StreamEstimate`]s re-solved on the configured cadence.
///
/// Memory is O(window): the sliding window and every scratch buffer are
/// allocated once and reused — an arbitrarily long stream does not grow
/// the pipeline (see `backing_capacity`-pinning tests).
///
/// In the default [`ResolveMode::Replay`] a solve replays the window
/// through the **exact same** code path as the batch localizer, so a
/// streaming estimate on a static window is bit-identical to
/// [`lion_core::Localizer2d::locate`] on the same reads (see
/// `tests/stream_parity.rs`). [`ResolveMode::Incremental`] trades that
/// guarantee down to a documented 1e-6 on delta ticks in exchange for
/// O(delta) work per solve; fallback ticks remain bit-identical.
///
/// # Example
///
/// ```
/// use lion_stream::{StreamConfig, StreamLocalizer, StreamRead};
/// use lion_geom::Point3;
/// use std::f64::consts::{PI, TAU};
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let antenna = Point3::new(1.2, 0.4, 0.0);
/// let config = StreamConfig::default();
/// let lambda = config.localizer.wavelength;
/// let mut stream = StreamLocalizer::new(config)?;
/// let mut last = None;
/// for i in 0..400 {
///     // Circular scan, 120 reads per revolution.
///     let a = i as f64 * TAU / 120.0;
///     let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
///     let read = StreamRead {
///         time: i as f64 * 0.01,
///         position: p,
///         phase: (4.0 * PI * antenna.distance(p) / lambda) % TAU,
///         ..StreamRead::default()
///     };
///     if let Some(est) = stream.push(read)? {
///         last = Some(est);
///     }
/// }
/// let est = last.expect("cadence emitted estimates");
/// assert!(est.position.distance(antenna) < 5e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamLocalizer {
    config: StreamConfig,
    /// Persistent O(delta) re-solve state; `Some` iff the configured
    /// resolve mode is [`ResolveMode::Incremental`].
    resolve: Option<IncrementalState>,
    window: SlidingWindow,
    workspace: Workspace,
    /// Scratch for the phase-offset fit; reused across solves.
    measurements: Vec<(Point3, f64)>,
    tracker: ConvergenceTracker,
    reads_seen: u64,
    accepted: u64,
    reads_since_solve: usize,
    last_solve_time: Option<f64>,
    seq: u64,
    solve_errors: u64,
    resolve_fallbacks: u64,
}

impl StreamLocalizer {
    /// Builds the pipeline, validating `config` and pre-allocating the
    /// window.
    ///
    /// # Errors
    ///
    /// See [`StreamConfig::validate`].
    pub fn new(config: StreamConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let resolve = match config.resolve_mode {
            ResolveMode::Incremental => Some(IncrementalState::new()),
            _ => None,
        };
        let window = SlidingWindow::new(config.window_capacity)?;
        Ok(StreamLocalizer {
            tracker: ConvergenceTracker::new(config.convergence),
            measurements: Vec::with_capacity(config.window_capacity),
            config,
            resolve,
            window,
            workspace: Workspace::new(),
            reads_seen: 0,
            accepted: 0,
            reads_since_solve: 0,
            last_solve_time: None,
            seq: 0,
            solve_errors: 0,
            resolve_fallbacks: 0,
        })
    }

    /// Feeds one read, stamping its arrival time now. Returns an estimate
    /// when this read triggered a solve under the configured cadence.
    ///
    /// # Errors
    ///
    /// Propagates the solver's [`CoreError`] when a due solve fails (the
    /// pipeline stays usable — the window and cadence state are intact,
    /// and the failure is counted in [`StreamLocalizer::solve_errors`]).
    pub fn push(&mut self, read: StreamRead) -> Result<Option<StreamEstimate>, CoreError> {
        self.push_at(read, Instant::now())
    }

    /// [`StreamLocalizer::push`] with an explicit arrival instant —
    /// callers that queue reads (the engine's stream mode) pass the
    /// *enqueue* time so the `lion.stream.stream_lag_ns` histogram
    /// captures queue wait as well as solve latency.
    pub fn push_at(
        &mut self,
        read: StreamRead,
        arrival: Instant,
    ) -> Result<Option<StreamEstimate>, CoreError> {
        self.reads_seen += 1;
        let outcome = {
            // Window maintenance (ordered insert, eviction, late
            // rejection) as its own stage in the solve's span tree.
            let _span = lion_obs::span!("lion.stream.window");
            self.window.push(read.time, read.position, read.phase)
        };
        match outcome {
            PushOutcome::TooLate => return Ok(None),
            PushOutcome::Inserted | PushOutcome::Evicted => {}
        }
        self.accepted += 1;
        self.reads_since_solve += 1;
        if !self.due(read.time) {
            return Ok(None);
        }
        self.reads_since_solve = 0;
        self.last_solve_time = Some(read.time);
        self.solve(read.time, Some(arrival)).map(Some)
    }

    /// Whether the cadence calls for a solve at stream time `now`.
    fn due(&self, now: f64) -> bool {
        if self.window.len() < self.config.min_window_len {
            return false;
        }
        match self.config.cadence {
            // The counter runs from stream start, so the first solve
            // lands at max(min_window_len, n) accepted reads.
            Cadence::EveryReads(n) => self.reads_since_solve >= n,
            Cadence::EverySeconds(t) => match self.last_solve_time {
                Some(last) => now - last >= t,
                None => true,
            },
        }
    }

    /// Forces a solve on the current window regardless of cadence —
    /// e.g. at end-of-stream, to consume reads that arrived after the
    /// last scheduled solve. Returns `Ok(None)` on an empty window.
    ///
    /// # Errors
    ///
    /// Propagates the solver's [`CoreError`] (e.g.
    /// [`CoreError::TooFewMeasurements`] on a nearly empty window).
    pub fn flush(&mut self) -> Result<Option<StreamEstimate>, CoreError> {
        let Some(newest) = self.window.samples().last().map(|s| s.time) else {
            return Ok(None);
        };
        self.reads_since_solve = 0;
        self.last_solve_time = Some(newest);
        self.solve(newest, None).map(Some)
    }

    /// Re-solves the *current* window through an alternative backend —
    /// the independent second opinion behind the engine's
    /// `solver_disagreement` watchdog. The primary pipeline is untouched:
    /// no cadence, convergence, or counter state changes, only the shared
    /// scratch workspace is reused.
    ///
    /// # Errors
    ///
    /// The backend's [`CoreError`] (window too small, degenerate
    /// geometry, grid failures, ...).
    pub fn cross_check_in(&mut self, kind: SolverKind) -> Result<Estimate, CoreError> {
        let _span = lion_obs::span!("lion.stream.cross_check");
        let mut config = self.config.localizer.clone();
        config.solver = kind;
        locate_window_in(
            &config,
            self.config.space.solve_space(),
            &self.window,
            &mut self.workspace,
        )
    }

    fn solve(
        &mut self,
        trigger_time: f64,
        arrival: Option<Instant>,
    ) -> Result<StreamEstimate, CoreError> {
        let _span = lion_obs::span!("lion.stream.solve");
        let solve_timer = HistogramTimer::start(lion_obs::global(), SOLVE_HISTOGRAM);
        let space = self.config.space.solve_space();
        let solved = match self.resolve.as_mut() {
            Some(state) => state.solve_window(
                &mut self.window,
                &self.config.localizer,
                space,
                &mut self.workspace,
            ),
            None => locate_window_in(
                &self.config.localizer,
                space,
                &self.window,
                &mut self.workspace,
            )
            .map(|est| (est, ResolvePath::Replayed)),
        };
        // Tags the latency with the ambient trace id (when tracing is
        // attached) so histogram exemplars link slow solves to their
        // flight-recorder span trees.
        solve_timer.stop_traced();
        let (batch, resolve_path) = match solved {
            Ok(solved) => solved,
            Err(e) => {
                self.solve_errors += 1;
                lion_obs::global().counter_add("lion.stream.solve_errors", 1);
                lion_obs::event!(
                    lion_obs::Level::Warn,
                    "lion.stream.solve_failed",
                    "kind" => e.kind(),
                    "window_len" => self.window.len() as u64,
                );
                return Err(e);
            }
        };
        let mode_counter = match (self.config.resolve_mode, resolve_path) {
            (ResolveMode::Incremental, ResolvePath::Incremental) => {
                "lion.stream.resolve_mode.incremental"
            }
            (ResolveMode::Incremental, ResolvePath::Replayed) => {
                self.resolve_fallbacks += 1;
                "lion.stream.resolve_mode.fallback"
            }
            _ => "lion.stream.resolve_mode.replay",
        };
        lion_obs::global().counter_add(mode_counter, 1);
        // Diversity-phase offset against the solved phase center, on the
        // very same wrapped reads the solve consumed — skipped on delta
        // ticks: the fit walks the whole window, which would erase the
        // O(delta) budget. Every resync/fallback tick refreshes it.
        let offset = if resolve_path == ResolvePath::Incremental {
            None
        } else {
            self.window.write_measurements_into(&mut self.measurements);
            estimate_offset(
                &self.measurements,
                batch.position,
                self.config.localizer.wavelength,
            )
            .ok()
        };
        let converged = self.tracker.observe(batch.position);
        let fill = self.window.len() as f64 / self.window.capacity() as f64;
        let residual_scale = self.config.localizer.wavelength / 8.0;
        let confidence =
            (fill * (-batch.mean_residual.abs() / residual_scale).exp()).clamp(0.0, 1.0);
        let estimate = StreamEstimate {
            seq: self.seq,
            trigger_time,
            reads_seen: self.reads_seen,
            window_len: self.window.len(),
            window_span: self.window.span(),
            position: batch.position,
            d_r: batch.reference_distance,
            phase_offset: offset.map(|(o, _)| o),
            offset_spread: offset.map(|(_, s)| s),
            mean_residual: batch.mean_residual,
            confidence,
            converged,
            resolve_path,
            batch,
        };
        self.seq += 1;
        if let Some(arrival) = arrival {
            let lag = u64::try_from(arrival.elapsed().as_nanos()).unwrap_or(u64::MAX);
            lion_obs::global().histogram_record(STREAM_LAG_HISTOGRAM, lag);
        }
        lion_obs::event!(
            lion_obs::Level::Debug,
            "lion.stream.estimate",
            "seq" => estimate.seq,
            "window_len" => estimate.window_len as u64,
            "converged" => estimate.converged,
        );
        Ok(estimate)
    }

    /// The configuration this pipeline runs.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The sliding window (inspect fill, span, eviction counters).
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Total reads offered (accepted or not).
    pub fn reads_seen(&self) -> u64 {
        self.reads_seen
    }

    /// Reads accepted into the window (inserted or evicting).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Reads rejected as too late to matter (window slid past them).
    pub fn rejected_late(&self) -> u64 {
        self.window.rejected_late()
    }

    /// Estimates emitted so far.
    pub fn estimates_emitted(&self) -> u64 {
        self.seq
    }

    /// Due solves that failed (the error was returned to the caller).
    pub fn solve_errors(&self) -> u64 {
        self.solve_errors
    }

    /// The configured resolve mode (replay vs incremental).
    pub fn resolve_mode(&self) -> ResolveMode {
        self.config.resolve_mode
    }

    /// Normal-equation rows touched by incremental delta ticks (removed +
    /// replaced + pushed) — the O(delta) work metric. Zero in
    /// [`ResolveMode::Replay`].
    pub fn resolve_rows_delta(&self) -> u64 {
        self.resolve.as_ref().map_or(0, |s| s.rows_delta())
    }

    /// Full state rebuilds in incremental mode (initial warm-up, periodic
    /// re-anchors, and fallbacks). Zero in [`ResolveMode::Replay`].
    pub fn resolve_rebuilds(&self) -> u64 {
        self.resolve.as_ref().map_or(0, |s| s.rebuilds())
    }

    /// Emitted solves that fell back to (or resynced via) the replay path
    /// while in [`ResolveMode::Incremental`]. Zero in
    /// [`ResolveMode::Replay`], where every solve replays by design.
    pub fn resolve_fallbacks(&self) -> u64 {
        self.resolve_fallbacks
    }

    /// Current convergence verdict.
    pub fn is_converged(&self) -> bool {
        self.tracker.is_converged()
    }

    /// Empties the window and resets cadence/convergence state (lifetime
    /// counters are kept) — e.g. when the stream switches tags.
    pub fn reset(&mut self) {
        self.window.clear();
        if let Some(state) = self.resolve.as_mut() {
            state.invalidate();
        }
        self.tracker.reset();
        self.reads_since_solve = 0;
        self.last_solve_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConvergenceConfig;
    use std::f64::consts::{PI, TAU};

    /// A noise-free circular scan (radius 0.3 m, 120 reads/revolution,
    /// 10 ms read spacing) — enough spatial span for the default 0.2 m
    /// pair interval by the default 24-read minimum window.
    fn clean_read(antenna: Point3, i: usize, lambda: f64) -> StreamRead {
        let a = i as f64 * TAU / 120.0;
        let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
        StreamRead {
            time: i as f64 * 0.01,
            position: p,
            phase: (4.0 * PI * antenna.distance(p) / lambda) % TAU,
            ..StreamRead::default()
        }
    }

    fn run_stream(config: StreamConfig, n: usize) -> (StreamLocalizer, Vec<StreamEstimate>) {
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let lambda = config.localizer.wavelength;
        let mut stream = StreamLocalizer::new(config).expect("valid config");
        let mut estimates = Vec::new();
        for i in 0..n {
            if let Some(est) = stream.push(clean_read(antenna, i, lambda)).expect("solves") {
                estimates.push(est);
            }
        }
        (stream, estimates)
    }

    #[test]
    fn cadence_every_reads_emits_on_schedule() {
        let config = StreamConfig::builder()
            .min_window_len(24)
            .cadence(Cadence::EveryReads(10))
            .build()
            .unwrap();
        let (_, estimates) = run_stream(config, 100);
        // First solve at read 24 (min window), then every 10 reads.
        let triggers: Vec<u64> = estimates.iter().map(|e| e.reads_seen).collect();
        assert_eq!(triggers, vec![24, 34, 44, 54, 64, 74, 84, 94]);
        for (i, est) in estimates.iter().enumerate() {
            assert_eq!(est.seq, i as u64);
        }
    }

    #[test]
    fn cadence_every_seconds_uses_stream_time() {
        let config = StreamConfig::builder()
            .min_window_len(24)
            .cadence(Cadence::EverySeconds(0.30))
            .build()
            .unwrap();
        // Reads at 10 ms spacing: first solve at the 24th read (0.23 s),
        // then every 30 reads (0.30 s of stream time).
        let (_, estimates) = run_stream(config, 120);
        let triggers: Vec<u64> = estimates.iter().map(|e| e.reads_seen).collect();
        assert_eq!(triggers, vec![24, 54, 84, 114]);
    }

    #[test]
    fn incremental_mode_emits_delta_ticks_and_counts_work() {
        let config = StreamConfig::builder()
            .resolve_mode(ResolveMode::Incremental)
            .build()
            .unwrap();
        let (stream, estimates) = run_stream(config, 400);
        assert_eq!(stream.resolve_mode(), ResolveMode::Incremental);
        assert!(!estimates.is_empty());
        // The first tick warms the state via replay; the steady state is
        // delta ticks (in-order arrivals, cadence 16 << window 256).
        assert_eq!(estimates[0].resolve_path, ResolvePath::Replayed);
        let incremental = estimates
            .iter()
            .filter(|e| e.resolve_path == ResolvePath::Incremental)
            .count();
        assert!(
            incremental >= estimates.len() / 2,
            "expected mostly delta ticks, got {incremental}/{}",
            estimates.len()
        );
        assert!(stream.resolve_rows_delta() > 0);
        assert!(stream.resolve_rebuilds() >= 1);
        assert!(stream.resolve_fallbacks() >= 1);
        // Delta ticks skip the O(window) offset fit; fallback ticks run it.
        for est in &estimates {
            if est.resolve_path == ResolvePath::Incremental {
                assert!(est.phase_offset.is_none());
                assert!(est.offset_spread.is_none());
            }
        }
        // And the positions still track the antenna.
        let last = estimates.last().unwrap();
        assert!(last.position.distance(Point3::new(1.2, 0.4, 0.0)) < 5e-2);
    }

    #[test]
    fn replay_mode_reports_no_incremental_work() {
        let (stream, estimates) = run_stream(StreamConfig::default(), 200);
        assert_eq!(stream.resolve_mode(), ResolveMode::Replay);
        assert!(estimates
            .iter()
            .all(|e| e.resolve_path == ResolvePath::Replayed));
        assert_eq!(stream.resolve_rows_delta(), 0);
        assert_eq!(stream.resolve_rebuilds(), 0);
        assert_eq!(stream.resolve_fallbacks(), 0);
    }

    #[test]
    fn estimates_converge_on_a_clean_linear_scan() {
        let config = StreamConfig::builder()
            .convergence(ConvergenceConfig {
                enter_eps: 5e-3,
                exit_eps: 2e-2,
                hold: 2,
            })
            .build()
            .unwrap();
        let (stream, estimates) = run_stream(config, 400);
        let last = estimates.last().expect("estimates emitted");
        assert!(last.converged, "clean scan should converge");
        assert!(stream.is_converged());
        assert!(last.position.distance(Point3::new(1.2, 0.4, 0.0)) < 5e-2);
        assert!(last.confidence > 0.0 && last.confidence <= 1.0);
        assert!(last.window_span > 0.0);
    }

    #[test]
    fn phase_offset_recovered_on_offset_stream() {
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let injected = 1.1_f64;
        // Clean data: smoothing off, so the position (and therefore the
        // offset fit against it) is exact.
        let localizer = lion_core::LocalizerConfig {
            smoothing_window: 1,
            ..Default::default()
        };
        let config = StreamConfig::builder()
            .localizer(localizer)
            .build()
            .unwrap();
        let lambda = config.localizer.wavelength;
        let mut stream = StreamLocalizer::new(config).unwrap();
        let mut last = None;
        for i in 0..400 {
            let mut read = clean_read(antenna, i, lambda);
            read.phase = (read.phase + injected).rem_euclid(TAU);
            if let Some(est) = stream.push(read).expect("solves") {
                last = Some(est);
            }
        }
        let est = last.expect("estimates emitted");
        // Offsets are recovered modulo 2π; compare on the circle.
        let got = est.phase_offset.expect("offset fit succeeds");
        let diff = (got - injected + PI).rem_euclid(TAU) - PI;
        assert!(diff.abs() < 1e-6, "offset {got} vs injected {injected}");
        assert!(est.offset_spread.expect("spread") < 1e-3);
    }

    #[test]
    fn flush_solves_pending_tail() {
        let config = StreamConfig::builder()
            .cadence(Cadence::EveryReads(1000))
            .build()
            .unwrap();
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let lambda = config.localizer.wavelength;
        let mut stream = StreamLocalizer::new(config).unwrap();
        for i in 0..200 {
            let emitted = stream.push(clean_read(antenna, i, lambda)).expect("ok");
            assert!(emitted.is_none(), "cadence of 1000 must not fire in 200");
        }
        let est = stream.flush().expect("solves").expect("window non-empty");
        assert!(est.position.distance(antenna) < 5e-2);
        assert_eq!(stream.estimates_emitted(), 1);
    }

    #[test]
    fn solve_failure_is_counted_and_pipeline_survives() {
        // A stationary tag gives zero trajectory span — degenerate.
        let config = StreamConfig::builder().min_window_len(8).build().unwrap();
        let mut stream = StreamLocalizer::new(config).unwrap();
        let mut failures = 0;
        for i in 0..16 {
            let read = StreamRead {
                time: i as f64,
                position: Point3::new(0.5, 0.0, 0.0),
                phase: 1.0,
                ..StreamRead::default()
            };
            if stream.push(read).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "degenerate window must fail to solve");
        assert_eq!(stream.solve_errors(), failures);
        // The pipeline is still usable afterwards. Early warm-up solves
        // (tiny spatial span) may still fail; the stream shrugs them off.
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let lambda = stream.config().localizer.wavelength;
        stream.reset();
        for i in 0..400 {
            let _ = stream.push(clean_read(antenna, i, lambda));
        }
        assert!(stream.estimates_emitted() > 0);
    }

    #[test]
    fn memory_stays_bounded_over_long_streams() {
        let config = StreamConfig::builder()
            .window_capacity(64)
            .min_window_len(24)
            .cadence(Cadence::EveryReads(50))
            .build()
            .unwrap();
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let lambda = config.localizer.wavelength;
        let mut stream = StreamLocalizer::new(config).unwrap();
        for i in 0..2_000 {
            let _ = stream.push(clean_read(antenna, i, lambda));
        }
        let warm_window = stream.window.backing_capacity();
        let warm_scratch = stream.measurements.capacity();
        for i in 2_000..30_000 {
            let _ = stream.push(clean_read(antenna, i, lambda));
        }
        assert_eq!(stream.window.backing_capacity(), warm_window);
        assert_eq!(stream.measurements.capacity(), warm_scratch);
        assert_eq!(stream.reads_seen(), 30_000);
    }
}
