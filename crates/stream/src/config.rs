//! Streaming pipeline configuration.

use lion_core::{CoreError, LocalizerConfig};

/// When the pipeline re-solves.
///
/// Both variants are phrased in the *stream's* units — read counts and
/// sample timestamps — never wall clock, so a replayed trace produces the
/// same solve points every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cadence {
    /// Re-solve after every `n` accepted reads.
    EveryReads(usize),
    /// Re-solve whenever at least `t` seconds of stream time have passed
    /// since the previous solve (timestamps of the accepted reads).
    EverySeconds(f64),
}

impl Cadence {
    /// Validates the cadence.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for a zero read count or a
    /// non-positive/non-finite period.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            Cadence::EveryReads(0) => Err(CoreError::InvalidConfig {
                parameter: "cadence.every_reads",
                found: "0".to_string(),
            }),
            Cadence::EverySeconds(t) if !(t > 0.0 && t.is_finite()) => {
                Err(CoreError::InvalidConfig {
                    parameter: "cadence.every_seconds",
                    found: format!("{t}"),
                })
            }
            _ => Ok(()),
        }
    }
}

impl Default for Cadence {
    /// Re-solve every 16 reads.
    fn default() -> Self {
        Cadence::EveryReads(16)
    }
}

/// Hysteresis thresholds for convergence detection.
///
/// The estimate is declared *converged* after `hold` consecutive solves
/// each move the position by less than `enter_eps` meters, and declared
/// unconverged again only when a solve moves it by more than `exit_eps`
/// meters. Requiring `exit_eps > enter_eps` (strictly) is what prevents
/// flapping when the movement hovers at the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceConfig {
    /// Movement below this (meters) counts toward convergence.
    pub enter_eps: f64,
    /// Movement above this (meters) breaks convergence.
    pub exit_eps: f64,
    /// Consecutive sub-`enter_eps` solves required to declare convergence.
    pub hold: usize,
}

impl Default for ConvergenceConfig {
    /// 1 mm to enter, 5 mm to exit, held for 3 solves.
    fn default() -> Self {
        ConvergenceConfig {
            enter_eps: 1e-3,
            exit_eps: 5e-3,
            hold: 3,
        }
    }
}

impl ConvergenceConfig {
    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] unless
    /// `0 < enter_eps < exit_eps` (finite) and `hold >= 1`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.enter_eps > 0.0 && self.enter_eps.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "convergence.enter_eps",
                found: format!("{}", self.enter_eps),
            });
        }
        if !(self.exit_eps > self.enter_eps && self.exit_eps.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "convergence.exit_eps",
                found: format!("{} (must exceed enter_eps)", self.exit_eps),
            });
        }
        if self.hold == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "convergence.hold",
                found: "0".to_string(),
            });
        }
        Ok(())
    }
}

/// Which solver dimensionality the stream drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Space {
    /// Planar localization ([`lion_core::Localizer2d`]).
    #[default]
    TwoD,
    /// Full 3D localization ([`lion_core::Localizer3d`]).
    ThreeD,
}

impl Space {
    /// The core solver dimensionality this stream space drives.
    pub fn solve_space(self) -> lion_core::SolveSpace {
        match self {
            Space::TwoD => lion_core::SolveSpace::TwoD,
            Space::ThreeD => lion_core::SolveSpace::ThreeD,
        }
    }
}

/// How cadence re-solves execute.
///
/// Both modes emit estimates at exactly the same ticks; they differ only
/// in how much work a tick does and in the floating-point tier of the
/// result (see `tests/stream_parity.rs` and DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ResolveMode {
    /// Replay the full window through the batch pipeline on every tick —
    /// O(window) per solve, bit-identical to the batch localizer.
    #[default]
    Replay,
    /// Patch persistent state with only the reads that entered/left since
    /// the last tick ([`lion_core::IncrementalState`]) — O(delta) per
    /// solve, within a documented 1e-6 of replay, falling back to a
    /// bit-exact replay deterministically (splices, evicted reference,
    /// non-linear solver, periodic re-anchor).
    Incremental,
}

impl ResolveMode {
    /// Stable label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ResolveMode::Replay => "replay",
            ResolveMode::Incremental => "incremental",
        }
    }
}

/// Configuration for a [`crate::StreamLocalizer`].
///
/// Build with [`StreamConfig::builder`]; `Default` is the paper's solver
/// configuration over a 256-read window, re-solving every 16 reads.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Maximum reads retained by the sliding window.
    pub window_capacity: usize,
    /// Minimum reads in the window before the first solve is attempted.
    pub min_window_len: usize,
    /// Re-solve schedule.
    pub cadence: Cadence,
    /// Convergence hysteresis.
    pub convergence: ConvergenceConfig,
    /// The batch solver configuration replayed on every window solve.
    pub localizer: LocalizerConfig,
    /// 2D or 3D solve.
    pub space: Space,
    /// Replay vs incremental cadence re-solves.
    pub resolve_mode: ResolveMode,
    /// Optional stable identity for telemetry: the stream's series label
    /// in the hub's time-series store (`lion.stream.*{stream="<label>"}`)
    /// and its id in fleet health rollups. `None` falls back to the
    /// submission slot (`stream-<i>`).
    pub label: Option<String>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_capacity: 256,
            min_window_len: 24,
            cadence: Cadence::default(),
            convergence: ConvergenceConfig::default(),
            localizer: LocalizerConfig::default(),
            space: Space::default(),
            resolve_mode: ResolveMode::default(),
            label: None,
        }
    }
}

impl StreamConfig {
    /// Starts a validating builder seeded with the defaults.
    ///
    /// # Example
    ///
    /// ```
    /// use lion_stream::{Cadence, StreamConfig};
    ///
    /// # fn main() -> Result<(), lion_core::CoreError> {
    /// let cfg = StreamConfig::builder()
    ///     .window_capacity(128)
    ///     .cadence(Cadence::EverySeconds(0.25))
    ///     .build()?;
    /// assert_eq!(cfg.window_capacity, 128);
    /// assert!(StreamConfig::builder().window_capacity(0).build().is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> StreamConfigBuilder {
        StreamConfigBuilder {
            config: StreamConfig::default(),
        }
    }

    /// Checks every invariant.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the offending parameter; also
    /// anything [`LocalizerConfig::validate`] rejects.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window_capacity == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "window_capacity",
                found: "0".to_string(),
            });
        }
        if self.min_window_len < 3 {
            return Err(CoreError::InvalidConfig {
                parameter: "min_window_len",
                found: format!("{} (need at least 3 reads to solve)", self.min_window_len),
            });
        }
        if self.min_window_len > self.window_capacity {
            return Err(CoreError::InvalidConfig {
                parameter: "min_window_len",
                found: format!(
                    "{} (exceeds window_capacity {})",
                    self.min_window_len, self.window_capacity
                ),
            });
        }
        self.cadence.validate()?;
        self.convergence.validate()?;
        self.localizer.validate()
    }
}

/// Validating builder for [`StreamConfig`], created by
/// [`StreamConfig::builder`].
#[derive(Debug, Clone)]
pub struct StreamConfigBuilder {
    config: StreamConfig,
}

impl StreamConfigBuilder {
    /// Sets the sliding-window capacity (reads).
    pub fn window_capacity(mut self, capacity: usize) -> Self {
        self.config.window_capacity = capacity;
        self
    }

    /// Sets the minimum window length before the first solve.
    pub fn min_window_len(mut self, len: usize) -> Self {
        self.config.min_window_len = len;
        self
    }

    /// Sets the re-solve cadence.
    pub fn cadence(mut self, cadence: Cadence) -> Self {
        self.config.cadence = cadence;
        self
    }

    /// Sets the convergence hysteresis.
    pub fn convergence(mut self, convergence: ConvergenceConfig) -> Self {
        self.config.convergence = convergence;
        self
    }

    /// Sets the batch solver configuration used per window solve.
    pub fn localizer(mut self, localizer: LocalizerConfig) -> Self {
        self.config.localizer = localizer;
        self
    }

    /// Selects 2D or 3D solving.
    pub fn space(mut self, space: Space) -> Self {
        self.config.space = space;
        self
    }

    /// Selects replay vs incremental cadence re-solves.
    pub fn resolve_mode(mut self, mode: ResolveMode) -> Self {
        self.config.resolve_mode = mode;
        self
    }

    /// Names the stream for telemetry (time-series labels, fleet health
    /// rollup ids). Unnamed streams report as `stream-<slot>`.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = Some(label.into());
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// See [`StreamConfig::validate`].
    pub fn build(self) -> Result<StreamConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        StreamConfig::default().validate().expect("default valid");
    }

    #[test]
    fn resolve_mode_round_trips_through_builder() {
        assert_eq!(StreamConfig::default().resolve_mode, ResolveMode::Replay);
        let cfg = StreamConfig::builder()
            .resolve_mode(ResolveMode::Incremental)
            .build()
            .expect("incremental mode is valid with the default localizer");
        assert_eq!(cfg.resolve_mode, ResolveMode::Incremental);
        assert_eq!(cfg.resolve_mode.label(), "incremental");
        assert_eq!(ResolveMode::Replay.label(), "replay");
    }

    #[test]
    fn label_round_trips_through_builder() {
        assert_eq!(StreamConfig::default().label, None);
        let cfg = StreamConfig::builder().label("portal-3").build().unwrap();
        assert_eq!(cfg.label.as_deref(), Some("portal-3"));
    }

    #[test]
    fn invalid_parameters_are_named() {
        let cases: Vec<(StreamConfig, &str)> = vec![
            (
                StreamConfig {
                    window_capacity: 0,
                    ..StreamConfig::default()
                },
                "window_capacity",
            ),
            (
                StreamConfig {
                    min_window_len: 2,
                    ..StreamConfig::default()
                },
                "min_window_len",
            ),
            (
                StreamConfig {
                    min_window_len: 999,
                    ..StreamConfig::default()
                },
                "min_window_len",
            ),
            (
                StreamConfig {
                    cadence: Cadence::EveryReads(0),
                    ..StreamConfig::default()
                },
                "cadence.every_reads",
            ),
            (
                StreamConfig {
                    cadence: Cadence::EverySeconds(-1.0),
                    ..StreamConfig::default()
                },
                "cadence.every_seconds",
            ),
            (
                StreamConfig {
                    convergence: ConvergenceConfig {
                        enter_eps: 0.0,
                        ..ConvergenceConfig::default()
                    },
                    ..StreamConfig::default()
                },
                "convergence.enter_eps",
            ),
            (
                StreamConfig {
                    convergence: ConvergenceConfig {
                        enter_eps: 1e-3,
                        exit_eps: 1e-3,
                        hold: 3,
                    },
                    ..StreamConfig::default()
                },
                "convergence.exit_eps",
            ),
            (
                StreamConfig {
                    convergence: ConvergenceConfig {
                        hold: 0,
                        ..ConvergenceConfig::default()
                    },
                    ..StreamConfig::default()
                },
                "convergence.hold",
            ),
        ];
        for (config, expected) in cases {
            match config.validate() {
                Err(CoreError::InvalidConfig { parameter, .. }) => {
                    assert_eq!(parameter, expected);
                }
                other => panic!("expected InvalidConfig({expected}), got {other:?}"),
            }
        }
    }
}
