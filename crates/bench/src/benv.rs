//! Benchmark environment fingerprinting shared by every tracked bench
//! binary.
//!
//! Every `lion-bench-*` JSON document embeds an `env` block describing
//! the machine that produced it: core count, OS, architecture, the
//! exact `rustc --version` string, the probed CPU feature set, and the
//! SIMD backend `lion_linalg::simd` selected at runtime. Medians are
//! only comparable when all of those match — a baseline written on an
//! AVX2 box says nothing about a NEON box, and a compiler upgrade can
//! legitimately move every number.
//!
//! `--check` therefore *refuses* (exit 0, not exit 1) when the
//! committed baseline's environment differs from the current one:
//! a cross-machine comparison is not a regression, it is a
//! measurement that cannot be made. Regenerate the baseline with
//! `just bench-write` on the machine that will run the checks.

use std::process::Command;

use lion_obs::json::{escape, Json};

/// The environment fingerprint embedded in every bench JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Available parallelism (informational; not part of the match).
    pub cores: usize,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Full `rustc --version` output, or `"unknown"` if rustc is not
    /// on PATH (numbers from an unknown compiler are still printable,
    /// just never comparable).
    pub rustc: String,
    /// Comma-joined probed CPU features relevant to the SIMD kernels
    /// (e.g. `"sse2,avx,avx2,fma"` on x86_64, `"neon"` on aarch64).
    pub cpu_features: String,
    /// The SIMD backend `lion_linalg::simd` detected at startup
    /// (`"avx2"`, `"neon"`, or `"scalar"`).
    pub simd: String,
}

fn rustc_version() -> String {
    Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| {
            if out.status.success() {
                Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
            } else {
                None
            }
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn cpu_features() -> String {
    let mut features: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            features.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        features.push("neon");
    }
    features.join(",")
}

impl BenchEnv {
    /// Probes the current machine.
    pub fn current() -> Self {
        BenchEnv {
            cores: std::thread::available_parallelism().map_or(1, usize::from),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            rustc: rustc_version(),
            cpu_features: cpu_features(),
            simd: lion_linalg::simd::detected().name().to_string(),
        }
    }

    /// Renders the `env` block value (the `{...}` object, without the
    /// `"env":` key) for embedding in a bench JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cores\":{},\"os\":\"{}\",\"arch\":\"{}\",\"rustc\":\"{}\",\
             \"cpu_features\":\"{}\",\"simd\":\"{}\"}}",
            self.cores,
            escape(&self.os),
            escape(&self.arch),
            escape(&self.rustc),
            escape(&self.cpu_features),
            escape(&self.simd),
        )
    }

    /// Compares against the `env` block of a parsed baseline document.
    /// Returns a human-readable description of the first difference, or
    /// `None` when the environments are comparable. `cores` is
    /// informational and excluded from the match (container CPU quotas
    /// vary on one physical machine; the benches are single-threaded).
    pub fn mismatch(&self, doc: &Json) -> Option<String> {
        let env = match doc.get("env") {
            Some(env) => env,
            None => return Some("baseline has no env block".to_string()),
        };
        let fields = [
            ("os", &self.os),
            ("arch", &self.arch),
            ("rustc", &self.rustc),
            ("cpu_features", &self.cpu_features),
            ("simd", &self.simd),
        ];
        for (key, current) in fields {
            let committed = env.get(key).and_then(|v| v.as_str()).unwrap_or("<absent>");
            if committed != current.as_str() {
                return Some(format!(
                    "{key}: baseline {committed:?} vs current {current:?}"
                ));
            }
        }
        None
    }
}

/// Guard used by every bench binary's `--check` arm: if the committed
/// baseline at `path` was written in a different environment, print a
/// refusal and exit 0 — a cross-machine comparison is meaningless, not
/// failing. Unreadable or unparseable files return silently so the
/// binary's own `load_baseline` can report the real error with context.
pub fn refuse_if_cross_machine(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(_) => return,
    };
    let doc = match lion_obs::json::parse(&text) {
        Ok(doc) => doc,
        Err(_) => return,
    };
    if let Some(why) = BenchEnv::current().mismatch(&doc) {
        eprintln!("benchmark check REFUSED (cross-machine baseline): {why}");
        eprintln!("regenerate {path} on this machine with `just bench-write`");
        std::process::exit(0);
    }
}
