//! CLI entry point: regenerates the paper's figures.
//!
//! ```bash
//! run_experiments                      # list available experiments
//! run_experiments all                  # run everything, in paper order
//! run_experiments fig13a fig15         # run a subset
//! run_experiments --seed 42 all        # change the RNG seed
//! run_experiments --output results.txt all   # also write to a file
//! ```

use std::process::ExitCode;

use lion_bench::{available_experiments, run_experiment};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 2022u64; // the paper's year, for flavor
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 >= args.len() {
            eprintln!("--seed requires a value");
            return ExitCode::FAILURE;
        }
        match args[pos + 1].parse() {
            Ok(s) => seed = s,
            Err(_) => {
                eprintln!("invalid seed: {}", args[pos + 1]);
                return ExitCode::FAILURE;
            }
        }
        args.drain(pos..=pos + 1);
    }
    let mut output: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--output") {
        if pos + 1 >= args.len() {
            eprintln!("--output requires a path");
            return ExitCode::FAILURE;
        }
        output = Some(args[pos + 1].clone());
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: run_experiments [--seed N] <experiment>... | all");
        println!("available experiments:");
        for id in available_experiments() {
            println!("  {id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        available_experiments()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    let mut failed = false;
    let mut collected = String::new();
    for id in &ids {
        match run_experiment(id, seed) {
            Some(report) => {
                println!("{report}");
                if output.is_some() {
                    collected.push_str(&report.to_string());
                    collected.push('\n');
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                failed = true;
            }
        }
    }
    if let Some(path) = output {
        if let Err(e) = std::fs::write(&path, collected) {
            eprintln!("failed to write {path}: {e}");
            failed = true;
        } else {
            println!("(results written to {path})");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
