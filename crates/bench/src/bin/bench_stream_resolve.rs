//! Tracked benchmark for the O(delta) incremental streaming re-solve.
//!
//! Measures median re-solve wall times on an indoor-scenario circular
//! scan (0.3 m radius, paper read rate and tag speed) in steady state:
//! each run pushes one cadence tick of reads (16) into a full 256-read
//! sliding window untimed — ingest cost is identical in both modes —
//! and times the re-solve alone, through both paths:
//!
//! - **replay** — the full O(window) pipeline
//!   (`lion_core::locate_window_in`), exactly what `ResolveMode::Replay`
//!   runs on every tick;
//! - **incremental** — the persistent-state O(delta) patch
//!   (`lion_core::IncrementalState::solve_window`), what
//!   `ResolveMode::Incremental` runs between resyncs.
//!
//! The track is circular rather than the paper's linear slide because a
//! pure line spans only one geometric dimension, and the incremental
//! state machine deliberately replays every lower-dimension window —
//! the O(delta) path only ever serves full-rank geometry, so that is
//! what this benchmark must measure. Both paths consume the identical
//! read sequence, and the incremental median includes its periodic
//! resyncs — the honest steady-state cost, not a best-case delta tick.
//!
//! Usage:
//!
//! - `bench_stream_resolve` — run and print the `lion-bench-8` JSON.
//! - `bench_stream_resolve --write PATH` — run and also write the doc.
//! - `bench_stream_resolve --check PATH` — run, refuse (exit 0) if the
//!   committed baseline came from a different machine or toolchain,
//!   otherwise verify that fresh medians are within 3× of the
//!   committed ones and that the fresh incremental-vs-replay speedup
//!   has not collapsed relative to the committed one (exit 1
//!   otherwise).
//!
//! The incremental path used to carry an absolute ≥5× floor over
//! replay; the SoA/SIMD rework sped the full replay pipeline up ~6×,
//! which shrank the remaining gap (the O(delta) path still wins, just
//! over a much faster opponent), so the check is relative to the
//! committed speedup rather than an absolute floor. The absolute
//! regression gate on `incremental_resolve_ns` itself lives in
//! `bench_kernels` (`lion-bench-10`).
//!
//! Run with `--release`; debug-build numbers are meaningless.

use std::time::Instant;

use lion_core::{
    locate_window_in, IncrementalState, LocalizerConfig, SlidingWindow, SolveSpace, Workspace,
};
use lion_geom::{CircularArc, Point3, Vec3};

use lion_bench::rig;

/// How many times slower/faster than the committed baseline a fresh
/// median may be before `--check` fails (same scheme as BENCH_5).
const CHECK_RATIO: f64 = 3.0;
/// Noise allowance on the fresh-run speedup during `--check`: the
/// fresh incremental-vs-replay ratio must reach this fraction of the
/// committed one.
const SPEEDUP_MARGIN: f64 = 0.6;
/// Reads pushed per cadence tick (the stream default).
const CADENCE: usize = 16;
/// Window capacity (the stream default).
const WINDOW: usize = 256;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `solve` alone: each run first advances the stream by one
/// cadence tick (untimed — ingest cost is identical in both modes and
/// not what the resolve path changes), then measures the re-solve.
fn bench_ticks(
    runs: usize,
    feed: &mut Feed<'_>,
    window: &mut SlidingWindow,
    mut solve: impl FnMut(&mut SlidingWindow),
) -> u64 {
    feed.advance(window);
    solve(window);
    median_ns(
        (0..runs)
            .map(|_| {
                feed.advance(window);
                let t = Instant::now();
                solve(window);
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect(),
    )
}

/// The indoor scenario from `bench_adaptive`, scanned over a closed
/// circular track instead of the linear slide: a line spans only one
/// geometric dimension, which the incremental state machine always
/// replays, so the O(delta) path needs full-rank (2D) geometry to
/// engage. A full circle also lets the feed wrap seamlessly — the last
/// read sits one sample spacing from the first.
fn workload(seed: u64) -> (Vec<(Point3, f64)>, LocalizerConfig) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(lion_geom::Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let track = CircularArc::new(
        Point3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        0.3,
        0.0,
        std::f64::consts::TAU,
    )
    .expect("valid arc");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    (
        trace.to_measurements(),
        rig::paper_localizer_config(antenna_pos),
    )
}

/// Endless feed around the closed circular trace: the cursor wraps
/// modulo the trace length, so consecutive reads always stay spatially
/// adjacent (unwrapping needs a continuous track) and the stream never
/// runs dry or splices.
struct Feed<'a> {
    slice: &'a [(Point3, f64)],
    cursor: usize,
    tick: u64,
}

impl<'a> Feed<'a> {
    fn new(m: &'a [(Point3, f64)]) -> Self {
        Feed {
            slice: m,
            cursor: 0,
            tick: 0,
        }
    }

    fn next(&mut self) -> (f64, Point3, f64) {
        let (p, phase) = self.slice[self.cursor];
        self.cursor = (self.cursor + 1) % self.slice.len();
        self.tick += 1;
        (self.tick as f64 * 0.01, p, phase)
    }

    /// Pushes one cadence tick of reads.
    fn advance(&mut self, window: &mut SlidingWindow) {
        for _ in 0..CADENCE {
            let (t, p, phase) = self.next();
            window.push(t, p, phase);
        }
    }
}

struct BenchResults {
    replay_resolve_ns: u64,
    incremental_resolve_ns: u64,
    resolve_rows_delta: u64,
    resolve_rebuilds: u64,
}

impl BenchResults {
    fn speedup(&self) -> f64 {
        self.replay_resolve_ns as f64 / self.incremental_resolve_ns.max(1) as f64
    }

    fn named(&self) -> [(&'static str, u64); 2] {
        [
            ("replay_resolve_ns", self.replay_resolve_ns),
            ("incremental_resolve_ns", self.incremental_resolve_ns),
        ]
    }

    fn to_json(&self) -> String {
        let benches = self
            .named()
            .iter()
            .map(|(name, median)| format!("\"{name}\":{{\"median\":{median}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"lion-bench-8\",\"env\":{},\
             \"benches\":{{{}}},\"resolve_rows_delta\":{},\"resolve_rebuilds\":{},\
             \"speedup_incremental_vs_replay\":{:.2}}}",
            lion_bench::benv::BenchEnv::current().to_json(),
            benches,
            self.resolve_rows_delta,
            self.resolve_rebuilds,
            self.speedup(),
        )
    }
}

fn run_benches() -> BenchResults {
    let (m, config) = workload(42);
    let space = SolveSpace::TwoD;

    // Replay path: one cadence tick = CADENCE pushes + full replay.
    let mut feed = Feed::new(&m);
    let mut window = SlidingWindow::new(WINDOW).expect("valid capacity");
    for _ in 0..WINDOW {
        let (t, p, phase) = feed.next();
        window.push(t, p, phase);
    }
    let mut ws = Workspace::new();
    let replay_resolve_ns = bench_ticks(101, &mut feed, &mut window, |w| {
        locate_window_in(&config, space, w, &mut ws).expect("solvable window");
    });

    // Incremental path: the identical feed through persistent state.
    // The timed loop includes every periodic resync and every
    // splice-triggered replay the state machine takes; the median is
    // the steady state.
    let mut feed = Feed::new(&m);
    let mut window = SlidingWindow::new(WINDOW).expect("valid capacity");
    for _ in 0..WINDOW {
        let (t, p, phase) = feed.next();
        window.push(t, p, phase);
    }
    let mut ws = Workspace::new();
    let mut state = IncrementalState::new();
    state
        .solve_window(&mut window, &config, space, &mut ws)
        .expect("warm-up resync solves");
    let incremental_resolve_ns = bench_ticks(401, &mut feed, &mut window, |w| {
        state
            .solve_window(w, &config, space, &mut ws)
            .expect("solvable window");
    });

    BenchResults {
        replay_resolve_ns,
        incremental_resolve_ns,
        resolve_rows_delta: state.rows_delta(),
        resolve_rebuilds: state.rebuilds(),
    }
}

fn load_baseline(path: &str) -> Result<(Vec<(String, u64)>, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = lion_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "lion-bench-8" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let benches = doc.get("benches").ok_or("missing benches")?;
    let mut medians = Vec::new();
    for name in ["replay_resolve_ns", "incremental_resolve_ns"] {
        let median = benches
            .get(name)
            .and_then(|b| b.get("median"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing bench {name}"))?;
        medians.push((name.to_string(), median));
    }
    let speedup = doc
        .get("speedup_incremental_vs_replay")
        .and_then(|v| v.as_f64())
        .ok_or("missing speedup_incremental_vs_replay")?;
    Ok((medians, speedup))
}

fn check(results: &BenchResults, path: &str) -> Result<(), String> {
    let (baseline, committed_speedup) = load_baseline(path)?;
    let mut failures = Vec::new();
    for (name, fresh) in results.named() {
        let committed = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let ratio = fresh as f64 / committed.max(1) as f64;
        let status = if !(1.0 / CHECK_RATIO..=CHECK_RATIO).contains(&ratio) {
            failures.push(format!(
                "{name}: fresh {fresh} ns vs committed {committed} ns (ratio {ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        eprintln!("check {name}: fresh {fresh} ns, committed {committed} ns [{status}]");
    }
    let fresh_speedup = results.speedup();
    let fresh_floor = committed_speedup * SPEEDUP_MARGIN;
    eprintln!(
        "check speedup: fresh {fresh_speedup:.2}x, committed {committed_speedup:.2}x \
         (floor {fresh_floor:.2}x = committed x {SPEEDUP_MARGIN})"
    );
    if fresh_speedup < fresh_floor {
        failures.push(format!(
            "fresh speedup {fresh_speedup:.2}x is below the {fresh_floor:.2}x noise floor"
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = run_benches();
    let json = results.to_json();
    println!("{json}");
    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_8.json");
            std::fs::write(path, format!("{json}\n")).expect("write baseline");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_8.json");
            lion_bench::benv::refuse_if_cross_machine(path);
            if let Err(e) = check(&results, path) {
                eprintln!("benchmark check FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("benchmark check passed");
        }
        Some(other) => {
            eprintln!("unknown argument {other}; use --write [PATH] or --check [PATH]");
            std::process::exit(2);
        }
        None => {}
    }
}
