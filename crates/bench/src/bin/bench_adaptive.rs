//! Tracked benchmark for the shared-prefix adaptive sweep.
//!
//! Measures median wall times on the fig16-style workload (indoor
//! scenario, ±0.75 m track, paper defaults) for:
//!
//! - a single full-trace 2D solve,
//! - the 6×6 adaptive sweep through the shared-prefix engine,
//! - the same sweep through the preserved naive per-cell pipeline,
//! - one IRLS reweight iteration on the incremental normal equations,
//! - one streaming re-solve (sliding window push + windowed locate).
//!
//! Usage:
//!
//! - `bench_adaptive` — run and print the `lion-bench-5` JSON document.
//! - `bench_adaptive --write PATH` — run and also write the document.
//! - `bench_adaptive --check PATH` — run, refuse (exit 0) if the
//!   committed baseline came from a different machine or toolchain,
//!   otherwise verify that fresh medians are within 3× of the
//!   committed ones and that the fresh shared-vs-naive speedup has not
//!   collapsed relative to the committed one (exit code 1 otherwise).
//!
//! The shared-prefix sweep used to carry an absolute ≥5× floor over
//! the naive per-cell pipeline; the SoA/SIMD rework of the solve core
//! sped the naive path up so much that the gap is gone (both sweeps
//! now run the same SIMD normal-equation kernels), so the check is
//! relative to the committed speedup rather than an absolute floor.
//!
//! Run with `--release`; debug-build numbers are meaningless.

use std::time::Instant;

use lion_core::{
    locate_window_in, AdaptiveConfig, AdaptiveOutcome, Localizer2d, LocalizerConfig, SlidingWindow,
    SolveSpace, Workspace,
};
use lion_geom::{LineSegment, Point3};
use lion_linalg::NormalEq;

use lion_bench::rig;

/// How many times slower/faster than the committed baseline a fresh
/// median may be before `--check` fails. Machine-to-machine variance is
/// large; 3× catches order-of-magnitude regressions without flaking.
const CHECK_RATIO: f64 = 3.0;
/// Noise allowance on the fresh-run speedup during `--check`: the
/// fresh shared-vs-naive ratio must reach this fraction of the
/// committed one. The two sweep medians jitter independently on shared
/// machines, so this is deliberately loose.
const SPEEDUP_MARGIN: f64 = 0.6;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_ns(f: &mut impl FnMut()) -> u64 {
    let t = Instant::now();
    f();
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn bench(runs: usize, mut f: impl FnMut()) -> u64 {
    // One untimed warm-up sizes the buffers and warms the caches.
    f();
    median_ns((0..runs).map(|_| time_ns(&mut f)).collect())
}

/// The fig16-style workload: indoor multipath, narrow-beam antenna at
/// (0, 0.8, 0), one scan of the ±0.75 m track.
fn workload(seed: u64) -> (Vec<(Point3, f64)>, LocalizerConfig) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(lion_geom::Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let track = LineSegment::along_x(-0.75, 0.75, 0.0, 0.0).expect("valid");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    (
        trace.to_measurements(),
        rig::paper_localizer_config(antenna_pos),
    )
}

struct BenchResults {
    single_solve_ns: u64,
    sweep_shared_ns: u64,
    sweep_naive_ns: u64,
    irls_iteration_ns: u64,
    streaming_resolve_ns: u64,
}

impl BenchResults {
    fn speedup(&self) -> f64 {
        self.sweep_naive_ns as f64 / self.sweep_shared_ns.max(1) as f64
    }

    fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("single_solve_ns", self.single_solve_ns),
            ("sweep_shared_ns", self.sweep_shared_ns),
            ("sweep_naive_ns", self.sweep_naive_ns),
            ("irls_iteration_ns", self.irls_iteration_ns),
            ("streaming_resolve_ns", self.streaming_resolve_ns),
        ]
    }

    fn to_json(&self) -> String {
        let benches = self
            .named()
            .iter()
            .map(|(name, median)| format!("\"{name}\":{{\"median\":{median}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"lion-bench-5\",\"env\":{},\
             \"benches\":{{{}}},\"speedup_shared_vs_naive\":{:.2}}}",
            lion_bench::benv::BenchEnv::current().to_json(),
            benches,
            self.speedup(),
        )
    }
}

fn run_benches() -> BenchResults {
    let (m, config) = workload(42);
    let grid = AdaptiveConfig::default();
    let localizer = Localizer2d::new(config.clone());

    let mut ws = Workspace::new();
    let single_solve_ns = bench(51, || {
        localizer.locate_in(&m, &mut ws).expect("solvable trace");
    });

    let mut ws = Workspace::new();
    let mut out = AdaptiveOutcome::default();
    let sweep_shared_ns = bench(21, || {
        localizer
            .locate_adaptive_into(&m, &grid, &mut ws, &mut out)
            .expect("solvable sweep");
    });

    let mut ws = Workspace::new();
    let sweep_naive_ns = bench(11, || {
        localizer
            .locate_adaptive_naive_in(&m, &grid, &mut ws)
            .expect("solvable sweep");
    });

    // One IRLS reweight iteration on incremental normal equations the
    // size of a typical sweep cell (~200 rows, 3 columns): perturb the
    // weights slightly (rank-1 updates), re-solve.
    let rows = 200;
    let mut ne = NormalEq::new();
    ne.begin(3);
    for i in 0..rows {
        let x = i as f64 / rows as f64;
        ne.push_row(&[2.0 * x, x * x, 1.0], 0.75 * x * x + 0.25 * x + 0.5);
    }
    ne.solve().expect("well-conditioned system");
    let mut weights = vec![1.0_f64; rows];
    let mut tick = 0usize;
    let irls_iteration_ns = bench(201, || {
        tick += 1;
        // Touch a handful of weights per iteration, as IRLS does once the
        // residuals settle.
        for j in 0..8 {
            let idx = (tick * 13 + j * 17) % rows;
            weights[idx] = 0.5 + 0.5 * ((tick + j) % 7) as f64 / 7.0;
        }
        ne.set_weights(&weights).expect("valid weights");
        ne.solve().expect("well-conditioned system");
    });

    // Streaming re-solve: a full sliding window in steady state — push
    // one read (evicting the oldest) and re-run the windowed locate.
    // Ping-pong over the middle of the trace so consecutive pushes stay
    // spatially adjacent (unwrapping needs a continuous track) and the
    // geometry stays near boresight.
    let span = 768.min(m.len());
    let start = (m.len() - span) / 2;
    let slice = &m[start..start + span];
    let mut cursor = 0usize;
    let mut forward = true;
    let mut tick = 0u64;
    let mut next = || {
        let read = slice[cursor];
        if forward {
            if cursor + 1 == slice.len() {
                forward = false;
            } else {
                cursor += 1;
            }
        } else if cursor == 0 {
            forward = true;
        } else {
            cursor -= 1;
        }
        tick += 1;
        (tick as f64 * 0.01, read)
    };
    let mut window = SlidingWindow::new(256).expect("valid capacity");
    for _ in 0..slice.len() {
        let (t, (p, phase)) = next();
        window.push(t, p, phase);
    }
    let mut ws = Workspace::new();
    let streaming_resolve_ns = bench(51, || {
        let (t, (p, phase)) = next();
        window.push(t, p, phase);
        locate_window_in(&config, SolveSpace::TwoD, &window, &mut ws).expect("solvable window");
    });

    BenchResults {
        single_solve_ns,
        sweep_shared_ns,
        sweep_naive_ns,
        irls_iteration_ns,
        streaming_resolve_ns,
    }
}

fn load_baseline(path: &str) -> Result<(Vec<(String, u64)>, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = lion_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "lion-bench-5" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let benches = doc.get("benches").ok_or("missing benches")?;
    let mut medians = Vec::new();
    for name in [
        "single_solve_ns",
        "sweep_shared_ns",
        "sweep_naive_ns",
        "irls_iteration_ns",
        "streaming_resolve_ns",
    ] {
        let median = benches
            .get(name)
            .and_then(|b| b.get("median"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing bench {name}"))?;
        medians.push((name.to_string(), median));
    }
    let speedup = doc
        .get("speedup_shared_vs_naive")
        .and_then(|v| v.as_f64())
        .ok_or("missing speedup_shared_vs_naive")?;
    Ok((medians, speedup))
}

fn check(results: &BenchResults, path: &str) -> Result<(), String> {
    let (baseline, committed_speedup) = load_baseline(path)?;
    let mut failures = Vec::new();
    for (name, fresh) in results.named() {
        let committed = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let ratio = fresh as f64 / committed.max(1) as f64;
        let status = if !(1.0 / CHECK_RATIO..=CHECK_RATIO).contains(&ratio) {
            failures.push(format!(
                "{name}: fresh {fresh} ns vs committed {committed} ns (ratio {ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        eprintln!("check {name}: fresh {fresh} ns, committed {committed} ns [{status}]");
    }
    let fresh_speedup = results.speedup();
    let fresh_floor = committed_speedup * SPEEDUP_MARGIN;
    eprintln!(
        "check speedup: fresh {fresh_speedup:.2}x, committed {committed_speedup:.2}x \
         (floor {fresh_floor:.2}x = committed x {SPEEDUP_MARGIN})"
    );
    if fresh_speedup < fresh_floor {
        failures.push(format!(
            "fresh speedup {fresh_speedup:.2}x is below the {fresh_floor:.2}x noise floor"
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = run_benches();
    let json = results.to_json();
    println!("{json}");
    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_5.json");
            std::fs::write(path, format!("{json}\n")).expect("write baseline");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_5.json");
            lion_bench::benv::refuse_if_cross_machine(path);
            if let Err(e) = check(&results, path) {
                eprintln!("benchmark check FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("benchmark check passed");
        }
        Some(other) => {
            eprintln!("unknown argument {other}; use --write [PATH] or --check [PATH]");
            std::process::exit(2);
        }
        None => {}
    }
}
