//! Tracked benchmark for the solver backends behind the [`Solver`] seam.
//!
//! Measures median wall times on the fig16-style workload (indoor
//! scenario, ±0.75 m track, paper defaults) for:
//!
//! - a single full-trace 2D solve through the linear (QR/IRLS) backend,
//! - the same solve through the coarse-to-fine likelihood grid,
//! - the 6×6 adaptive sweep with each backend,
//!
//! and records the cross-backend parity (distance between the two
//! single-solve estimates) as the gate the committed baseline must keep.
//!
//! Usage:
//!
//! - `bench_solvers` — run and print the `lion-bench-6` JSON document.
//! - `bench_solvers --write PATH` — run and also write the document.
//! - `bench_solvers --check PATH` — run, refuse (exit 0) if the
//!   committed baseline came from a different machine or toolchain,
//!   otherwise verify fresh medians are within 3× of the committed
//!   ones and that both the fresh and committed parity stay inside the
//!   documented agreement radius (exit code 1 otherwise).
//!
//! Run with `--release`; debug-build numbers are meaningless.

use std::time::Instant;

use lion_core::{
    AdaptiveConfig, AdaptiveOutcome, GridConfig, Localizer2d, LocalizerConfig, PhaseProfile,
    SolverKind, Workspace,
};
use lion_geom::{LineSegment, Point3};

use lion_bench::rig;

/// How many times slower/faster than the committed baseline a fresh
/// median may be before `--check` fails (see `bench_adaptive`).
const CHECK_RATIO: f64 = 3.0;
/// The documented cross-backend agreement radius on the fig16 rig
/// (DESIGN §12): the grid estimate must land within this distance of
/// the linear estimate, both in the committed baseline and fresh.
const PARITY_LIMIT_M: f64 = 0.02;
/// Budget for one `/metrics` scrape render (snapshot + Prometheus text)
/// of a bench-shaped registry. An **absolute** gate, not
/// baseline-relative: the committed `BENCH_6.json` needs no regeneration
/// and a serialization regression on the scrape hot path fails `--check`
/// outright. 5 ms is ~100× the measured cost on the reference rig while
/// still far below any sane Prometheus scrape interval.
const METRICS_RENDER_BUDGET_NS: u64 = 5_000_000;
/// Budget for one steady-state history-plane sampler tick (registry
/// snapshot → counter/gauge points + histogram deltas into the tsdb) on
/// the same bench-shaped registry. Absolute, like the render gate: the
/// background sampler runs once a second inside live pipelines, so a
/// tick must stay far under its period. 5 ms is ~100× the measured
/// steady-state cost on the reference rig.
const SAMPLER_TICK_BUDGET_NS: u64 = 5_000_000;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_ns(f: &mut impl FnMut()) -> u64 {
    let t = Instant::now();
    f();
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn bench(runs: usize, mut f: impl FnMut()) -> u64 {
    // One untimed warm-up sizes the buffers and warms the caches.
    f();
    median_ns((0..runs).map(|_| time_ns(&mut f)).collect())
}

/// The fig16-style workload: indoor multipath, narrow-beam antenna at
/// (0, 0.8, 0), one scan of the ±0.75 m track.
fn workload(seed: u64) -> (Vec<(Point3, f64)>, LocalizerConfig) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(lion_geom::Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let track = LineSegment::along_x(-0.75, 0.75, 0.0, 0.0).expect("valid");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    (
        trace.to_measurements(),
        rig::paper_localizer_config(antenna_pos),
    )
}

const BENCH_NAMES: [&str; 4] = [
    "linear_solve_ns",
    "grid_solve_ns",
    "sweep_linear_ns",
    "sweep_grid_ns",
];

struct BenchResults {
    linear_solve_ns: u64,
    grid_solve_ns: u64,
    sweep_linear_ns: u64,
    sweep_grid_ns: u64,
    parity_m: f64,
    metrics_render_ns: u64,
    sampler_tick_ns: u64,
}

impl BenchResults {
    fn slowdown(&self) -> f64 {
        self.grid_solve_ns as f64 / self.linear_solve_ns.max(1) as f64
    }

    fn named(&self) -> [(&'static str, u64); 4] {
        [
            (BENCH_NAMES[0], self.linear_solve_ns),
            (BENCH_NAMES[1], self.grid_solve_ns),
            (BENCH_NAMES[2], self.sweep_linear_ns),
            (BENCH_NAMES[3], self.sweep_grid_ns),
        ]
    }

    fn to_json(&self) -> String {
        let benches = self
            .named()
            .iter()
            .map(|(name, median)| format!("\"{name}\":{{\"median\":{median}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"lion-bench-6\",\"env\":{},\
             \"benches\":{{{}}},\"grid_vs_linear_slowdown\":{:.2},\"parity_m\":{:.6},\
             \"metrics_render_ns\":{},\"sampler_tick_ns\":{}}}",
            lion_bench::benv::BenchEnv::current().to_json(),
            benches,
            self.slowdown(),
            self.parity_m,
            self.metrics_render_ns,
            self.sampler_tick_ns,
        )
    }
}

fn run_benches() -> BenchResults {
    let (m, config) = workload(42);
    let adaptive = AdaptiveConfig::default();
    let linear = Localizer2d::new(config.clone());
    let grid = Localizer2d::new(LocalizerConfig {
        solver: SolverKind::Grid(GridConfig::default()),
        ..config
    });

    // Single solves run on the paper's 0.8 m scanning range (as the
    // fig16 experiments do): the range restriction keeps the off-beam
    // tail out, which the linear backend would down-weight but the
    // unweighted likelihood would not.
    let profile = {
        let mut p = PhaseProfile::from_wrapped(&m, config.wavelength).expect("valid trace");
        p.smooth(config.smoothing_window);
        p.restrict_x(-0.4, 0.4)
    };

    let mut ws = Workspace::new();
    let parity_m = {
        let ls = linear
            .locate_profile_in(&profile, &mut ws)
            .expect("solvable trace");
        let lg = grid
            .locate_profile_in(&profile, &mut ws)
            .expect("solvable trace");
        ls.position.distance(lg.position)
    };

    let linear_solve_ns = bench(51, || {
        linear
            .locate_profile_in(&profile, &mut ws)
            .expect("solvable trace");
    });
    let grid_solve_ns = bench(21, || {
        grid.locate_profile_in(&profile, &mut ws)
            .expect("solvable trace");
    });

    let mut out = AdaptiveOutcome::default();
    let sweep_linear_ns = bench(11, || {
        linear
            .locate_adaptive_into(&m, &adaptive, &mut ws, &mut out)
            .expect("solvable sweep");
    });
    let sweep_grid_ns = bench(5, || {
        grid.locate_adaptive_into(&m, &adaptive, &mut ws, &mut out)
            .expect("solvable sweep");
    });

    BenchResults {
        linear_solve_ns,
        grid_solve_ns,
        sweep_linear_ns,
        sweep_grid_ns,
        parity_m,
        metrics_render_ns: bench_metrics_render(),
        sampler_tick_ns: bench_sampler_tick(),
    }
}

/// Builds the same bench-shaped registry as [`bench_metrics_render`].
fn bench_registry() -> lion_obs::Registry {
    let registry = lion_obs::Registry::new();
    registry.counter_add("engine.jobs", 4096);
    registry.counter_add("engine.failed", 3);
    registry.gauge_set("engine.workers", 8.0);
    for rule in [
        "residual_drift",
        "convergence_stall",
        "ingress_shed",
        "solve_latency",
        "solver_disagreement",
    ] {
        registry.gauge_set(&format!("fleet.rule.{rule}.firing"), 2.0);
    }
    for stage in [
        "unwrap",
        "smooth",
        "pairs",
        "solve",
        "adaptive",
        "job_busy",
        "queue_wait",
        "execute",
    ] {
        let name = format!("engine.stage.{stage}_ns");
        for i in 0..4096u64 {
            // Spread across buckets the way real latencies are.
            registry.histogram_record(&name, (i * 7919) % 10_000_000);
        }
    }
    registry
}

/// Times one steady-state history-plane sampler tick on the bench-shaped
/// registry: every counter and gauge becomes a point, every histogram a
/// sparse delta against the previous snapshot. A manual clock advanced
/// one period per iteration keeps every `tick` call a real sample (no
/// skipped due-checks), and the warm-up tick absorbs the one-off
/// first-sample cost so the median is the steady-state figure the
/// background sampler pays once a second.
fn bench_sampler_tick() -> u64 {
    let registry = bench_registry();
    let clock = lion_obs::ManualClock::new(0);
    let tsdb = std::sync::Arc::new(lion_obs::Tsdb::new(lion_obs::TsdbConfig::default()));
    let mut sampler = lion_obs::Sampler::new(tsdb.clone(), 1, clock.clone());
    let mut ticked = 0u64;
    let ns = bench(51, || {
        clock.advance(1_000_000_000);
        ticked = sampler.tick(&registry).expect("tick due");
    });
    assert!(ticked > 0, "sampler never sampled");
    assert!(tsdb.stats().series > 0, "no series stored");
    ns
}

/// Times one `/metrics` scrape render — registry snapshot + Prometheus
/// text — on a registry shaped like a live fleet run: a handful of
/// counters/gauges, the fleet rollup gauges, and well-populated stage
/// histograms (a histogram renders one sample per non-zero bucket, so
/// spread values drive the cost).
fn bench_metrics_render() -> u64 {
    let registry = bench_registry();
    let mut rendered = 0usize;
    let ns = bench(51, || {
        let text = lion_obs::export::to_prometheus(&registry.snapshot());
        rendered = std::hint::black_box(text.len());
    });
    assert!(rendered > 0, "render produced no exposition text");
    ns
}

fn load_baseline(path: &str) -> Result<(Vec<(String, u64)>, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = lion_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "lion-bench-6" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let benches = doc.get("benches").ok_or("missing benches")?;
    let mut medians = Vec::new();
    for name in BENCH_NAMES {
        let median = benches
            .get(name)
            .and_then(|b| b.get("median"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing bench {name}"))?;
        medians.push((name.to_string(), median));
    }
    let parity = doc
        .get("parity_m")
        .and_then(|v| v.as_f64())
        .ok_or("missing parity_m")?;
    Ok((medians, parity))
}

fn check(results: &BenchResults, path: &str) -> Result<(), String> {
    let (baseline, committed_parity) = load_baseline(path)?;
    let mut failures = Vec::new();
    if committed_parity > PARITY_LIMIT_M {
        failures.push(format!(
            "committed parity {committed_parity:.4} m exceeds the {PARITY_LIMIT_M} m radius"
        ));
    }
    for (name, fresh) in results.named() {
        let committed = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let ratio = fresh as f64 / committed.max(1) as f64;
        let status = if !(1.0 / CHECK_RATIO..=CHECK_RATIO).contains(&ratio) {
            failures.push(format!(
                "{name}: fresh {fresh} ns vs committed {committed} ns (ratio {ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        eprintln!("check {name}: fresh {fresh} ns, committed {committed} ns [{status}]");
    }
    eprintln!(
        "check parity: fresh {:.4} m, committed {committed_parity:.4} m (limit {PARITY_LIMIT_M} m)",
        results.parity_m
    );
    if results.parity_m > PARITY_LIMIT_M {
        failures.push(format!(
            "fresh parity {:.4} m exceeds the {PARITY_LIMIT_M} m radius",
            results.parity_m
        ));
    }
    // Absolute gate on the scrape hot path (no committed counterpart —
    // see METRICS_RENDER_BUDGET_NS).
    let render = results.metrics_render_ns;
    let render_status = if render > METRICS_RENDER_BUDGET_NS {
        failures.push(format!(
            "metrics_render_ns {render} exceeds the {METRICS_RENDER_BUDGET_NS} ns scrape budget"
        ));
        "FAIL"
    } else {
        "ok"
    };
    eprintln!(
        "check metrics_render_ns: fresh {render} ns, budget {METRICS_RENDER_BUDGET_NS} ns [{render_status}]"
    );
    // Absolute gate on the background sampler's per-tick cost (also no
    // committed counterpart — see SAMPLER_TICK_BUDGET_NS).
    let tick = results.sampler_tick_ns;
    let tick_status = if tick > SAMPLER_TICK_BUDGET_NS {
        failures.push(format!(
            "sampler_tick_ns {tick} exceeds the {SAMPLER_TICK_BUDGET_NS} ns tick budget"
        ));
        "FAIL"
    } else {
        "ok"
    };
    eprintln!(
        "check sampler_tick_ns: fresh {tick} ns, budget {SAMPLER_TICK_BUDGET_NS} ns [{tick_status}]"
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = run_benches();
    let json = results.to_json();
    println!("{json}");
    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_6.json");
            std::fs::write(path, format!("{json}\n")).expect("write baseline");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_6.json");
            lion_bench::benv::refuse_if_cross_machine(path);
            if let Err(e) = check(&results, path) {
                eprintln!("benchmark check FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("benchmark check passed");
        }
        Some(other) => {
            eprintln!("unknown argument {other}; use --write [PATH] or --check [PATH]");
            std::process::exit(2);
        }
        None => {}
    }
}
