//! Tracked benchmark for the `lion_linalg::simd` kernels and the two
//! end-to-end latencies the SoA/SIMD rework is accountable for.
//!
//! Per-kernel medians run each dispatched kernel on pipeline-shaped
//! inputs (1024 samples — the order of one full fig16 trace):
//!
//! - `phase_unwrap_ns` — [`lion_linalg::simd::phase_unwrap_in_place`],
//! - `sliding_mean_ns` — [`lion_linalg::simd::sliding_mean_from_prefix`],
//! - `radical_rows_ns` — [`lion_linalg::simd::radical_rows`] (k = 2),
//! - `gram_accumulate_ns` — [`lion_linalg::simd::gram_fixed`] (N = 3),
//! - `exp_weights_ns` — [`lion_linalg::simd::exp_non_positive`],
//!
//! plus two end-to-end medians measured exactly like their source
//! benches (`bench_adaptive`, `bench_stream_resolve`):
//!
//! - `single_solve_ns` — one full-trace 2D solve on the fig16 rig,
//! - `incremental_resolve_ns` — one steady-state O(delta) re-solve tick.
//!
//! Usage:
//!
//! - `bench_kernels` — run and print the `lion-bench-10` JSON document.
//! - `bench_kernels --write PATH` — run and also write the document.
//! - `bench_kernels --check PATH` — run, refuse (exit 0) if the
//!   committed baseline came from a different machine or toolchain,
//!   otherwise verify fresh medians are within 3× of the committed ones
//!   AND that the two end-to-end medians clear their absolute budgets
//!   (exit code 1 otherwise). The budgets are the SoA/SIMD rework's
//!   acceptance bars: a single solve must stay under 700 µs (the
//!   pre-rework median was 1.36 ms) and an incremental re-solve must
//!   stay no worse than the 14 672 ns pre-rework baseline. Absolute
//!   gates are safe here because the env refusal guarantees the
//!   numbers come from the machine that wrote the baseline.
//!
//! Run with `--release`; debug-build numbers are meaningless. For
//! native-tuned numbers (not comparable to the committed baseline) use
//! `just bench-native`.

use std::hint::black_box;
use std::time::Instant;

use lion_core::{
    IncrementalState, Localizer2d, LocalizerConfig, SlidingWindow, SolveSpace, Workspace,
};
use lion_geom::{CircularArc, LineSegment, Point3, Vec3};
use lion_linalg::simd;

use lion_bench::rig;

/// How many times slower/faster than the committed baseline a fresh
/// median may be before `--check` fails (same scheme as BENCH_5/6/8).
const CHECK_RATIO: f64 = 3.0;
/// Absolute budget for one full-trace 2D solve. Half of the ~1.36 ms
/// the pre-SoA pipeline took (BENCH_5 at PR 5); the reworked pipeline
/// measures ~4× under the budget, leaving room for machine noise.
const SINGLE_SOLVE_BUDGET_NS: u64 = 700_000;
/// Absolute budget for one steady-state incremental re-solve tick: the
/// committed pre-rework median (BENCH_8 at PR 8). The rework must not
/// regress the O(delta) path while rerouting its shared kernels.
const INCREMENTAL_BUDGET_NS: u64 = 14_672;
/// Sample count for the synthetic kernel inputs — the order of one
/// full fig16 trace, so per-kernel medians sit on the same curve as
/// the end-to-end numbers.
const KERNEL_N: usize = 1024;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_ns(f: &mut impl FnMut()) -> u64 {
    let t = Instant::now();
    f();
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn bench(runs: usize, mut f: impl FnMut()) -> u64 {
    // One untimed warm-up sizes the buffers and warms the caches.
    f();
    median_ns((0..runs).map(|_| time_ns(&mut f)).collect())
}

/// The fig16-style workload from `bench_adaptive`: indoor multipath,
/// narrow-beam antenna at (0, 0.8, 0), one scan of the ±0.75 m track.
fn linear_workload(seed: u64) -> (Vec<(Point3, f64)>, LocalizerConfig) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let track = LineSegment::along_x(-0.75, 0.75, 0.0, 0.0).expect("valid");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    (
        trace.to_measurements(),
        rig::paper_localizer_config(antenna_pos),
    )
}

/// The circular-track workload from `bench_stream_resolve`: the
/// incremental state machine only serves full-rank (2D) geometry, so
/// the steady-state tick needs a track that spans two dimensions.
fn circular_workload(seed: u64) -> (Vec<(Point3, f64)>, LocalizerConfig) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let track = CircularArc::new(
        Point3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        0.3,
        0.0,
        std::f64::consts::TAU,
    )
    .expect("valid arc");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    (
        trace.to_measurements(),
        rig::paper_localizer_config(antenna_pos),
    )
}

struct BenchResults {
    phase_unwrap_ns: u64,
    sliding_mean_ns: u64,
    radical_rows_ns: u64,
    gram_accumulate_ns: u64,
    exp_weights_ns: u64,
    single_solve_ns: u64,
    incremental_resolve_ns: u64,
}

const BENCH_NAMES: [&str; 7] = [
    "phase_unwrap_ns",
    "sliding_mean_ns",
    "radical_rows_ns",
    "gram_accumulate_ns",
    "exp_weights_ns",
    "single_solve_ns",
    "incremental_resolve_ns",
];

impl BenchResults {
    fn named(&self) -> [(&'static str, u64); 7] {
        [
            (BENCH_NAMES[0], self.phase_unwrap_ns),
            (BENCH_NAMES[1], self.sliding_mean_ns),
            (BENCH_NAMES[2], self.radical_rows_ns),
            (BENCH_NAMES[3], self.gram_accumulate_ns),
            (BENCH_NAMES[4], self.exp_weights_ns),
            (BENCH_NAMES[5], self.single_solve_ns),
            (BENCH_NAMES[6], self.incremental_resolve_ns),
        ]
    }

    fn to_json(&self) -> String {
        let benches = self
            .named()
            .iter()
            .map(|(name, median)| format!("\"{name}\":{{\"median\":{median}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"lion-bench-10\",\"env\":{},\"benches\":{{{}}},\
             \"single_solve_budget_ns\":{},\"incremental_budget_ns\":{}}}",
            lion_bench::benv::BenchEnv::current().to_json(),
            benches,
            SINGLE_SOLVE_BUDGET_NS,
            INCREMENTAL_BUDGET_NS,
        )
    }
}

fn bench_kernels() -> (u64, u64, u64, u64, u64) {
    let n = KERNEL_N;

    // Wrapped phases along a steady sweep: ~0.12 rad between reads, so
    // the unwrap kernel sees the same few-revolutions-per-trace shape
    // the fig16 rig produces.
    let wrapped: Vec<f64> = (0..n)
        .map(|i| {
            let theta = i as f64 * 0.12;
            // Wrap into [-π, π).
            (theta + std::f64::consts::PI).rem_euclid(std::f64::consts::TAU) - std::f64::consts::PI
        })
        .collect();
    let mut phases = wrapped.clone();
    let mut revs: Vec<f64> = Vec::new();
    let phase_unwrap_ns = bench(201, || {
        phases.copy_from_slice(&wrapped);
        simd::phase_unwrap_in_place(&mut phases, &mut revs);
        black_box(phases[n - 1]);
    });

    // Moving-average smoothing via the prefix-sum kernel, with the
    // pipeline's default window width.
    let mut prefix = vec![0.0_f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + wrapped[i];
    }
    let mut smoothed = vec![0.0_f64; n];
    let sliding_mean_ns = bench(201, || {
        simd::sliding_mean_from_prefix(&prefix, 9, &mut smoothed);
        black_box(smoothed[n / 2]);
    });

    // Radical-line rows: k = 2 (the planar solve), one row per adjacent
    // pair at the interval strategy's typical gap.
    let k = 2;
    let coords: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.37).sin()).collect();
    let deltas: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 * 0.11).cos() * 0.2)
        .collect();
    let gap = 32;
    let pair_i: Vec<i32> = (0..n - gap).map(|i| i as i32).collect();
    let pair_j: Vec<i32> = (gap..n).map(|j| j as i32).collect();
    let rows = pair_i.len();
    let mut design = vec![0.0_f64; rows * (k + 1)];
    let mut rhs = vec![0.0_f64; rows];
    let radical_rows_ns = bench(201, || {
        simd::radical_rows(
            &coords,
            n,
            k,
            &deltas,
            &pair_i,
            &pair_j,
            &mut design,
            &mut rhs,
        );
        black_box(rhs[rows - 1]);
    });

    // Gram accumulation at N = 3 (k + 1 columns of the planar system),
    // reusing the radical-line system as input.
    let weights = vec![1.0_f64; rows];
    let gram_accumulate_ns = bench(201, || {
        let (gram, grhs) = simd::gram_fixed::<3>(&design, &rhs, &weights);
        black_box(gram[2][2] + grhs[0]);
    });

    // IRLS weight kernel on non-positive exponents of residual scale.
    let exponents: Vec<f64> = (0..n).map(|i| -(i as f64 * 0.017) % 30.0).collect();
    let mut xs = exponents.clone();
    let exp_weights_ns = bench(201, || {
        xs.copy_from_slice(&exponents);
        simd::exp_non_positive(&mut xs);
        black_box(xs[n - 1]);
    });

    (
        phase_unwrap_ns,
        sliding_mean_ns,
        radical_rows_ns,
        gram_accumulate_ns,
        exp_weights_ns,
    )
}

fn bench_single_solve() -> u64 {
    let (m, config) = linear_workload(42);
    let localizer = Localizer2d::new(config);
    let mut ws = Workspace::new();
    bench(51, || {
        localizer.locate_in(&m, &mut ws).expect("solvable trace");
    })
}

fn bench_incremental_resolve() -> u64 {
    const CADENCE: usize = 16;
    const WINDOW: usize = 256;
    let (m, config) = circular_workload(42);
    let space = SolveSpace::TwoD;
    let mut cursor = 0usize;
    let mut tick = 0u64;
    let mut next = |window: &mut SlidingWindow| {
        for _ in 0..CADENCE {
            let (p, phase) = m[cursor];
            cursor = (cursor + 1) % m.len();
            tick += 1;
            window.push(tick as f64 * 0.01, p, phase);
        }
    };
    let mut window = SlidingWindow::new(WINDOW).expect("valid capacity");
    for _ in 0..WINDOW / CADENCE {
        next(&mut window);
    }
    let mut ws = Workspace::new();
    let mut state = IncrementalState::new();
    state
        .solve_window(&mut window, &config, space, &mut ws)
        .expect("warm-up resync solves");
    // Ingest is untimed — the budget tracks the re-solve alone, the
    // same separation `bench_stream_resolve` (BENCH_8) measures.
    median_ns(
        (0..401)
            .map(|_| {
                next(&mut window);
                let t = Instant::now();
                state
                    .solve_window(&mut window, &config, space, &mut ws)
                    .expect("solvable window");
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect(),
    )
}

fn run_benches() -> BenchResults {
    let (phase_unwrap_ns, sliding_mean_ns, radical_rows_ns, gram_accumulate_ns, exp_weights_ns) =
        bench_kernels();
    BenchResults {
        phase_unwrap_ns,
        sliding_mean_ns,
        radical_rows_ns,
        gram_accumulate_ns,
        exp_weights_ns,
        single_solve_ns: bench_single_solve(),
        incremental_resolve_ns: bench_incremental_resolve(),
    }
}

fn load_baseline(path: &str) -> Result<Vec<(String, u64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = lion_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "lion-bench-10" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    let benches = doc.get("benches").ok_or("missing benches")?;
    let mut medians = Vec::new();
    for name in BENCH_NAMES {
        let median = benches
            .get(name)
            .and_then(|b| b.get("median"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing bench {name}"))?;
        medians.push((name.to_string(), median));
    }
    Ok(medians)
}

fn check(results: &BenchResults, path: &str) -> Result<(), String> {
    let baseline = load_baseline(path)?;
    let mut failures = Vec::new();
    for (name, fresh) in results.named() {
        let committed = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let ratio = fresh as f64 / committed.max(1) as f64;
        let status = if !(1.0 / CHECK_RATIO..=CHECK_RATIO).contains(&ratio) {
            failures.push(format!(
                "{name}: fresh {fresh} ns vs committed {committed} ns (ratio {ratio:.2})"
            ));
            "FAIL"
        } else {
            "ok"
        };
        eprintln!("check {name}: fresh {fresh} ns, committed {committed} ns [{status}]");
    }
    // Absolute acceptance budgets (safe post-refusal: same machine as
    // the committed baseline).
    let single = results.single_solve_ns;
    let single_status = if single > SINGLE_SOLVE_BUDGET_NS {
        failures.push(format!(
            "single_solve_ns {single} exceeds the {SINGLE_SOLVE_BUDGET_NS} ns budget"
        ));
        "FAIL"
    } else {
        "ok"
    };
    eprintln!(
        "check single_solve budget: fresh {single} ns, budget {SINGLE_SOLVE_BUDGET_NS} ns \
         [{single_status}]"
    );
    let incr = results.incremental_resolve_ns;
    let incr_status = if incr > INCREMENTAL_BUDGET_NS {
        failures.push(format!(
            "incremental_resolve_ns {incr} exceeds the {INCREMENTAL_BUDGET_NS} ns budget"
        ));
        "FAIL"
    } else {
        "ok"
    };
    eprintln!(
        "check incremental budget: fresh {incr} ns, budget {INCREMENTAL_BUDGET_NS} ns \
         [{incr_status}]"
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = run_benches();
    let json = results.to_json();
    println!("{json}");
    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_10.json");
            std::fs::write(path, format!("{json}\n")).expect("write baseline");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_10.json");
            lion_bench::benv::refuse_if_cross_machine(path);
            if let Err(e) = check(&results, path) {
                eprintln!("benchmark check FAILED: {e}");
                std::process::exit(1);
            }
            eprintln!("benchmark check passed");
        }
        Some(other) => {
            eprintln!("unknown argument {other}; use --write [PATH] or --check [PATH]");
            std::process::exit(2);
        }
        None => {}
    }
}
