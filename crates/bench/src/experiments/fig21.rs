//! Fig. 21 — antenna localization from a rotating tag.
//!
//! Paper setup (Sec. V-F2): a tag spins on a turntable 0.7 m in front of a
//! calibrated antenna; the rotation radius varies. Findings: the x-error
//! (parallel to the antenna plane) is smaller than the y-error (the
//! errors distribute along the scan-center→antenna direction, cf. Fig. 6),
//! and the error shrinks as the radius grows.

use lion_baselines::tagspin::{self, TagspinConfig};
use lion_core::Localizer2d;
use lion_geom::{CircularArc, Point3};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Result for one turntable radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusError {
    /// Rotation radius (meters).
    pub radius: f64,
    /// Mean |error| along x (meters).
    pub err_x: f64,
    /// Mean |error| along y (meters).
    pub err_y: f64,
    /// Mean distance error (meters).
    pub total: f64,
    /// Mean distance error of the Tagspin-style harmonic fit (meters) —
    /// the circular-only baseline of paper ref \[7\].
    pub tagspin: f64,
}

/// Runs the radius sweep.
pub fn run(seed: u64, trials: usize, radii: &[f64]) -> Vec<RadiusError> {
    // Turntable at the origin; antenna 0.7 m in front (+y), calibrated
    // (i.e. we aim at the true phase center).
    let target = Point3::new(0.0, 0.7, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, seed);
    radii
        .iter()
        .map(|&radius| {
            let circle = CircularArc::turntable(Point3::ORIGIN, radius).expect("radius > 0");
            let mut ex = Vec::new();
            let mut ey = Vec::new();
            let mut et = Vec::new();
            let mut spin = Vec::new();
            for _ in 0..trials {
                let m = scenario
                    .scan(&circle, rig::TAG_SPEED, rig::READ_RATE)
                    .expect("valid scan")
                    .to_measurements();
                let mut cfg = rig::paper_localizer_config(target);
                // Pair spacing must fit on the circle.
                cfg.pair_strategy = cfg.pair_strategy.with_interval((radius * 0.9).min(0.2));
                if let Ok(est) = Localizer2d::new(cfg).locate(&m) {
                    ex.push((est.position.x - target.x).abs());
                    ey.push((est.position.y - target.y).abs());
                    et.push(est.distance_error(target));
                }
                if let Ok(est) = tagspin::locate(&m, &TagspinConfig::default()) {
                    spin.push(est.position.distance(target));
                }
            }
            RadiusError {
                radius,
                err_x: rig::mean_std(&ex).0,
                err_y: rig::mean_std(&ey).0,
                total: rig::mean_std(&et).0,
                tagspin: rig::mean_std(&spin).0,
            }
        })
        .collect()
}

/// Renders the paper-style report.
pub fn report(seed: u64) -> ExperimentReport {
    let results = run(seed, 30, &[0.05, 0.10, 0.15, 0.20]);
    let mut r = ExperimentReport::new(
        "fig21",
        "rotating-tag scanning: error vs turntable radius (Sec. V-F2)",
    );
    r.push("radius | err_x | err_y | LION total | tagspin [7]".to_string());
    for p in &results {
        r.push(format!(
            "{:.2} m | {} | {} | {} | {}",
            p.radius,
            rig::cm(p.err_x),
            rig::cm(p.err_y),
            rig::cm(p.total),
            rig::cm(p.tagspin)
        ));
    }
    r.push("paper: x-error < y-error; error decreases with radius".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_error_smaller_than_y_error() {
        let results = run(111, 10, &[0.10, 0.20]);
        for p in &results {
            assert!(
                p.err_x < p.err_y,
                "radius {}: err_x {} should be < err_y {}",
                p.radius,
                p.err_x,
                p.err_y
            );
        }
    }

    #[test]
    fn error_decreases_with_radius() {
        let results = run(121, 10, &[0.05, 0.20]);
        assert!(
            results[1].total < results[0].total,
            "radius 0.20 ({}) should beat 0.05 ({})",
            results[1].total,
            results[0].total
        );
    }
}
