//! Fig. 4 — what a two-measurement hologram looks like, and what it costs.
//!
//! Paper setup (Sec. II-C): phases simulated at two tag positions
//! (±0.3 m, 0) for an antenna at (0.5, 0.5); a 1 mm hologram over the
//! surrounding square lights up along a hyperbola. Adding weights sharpens
//! it. Building even this toy hologram took the paper ~0.8 s — the
//! motivating cost for LION.

use lion_baselines::hologram::{build_hologram, HologramConfig, SearchVolume};
use lion_geom::Point3;

use crate::experiments::ExperimentReport;
use crate::rig;

/// Outcome of building the two-measurement hologram.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Outcome {
    /// Cells evaluated.
    pub cells: usize,
    /// Wall-clock seconds to build.
    pub seconds: f64,
    /// Fraction of cells with likelihood > 0.9 (the "hyperbola band").
    pub high_likelihood_fraction: f64,
    /// Whether the true antenna position is inside the band.
    pub truth_in_band: bool,
}

/// Builds the hologram at the given grid size.
pub fn run(grid_size: f64, augmented: bool) -> Fig4Outcome {
    let antenna = Point3::new(0.5, 0.5, 0.0);
    let tags = [Point3::new(-0.3, 0.0, 0.0), Point3::new(0.3, 0.0, 0.0)];
    let measurements: Vec<(Point3, f64)> = tags
        .iter()
        .map(|&t| {
            let phase = (4.0 * std::f64::consts::PI * antenna.distance(t) / rig::LAMBDA)
                .rem_euclid(std::f64::consts::TAU);
            (t, phase)
        })
        .collect();
    let volume = SearchVolume::square_2d(Point3::new(0.0, 0.5, 0.0), 0.6);
    let config = HologramConfig {
        grid_size,
        wavelength: rig::LAMBDA,
        augmented,
    };
    let ((holo, est), seconds) =
        rig::timed(|| build_hologram(&measurements, volume, &config).expect("valid inputs"));
    let high = holo.values().iter().filter(|&&v| v > 0.9).count();
    // Truth-in-band: the cell nearest the antenna scores > 0.9.
    let (nx, ny, _) = holo.dimensions();
    let mut truth_in_band = false;
    'outer: for j in 0..ny {
        for i in 0..nx {
            let p = holo.cell_position(i, j, 0);
            if p.distance(antenna) < grid_size {
                truth_in_band = holo.value(i, j, 0).unwrap_or(0.0) > 0.9;
                break 'outer;
            }
        }
    }
    Fig4Outcome {
        cells: est.cells_evaluated,
        seconds,
        high_likelihood_fraction: high as f64 / holo.cell_count() as f64,
        truth_in_band,
    }
}

/// Renders the paper-style report (grid 1 mm like the paper).
pub fn report(_seed: u64) -> ExperimentReport {
    let outcome = run(0.001, true);
    let mut r = ExperimentReport::new(
        "fig4",
        "hologram of two phase measurements: hyperbola band + build cost (Sec. II-C)",
    );
    r.push(format!(
        "grid 1 mm over 1.2x1.2 m: {} cells evaluated in {}",
        outcome.cells,
        rig::secs(outcome.seconds)
    ));
    r.push(format!(
        "cells with likelihood > 0.9: {:.2}% (the hyperbola band)",
        outcome.high_likelihood_fraction * 100.0
    ));
    r.push(format!(
        "true antenna position inside the band: {}",
        outcome.truth_in_band
    ));
    r.push("paper: building this simple hologram takes ~0.8 s".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_is_thin_and_contains_truth() {
        // Coarser grid in tests to stay fast.
        let outcome = run(0.005, true);
        assert!(outcome.truth_in_band);
        // Two measurements constrain to a (hyperbola ∪ its twin) band — a
        // small fraction of the area, but certainly nonzero.
        assert!(outcome.high_likelihood_fraction > 0.001);
        assert!(outcome.high_likelihood_fraction < 0.40);
    }

    #[test]
    fn weighting_with_two_measurements_is_stable() {
        let plain = run(0.01, false);
        let weighted = run(0.01, true);
        assert!(weighted.truth_in_band && plain.truth_in_band);
        // Augmented pass doubles the evaluated cells.
        assert_eq!(weighted.cells, 2 * plain.cells);
    }

    #[test]
    fn report_renders() {
        // NOTE: uses the full 1 mm grid — keep as the only slow test here.
        let r = report(0);
        assert_eq!(r.lines.len(), 4);
    }
}
