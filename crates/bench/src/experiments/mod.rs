//! One module per reproduced figure, plus ablations.
//!
//! Every experiment exposes `report(seed) -> ExperimentReport`, printing
//! the same series the corresponding paper figure plots. Modules also
//! expose finer-grained `run*` functions with trial counts for tests and
//! Criterion benches.

use std::fmt;

use lion_engine::MetricsReport;

pub mod ablations;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16_18;
pub mod fig2;
pub mod fig20;
pub mod fig21;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig9;

/// A rendered experiment: identifier, human title, and the output lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentReport {
    /// Short identifier (`fig13a`, `ablation_pairs`, ...).
    pub id: String,
    /// Human-readable title referencing the paper figure.
    pub title: String,
    /// The measured series, one line per row.
    pub lines: Vec<String>,
    /// Engine instrumentation for the batch that produced the series,
    /// when the experiment ran on the [`lion_engine`] engine.
    pub metrics: Option<MetricsReport>,
}

impl ExperimentReport {
    /// Creates a report.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            lines: Vec::new(),
            metrics: None,
        }
    }

    /// Appends one output line.
    pub fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Attaches the engine metrics printed below the series.
    pub fn with_metrics(mut self, metrics: MetricsReport) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for line in &self.lines {
            writeln!(f, "  {line}")?;
        }
        if let Some(metrics) = &self.metrics {
            writeln!(f, "  -- engine --")?;
            for line in metrics.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// All experiment identifiers, in paper order.
pub fn available_experiments() -> Vec<&'static str> {
    vec![
        "fig2",
        "fig3",
        "fig4",
        "fig6",
        "fig9",
        "fig13a",
        "fig13b",
        "fig14a",
        "fig14b",
        "fig15",
        "fig16_17",
        "fig18",
        "fig20",
        "fig21",
        "ablation_pairs",
        "ablation_adaptive",
        "ablation_smooth",
        "ablation_weightfn",
        "ablation_reference",
        "ablation_position_error",
        "ablation_refine",
    ]
}

/// Runs one experiment by identifier; `None` for unknown identifiers.
pub fn run_experiment(id: &str, seed: u64) -> Option<ExperimentReport> {
    Some(match id {
        "fig2" => fig2::report(seed),
        "fig3" => fig3::report(seed),
        "fig4" => fig4::report(seed),
        "fig6" => fig6::report(seed),
        "fig9" => fig9::report(seed),
        "fig13a" => fig13::report_accuracy(seed),
        "fig13b" => fig13::report_timing(seed),
        "fig14a" => fig14::report_3d(seed),
        "fig14b" => fig14::report_2d(seed),
        "fig15" => fig15::report(seed),
        "fig16_17" => fig16_18::report_range(seed),
        "fig18" => fig16_18::report_interval(seed),
        "fig20" => fig20::report(seed),
        "fig21" => fig21::report(seed),
        "ablation_pairs" => ablations::report_pairs(seed),
        "ablation_adaptive" => ablations::report_adaptive(seed),
        "ablation_smooth" => ablations::report_smoothing(seed),
        "ablation_weightfn" => ablations::report_weightfn(seed),
        "ablation_reference" => ablations::report_reference(seed),
        "ablation_position_error" => ablations::report_position_error(seed),
        "ablation_refine" => ablations::report_refine(seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for id in available_experiments() {
            // Do not *run* everything here (slow); just check the id set
            // matches the dispatcher by probing the unknown case.
            assert_ne!(id, "unknown");
        }
        assert!(run_experiment("unknown", 0).is_none());
    }

    #[test]
    fn report_display() {
        let mut r = ExperimentReport::new("figX", "title");
        r.push("row 1");
        let s = r.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("row 1"));
    }
}
