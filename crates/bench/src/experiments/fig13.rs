//! Fig. 13 — the headline result: overall accuracy (a) and time cost (b).
//!
//! Paper setup (Sec. V-B): an antenna is phase-calibrated in advance, then
//! used to locate the *initial position of a moving tag*. Localizing a tag
//! from one antenna is the mirror image of localizing an antenna from one
//! tag: with the tag's trajectory shape known, the measurements in the
//! tag-start frame `δᵢ = pᵢ − p₀` constrain the antenna's position
//! `q = A − p₀` in that frame; LION solves for `q` and `p₀ = A − q`
//! follows. Using the *physical* center for `A` instead of the calibrated
//! phase center shifts `p₀` by exactly the hidden displacement — which is
//! why the paper sees a ~6× (2D) / ~2.1× (3D) accuracy gap.

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_core::{Calibration, Calibrator, Estimate, LocalizerConfig, PairStrategy};
use lion_engine::{Engine, Job, MetricsReport};
use lion_geom::{LineSegment, Path, Point3, ThreeLineScan};
use lion_sim::{Antenna, Scenario};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Mean distance errors (meters) for each method/configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Accuracy {
    /// LION 2D with calibration.
    pub lion_2d_cal: f64,
    /// LION 2D without calibration (physical center).
    pub lion_2d_uncal: f64,
    /// LION 3D with calibration.
    pub lion_3d_cal: f64,
    /// LION 3D without calibration.
    pub lion_3d_uncal: f64,
    /// DAH 2D with calibration.
    pub dah_2d_cal: f64,
    /// DAH 3D with calibration.
    pub dah_3d_cal: f64,
}

/// Wall-clock seconds per localization.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Timing {
    /// LION 2D solve.
    pub lion_2d: f64,
    /// DAH 2D, (20 cm)² at the given grid.
    pub dah_2d: f64,
    /// LION 3D solve.
    pub lion_3d: f64,
    /// DAH 3D, (20 cm)³ at the given grid.
    pub dah_3d: f64,
    /// Grid size used for DAH (meters).
    pub dah_grid: f64,
    /// Wall time for the [`TIMING_BATCH`]-job 2D batch, run serially.
    pub batch_serial: f64,
    /// Wall time for the same batch on the engine under test.
    pub batch_engine: f64,
    /// Workers the engine batch actually used.
    pub batch_workers: usize,
}

/// Calibrates a rig antenna at `position` with a three-line scan (paper
/// Fig. 11). The 2D experiments mount the antenna at tag height (z = 0,
/// "the tag and the antenna are at the same height"); the 3D experiments
/// raise it by 10 cm.
pub fn calibrate_rig_at(seed: u64, position: Point3) -> (Antenna, Calibration) {
    let antenna = rig::paper_antenna(position);
    let physical = antenna.physical_center();
    let mut scenario = rig::paper_scenario(antenna.clone(), seed);
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid scan");
    let m = scenario
        .scan(&scan.to_path(), rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan")
        .to_measurements();
    let cfg = lion_core::LocalizerConfig {
        pair_strategy: PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        },
        ..rig::paper_localizer_config(physical)
    };
    let calibration = Calibrator::new(cfg)
        .with_adaptive(None)
        .calibrate(&m, physical)
        .expect("calibration succeeds");
    (antenna, calibration)
}

/// Scans one 2D trial track and returns the measurements in the
/// tag-start frame: known trajectory *shape*, positions relative to the
/// unknown start.
fn scan_tag_2d(scenario: &mut Scenario, p0: Point3) -> Vec<(Point3, f64)> {
    let track = LineSegment::new(p0, Point3::new(p0.x + 0.6, p0.y, p0.z)).expect("valid");
    let trace = scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    relative_to_start(trace.samples().iter().map(|s| (s.position, s.phase)), p0)
}

/// Scans one 3D trial: two x-lines at y-offset 0 and −0.2 (relative),
/// serpentine-connected (depth interval 0.2 m).
fn scan_tag_3d(scenario: &mut Scenario, p0: Point3) -> Vec<(Point3, f64)> {
    let l1 = LineSegment::new(p0, Point3::new(p0.x + 0.6, p0.y, p0.z)).expect("valid");
    let l2 = LineSegment::new(
        Point3::new(p0.x + 0.6, p0.y - 0.2, p0.z),
        Point3::new(p0.x, p0.y - 0.2, p0.z),
    )
    .expect("valid");
    let mut path = Path::new();
    path.push_line(l1).connect_to(l2.start()).push_line(l2);
    let trace = scenario
        .scan(&path, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    relative_to_start(trace.samples().iter().map(|s| (s.position, s.phase)), p0)
}

fn relative_to_start(
    samples: impl Iterator<Item = (Point3, f64)>,
    p0: Point3,
) -> Vec<(Point3, f64)> {
    samples
        .map(|(p, phase)| (Point3::new(p.x - p0.x, p.y - p0.y, p.z - p0.z), phase))
        .collect()
}

/// The 2D trial solver configuration (antenna side of the track).
fn tag_config_2d() -> LocalizerConfig {
    rig::paper_localizer_config(Point3::new(0.3, 0.8, 0.0))
}

/// The 3D trial solver configuration.
fn tag_config_3d() -> LocalizerConfig {
    rig::paper_localizer_config(Point3::new(0.3, 0.8, 0.1))
}

/// Maps a relative-frame antenna estimate back to a tag-start error.
/// `planar` compares in the xy-plane (the 2D experiments); otherwise the
/// full 3D distance.
fn start_error(est: &Estimate, antenna_used: Point3, p0: Point3, planar: bool) -> f64 {
    if planar {
        let p0_est = Point3::new(
            antenna_used.x - est.position.x,
            antenna_used.y - est.position.y,
            p0.z,
        );
        p0_est.to_xy().distance(p0.to_xy())
    } else {
        let p0_est = Point3::new(
            antenna_used.x - est.position.x,
            antenna_used.y - est.position.y,
            antenna_used.z - est.position.z,
        );
        p0_est.distance(p0)
    }
}

/// DAH on the decimated 2D relative trace; the error of its tag-start
/// estimate.
fn dah_tag_2d(
    rel: &[(Point3, f64)],
    antenna_used: Point3,
    p0: Point3,
    dah_grid: f64,
) -> Option<f64> {
    let dec: Vec<(Point3, f64)> = rel.iter().step_by(20).copied().collect();
    // The search region must cover q = A - p0 for every trial start
    // position (q_x spans about [-0.05, 0.35] here).
    let volume = SearchVolume::square_2d(Point3::new(0.15, 0.8, 0.0), 0.35);
    let cfg = HologramConfig {
        grid_size: dah_grid,
        wavelength: rig::LAMBDA,
        augmented: true,
    };
    hologram::locate(&dec, volume, &cfg).ok().map(|est| {
        let p0_est = Point3::new(
            antenna_used.x - est.position.x,
            antenna_used.y - est.position.y,
            p0.z,
        );
        p0_est.to_xy().distance(p0.to_xy())
    })
}

/// DAH on the decimated 3D relative trace.
fn dah_tag_3d(
    rel: &[(Point3, f64)],
    antenna_used: Point3,
    p0: Point3,
    dah_grid: f64,
) -> Option<f64> {
    let dec: Vec<(Point3, f64)> = rel.iter().step_by(20).copied().collect();
    let volume = SearchVolume {
        center: Point3::new(0.15, 0.8, 0.1),
        half_extent_x: 0.35,
        half_extent_y: 0.12,
        half_extent_z: 0.08,
    };
    let cfg = HologramConfig {
        grid_size: dah_grid,
        wavelength: rig::LAMBDA,
        augmented: true,
    };
    hologram::locate(&dec, volume, &cfg).ok().map(|est| {
        let p0_est = Point3::new(
            antenna_used.x - est.position.x,
            antenna_used.y - est.position.y,
            antenna_used.z - est.position.z,
        );
        p0_est.distance(p0)
    })
}

/// Calibrates the default 2D rig antenna (z = 0).
pub fn calibrate_rig(seed: u64) -> (Antenna, Calibration) {
    calibrate_rig_at(seed, Point3::new(0.0, 0.8, 0.0))
}

/// Runs the accuracy comparison with `trials` tag start positions.
pub fn run_accuracy(seed: u64, trials: usize, dah_grid: f64) -> Fig13Accuracy {
    run_accuracy_on(&Engine::new(), seed, trials, dah_grid).0
}

/// [`run_accuracy`] on an explicit [`Engine`].
///
/// Traces are scanned serially (so the RNG stream does not depend on the
/// worker count) while the DAH baseline runs inline; the four LION
/// solves per trial are fanned out as engine [`Job`]s. The series is
/// bit-identical for any worker count.
pub fn run_accuracy_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
    dah_grid: f64,
) -> (Fig13Accuracy, MetricsReport) {
    let (antenna_2d, cal_2d) = calibrate_rig_at(seed, Point3::new(0.0, 0.8, 0.0));
    let (antenna_3d, cal_3d) = calibrate_rig_at(seed ^ 0x77, Point3::new(0.0, 0.8, 0.1));
    let physical_2d = antenna_2d.physical_center();
    let calibrated_2d = cal_2d.phase_center;
    let physical_3d = antenna_3d.physical_center();
    let calibrated_3d = cal_3d.phase_center;
    let mut scenario = rig::paper_scenario(antenna_2d, seed ^ 0xABCD);
    let mut scenario_3d = rig::paper_scenario(antenna_3d, seed ^ 0xBCDE);

    // Gather: per trial, four scans (2D cal/uncal, 3D cal/uncal) in the
    // original serial order, with DAH evaluated inline on the calibrated
    // traces.
    let mut jobs = Vec::with_capacity(4 * trials);
    let mut p0s = Vec::with_capacity(trials);
    let mut dah_2d = Vec::new();
    let mut dah_3d = Vec::new();
    for t in 0..trials {
        // Start positions spread along the track (tag plane z = 0).
        let p0 = Point3::new(-0.35 + 0.1 * (t % 5) as f64, 0.0, 0.0);
        p0s.push(p0);
        let rel_cal = scan_tag_2d(&mut scenario, p0);
        dah_2d.extend(dah_tag_2d(&rel_cal, calibrated_2d, p0, dah_grid));
        let rel_unc = scan_tag_2d(&mut scenario, p0);
        let rel3_cal = scan_tag_3d(&mut scenario_3d, p0);
        dah_3d.extend(dah_tag_3d(&rel3_cal, calibrated_3d, p0, dah_grid * 2.0));
        let rel3_unc = scan_tag_3d(&mut scenario_3d, p0);
        jobs.push(Job::locate_2d(rel_cal, tag_config_2d()));
        jobs.push(Job::locate_2d(rel_unc, tag_config_2d()));
        jobs.push(Job::locate_3d(rel3_cal, tag_config_3d()));
        jobs.push(Job::locate_3d(rel3_unc, tag_config_3d()));
    }

    let outcome = engine.run(&jobs);
    let antenna_used = [calibrated_2d, physical_2d, calibrated_3d, physical_3d];
    let mut errors: [Vec<f64>; 4] = Default::default();
    for (t, chunk) in outcome.results.chunks(4).enumerate() {
        for (i, result) in chunk.iter().enumerate() {
            if let Some(est) = result.as_ref().ok().and_then(|o| o.estimate()) {
                let e = start_error(est, antenna_used[i], p0s[t], i < 2);
                if e.is_finite() {
                    errors[i].push(e);
                }
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (
        Fig13Accuracy {
            lion_2d_cal: mean(&errors[0]),
            lion_2d_uncal: mean(&errors[1]),
            lion_3d_cal: mean(&errors[2]),
            lion_3d_uncal: mean(&errors[3]),
            dah_2d_cal: mean(&dah_2d),
            dah_3d_cal: mean(&dah_3d),
        },
        outcome.report,
    )
}

/// Jobs in the fig13b throughput batch.
pub const TIMING_BATCH: usize = 64;

/// Measures single-shot localization wall time for all four methods.
pub fn run_timing(seed: u64, dah_grid: f64) -> Fig13Timing {
    run_timing_on(&Engine::new(), seed, dah_grid).0
}

/// [`run_timing`] on an explicit [`Engine`]: single-shot timings plus a
/// [`TIMING_BATCH`]-job 2D batch timed serially and on `engine`.
pub fn run_timing_on(engine: &Engine, seed: u64, dah_grid: f64) -> (Fig13Timing, MetricsReport) {
    let (antenna_2d, cal_2d) = calibrate_rig_at(seed, Point3::new(0.0, 0.8, 0.0));
    let (antenna_3d, cal_3d) = calibrate_rig_at(seed ^ 0x77, Point3::new(0.0, 0.8, 0.1));
    let mut scenario = rig::paper_scenario(antenna_2d, seed ^ 0x1234);
    let mut scenario_3d = rig::paper_scenario(antenna_3d, seed ^ 0x2345);
    let p0 = Point3::new(-0.2, 0.0, 0.0);
    let serial = Engine::serial();
    let (_, lion_2d) = rig::timed(|| {
        let rel = scan_tag_2d(&mut scenario, p0);
        serial.run(&[Job::locate_2d(rel, tag_config_2d())])
    });
    let (_, both_2d) = rig::timed(|| {
        let rel = scan_tag_2d(&mut scenario, p0);
        let _ = dah_tag_2d(&rel, cal_2d.phase_center, p0, dah_grid);
        serial.run(&[Job::locate_2d(rel, tag_config_2d())])
    });
    let (_, lion_3d) = rig::timed(|| {
        let rel = scan_tag_3d(&mut scenario_3d, p0);
        serial.run(&[Job::locate_3d(rel, tag_config_3d())])
    });
    let (_, both_3d) = rig::timed(|| {
        let rel = scan_tag_3d(&mut scenario_3d, p0);
        let _ = dah_tag_3d(&rel, cal_3d.phase_center, p0, dah_grid);
        serial.run(&[Job::locate_3d(rel, tag_config_3d())])
    });

    // Batch throughput: the same 2D solve fanned across the engine.
    let jobs: Vec<Job> = (0..TIMING_BATCH)
        .map(|t| {
            let start = Point3::new(-0.35 + 0.1 * (t % 5) as f64, 0.0, 0.0);
            Job::locate_2d(scan_tag_2d(&mut scenario, start), tag_config_2d())
        })
        .collect();
    let (_, batch_serial) = rig::timed(|| serial.run(&jobs));
    let (outcome, batch_engine) = rig::timed(|| engine.run(&jobs));
    (
        Fig13Timing {
            lion_2d,
            dah_2d: (both_2d - lion_2d).max(0.0),
            lion_3d,
            dah_3d: (both_3d - lion_3d).max(0.0),
            dah_grid,
            batch_serial,
            batch_engine,
            batch_workers: outcome.report.workers as usize,
        },
        outcome.report,
    )
}

/// Renders the accuracy report (Fig. 13a).
pub fn report_accuracy(seed: u64) -> ExperimentReport {
    let (acc, metrics) = run_accuracy_on(&Engine::new(), seed, 30, 0.002);
    let mut r = ExperimentReport::new(
        "fig13a",
        "overall accuracy: calibration on/off, LION vs DAH (Sec. V-B)",
    );
    r.push(format!(
        "LION 2D: calibrated {} | uncalibrated {} | improvement {:.1}x",
        rig::cm(acc.lion_2d_cal),
        rig::cm(acc.lion_2d_uncal),
        acc.lion_2d_uncal / acc.lion_2d_cal
    ));
    r.push(format!(
        "LION 3D: calibrated {} | uncalibrated {} | improvement {:.1}x",
        rig::cm(acc.lion_3d_cal),
        rig::cm(acc.lion_3d_uncal),
        acc.lion_3d_uncal / acc.lion_3d_cal
    ));
    r.push(format!(
        "calibrated LION vs DAH: 2D {} vs {} | 3D {} vs {}",
        rig::cm(acc.lion_2d_cal),
        rig::cm(acc.dah_2d_cal),
        rig::cm(acc.lion_3d_cal),
        rig::cm(acc.dah_3d_cal)
    ));
    r.push(
        "paper: 6x (2D) and 2.1x (3D) improvement; LION 0.48/2.33 cm vs DAH 0.69/2.61 cm"
            .to_string(),
    );
    r.with_metrics(metrics)
}

/// Renders the timing report (Fig. 13b).
pub fn report_timing(seed: u64) -> ExperimentReport {
    let (t, metrics) = run_timing_on(&Engine::new(), seed, 0.001);
    let mut r = ExperimentReport::new(
        "fig13b",
        "time cost per localization: LION vs DAH (Sec. V-B)",
    );
    r.push(format!(
        "LION 2D {} | DAH 2D ((20cm)^2 @ {:.0} mm grid) {}",
        rig::secs(t.lion_2d),
        t.dah_grid * 1000.0,
        rig::secs(t.dah_2d)
    ));
    r.push(format!(
        "LION 3D {} | DAH 3D ((20cm)^3) {}",
        rig::secs(t.lion_3d),
        rig::secs(t.dah_3d)
    ));
    r.push(format!(
        "speedup: 2D {:.0}x, 3D {:.0}x",
        t.dah_2d / t.lion_2d.max(1e-9),
        t.dah_3d / t.lion_3d.max(1e-9)
    ));
    r.push(format!(
        "batch: {} 2D jobs | serial {} | engine ({} workers) {} | {:.0} jobs/s",
        TIMING_BATCH,
        rig::secs(t.batch_serial),
        t.batch_workers,
        rig::secs(t.batch_engine),
        TIMING_BATCH as f64 / t.batch_engine.max(1e-9)
    ));
    r.push("paper: LION 0.02 s (2D) / 1.8 s (3D), DAH far slower especially in 3D".to_string());
    r.with_metrics(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_recovers_center_under_noise() {
        let (antenna, cal) = calibrate_rig(3);
        let err = cal.phase_center.distance(antenna.phase_center());
        assert!(err < 0.01, "calibration error {err}");
        // The displacement found is close to the planted one.
        let planted = antenna.phase_center_displacement();
        assert!((cal.center_displacement - planted).norm() < 0.01);
    }

    #[test]
    fn calibration_improves_2d_accuracy_severalfold() {
        let acc = run_accuracy(5, 5, 0.004);
        assert!(
            acc.lion_2d_cal < acc.lion_2d_uncal,
            "calibrated {} should beat uncalibrated {}",
            acc.lion_2d_cal,
            acc.lion_2d_uncal
        );
        // The uncalibrated error approximates the planted xy displacement.
        let planted_xy =
            (rig::DEFAULT_DISPLACEMENT.x.powi(2) + rig::DEFAULT_DISPLACEMENT.y.powi(2)).sqrt();
        assert!(
            (acc.lion_2d_uncal - planted_xy).abs() < 0.01,
            "uncal {} vs displacement {}",
            acc.lion_2d_uncal,
            planted_xy
        );
        // Improvement is at least 2x even with few trials.
        assert!(acc.lion_2d_uncal / acc.lion_2d_cal > 2.0);
    }

    #[test]
    fn calibration_improves_3d_accuracy() {
        let acc = run_accuracy(7, 4, 0.006);
        assert!(acc.lion_3d_cal < acc.lion_3d_uncal);
        assert!(
            acc.lion_3d_cal < 0.04,
            "3D calibrated error {}",
            acc.lion_3d_cal
        );
    }

    #[test]
    fn lion_is_much_faster_than_dah() {
        let t = run_timing(9, 0.004);
        assert!(t.lion_2d < t.dah_2d, "2D: {} vs {}", t.lion_2d, t.dah_2d);
        assert!(t.lion_3d < t.dah_3d, "3D: {} vs {}", t.lion_3d, t.dah_3d);
    }
}
