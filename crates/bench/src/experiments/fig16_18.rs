//! Figs. 16–18 — impact of scanning range and interval, and the residual
//! signal that drives the adaptive parameter selection.
//!
//! Paper setup (Sec. V-E): tag on the x-axis at 0.8 m depth.
//!
//! - Range sweep (interval fixed at 25 cm): small ranges barely modulate
//!   the phase (plane-wave regime → noisy), large ranges pull in off-beam
//!   samples (multipath + weaker SNR). The |mean WLS residual| is smallest
//!   where the distance error is smallest — the paper's justification for
//!   residual-driven selection.
//! - Interval sweep (range fixed at 80 cm): larger intervals enlarge the
//!   pairwise phase difference relative to noise.

use lion_core::{Localizer2d, PhaseProfile, Workspace};
use lion_geom::{LineSegment, Point3};

use crate::experiments::ExperimentReport;
use crate::rig;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (meters).
    pub value: f64,
    /// Mean |WLS residual|.
    pub mean_abs_residual: f64,
    /// Mean distance error (meters).
    pub mean_error: f64,
}

fn sweep(
    seed: u64,
    trials: usize,
    settings: &[(f64, f64)], // (range, interval) per sweep point
    label_by_range: bool,
) -> Vec<SweepPoint> {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    // A narrower beam than the default so that samples beyond ~±0.4 m
    // are visibly off-beam: their SNR drops and the (SNR-dependent) phase
    // noise rises — the mechanism behind the paper's range sweet spot.
    let antenna = lion_sim::Antenna::builder(antenna_pos)
        .gain_exponent(6.0)
        .boresight(lion_geom::Vec3::new(0.0, -1.0, 0.0))
        .build();
    let mut scenario = rig::indoor_scenario(antenna, seed);
    // One long scan per trial, reused for every sweep point.
    let track = LineSegment::along_x(-0.75, 0.75, 0.0, 0.0).expect("valid");
    let mut traces = Vec::new();
    for _ in 0..trials {
        traces.push(
            scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan"),
        );
    }
    let mut ws = Workspace::new();
    settings
        .iter()
        .map(|&(range, interval)| {
            let mut residuals = Vec::new();
            let mut errors = Vec::new();
            for trace in &traces {
                let m = trace.to_measurements();
                let mut cfg = rig::paper_localizer_config(antenna_pos);
                cfg.pair_strategy = cfg.pair_strategy.with_interval(interval);
                let profile = match PhaseProfile::from_wrapped(&m, rig::LAMBDA) {
                    Ok(mut p) => {
                        p.smooth(cfg.smoothing_window);
                        p.restrict_x(-range / 2.0, range / 2.0)
                    }
                    Err(_) => continue,
                };
                if let Ok(est) = Localizer2d::new(cfg).locate_profile_in(&profile, &mut ws) {
                    residuals.push(est.mean_residual.abs());
                    errors.push(est.distance_error(antenna_pos));
                }
            }
            SweepPoint {
                value: if label_by_range { range } else { interval },
                mean_abs_residual: rig::mean_std(&residuals).0,
                mean_error: rig::mean_std(&errors).0,
            }
        })
        .collect()
}

/// Runs the range sweep (Figs. 16–17): 0.6–1.1 m at 25 cm interval.
pub fn run_range_sweep(seed: u64, trials: usize) -> Vec<SweepPoint> {
    let settings: Vec<(f64, f64)> = (0..6).map(|i| (0.6 + 0.1 * i as f64, 0.25)).collect();
    sweep(seed, trials, &settings, true)
}

/// Runs the interval sweep (Fig. 18): 0.10–0.35 m at 80 cm range.
pub fn run_interval_sweep(seed: u64, trials: usize) -> Vec<SweepPoint> {
    let settings: Vec<(f64, f64)> = (0..6).map(|i| (0.8, 0.10 + 0.05 * i as f64)).collect();
    sweep(seed, trials, &settings, false)
}

/// Renders the range-sweep report (Figs. 16 & 17).
pub fn report_range(seed: u64) -> ExperimentReport {
    let points = run_range_sweep(seed, 20);
    let mut r = ExperimentReport::new(
        "fig16_17",
        "scanning range sweep: |mean residual| tracks distance error (Sec. V-E)",
    );
    r.push("range | |mean residual| | mean error".to_string());
    for p in &points {
        r.push(format!(
            "{:.1} m | {:9.5} | {}",
            p.value,
            p.mean_abs_residual,
            rig::cm(p.mean_error)
        ));
    }
    let best_res = points
        .iter()
        .min_by(|a, b| {
            a.mean_abs_residual
                .partial_cmp(&b.mean_abs_residual)
                .expect("residuals are finite")
        })
        .map(|p| p.value);
    let best_err = points
        .iter()
        .min_by(|a, b| {
            a.mean_error
                .partial_cmp(&b.mean_error)
                .expect("errors are finite")
        })
        .map(|p| p.value);
    r.push(format!(
        "range with smallest |residual|: {best_res:?} m; with smallest error: {best_err:?} m"
    ));
    r.push("paper: both minima coincide at 0.8 m".to_string());
    r
}

/// Renders the interval-sweep report (Fig. 18).
pub fn report_interval(seed: u64) -> ExperimentReport {
    let points = run_interval_sweep(seed, 20);
    let mut r = ExperimentReport::new("fig18", "scanning interval sweep at 80 cm range (Sec. V-E)");
    r.push("interval | |mean residual| | mean error".to_string());
    for p in &points {
        r.push(format!(
            "{:.2} m | {:9.5} | {}",
            p.value,
            p.mean_abs_residual,
            rig::cm(p.mean_error)
        ));
    }
    r.push(
        "paper: error drops sharply once the interval reaches ~0.20 m; residual agrees".to_string(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sweep_produces_all_points() {
        let points = run_range_sweep(81, 32);
        assert_eq!(points.len(), 6);
        assert!((points[0].value - 0.6).abs() < 1e-12);
        assert!((points[5].value - 1.1).abs() < 1e-12);
        assert!(points.iter().all(|p| p.mean_error.is_finite()));
        assert!(points.iter().all(|p| p.mean_abs_residual >= 0.0));
    }

    #[test]
    fn larger_intervals_reduce_error() {
        let points = run_interval_sweep(71, 6);
        assert_eq!(points.len(), 6);
        // The smallest interval should not be the best; 0.2 m+ should beat
        // 0.10 m on average (paper Fig. 18 shape).
        let small = points[0].mean_error;
        let large = points[3].mean_error.min(points[4].mean_error);
        assert!(
            large <= small * 1.2,
            "interval 0.25/0.30 ({large}) should be <= interval 0.10 ({small})"
        );
    }

    #[test]
    fn residual_flags_off_beam_noise_and_selection_is_safe() {
        // The residual is the adaptive sweep's selection signal. Two
        // properties make it usable: it must grow once the range pulls in
        // off-beam (noisier) samples, and picking the residual-argmin
        // range must never land on a catastrophically bad configuration.
        // (WLS downweights the off-beam samples, so mean error stays flat
        // here; a strict error/residual rank agreement is not stable
        // under resampling and is deliberately not asserted.)
        let points = run_range_sweep(81, 16);
        let res_small = points[0].mean_abs_residual;
        let res_large = points[5].mean_abs_residual;
        assert!(
            res_large > 1.5 * res_small,
            "off-beam range residual {res_large} should exceed {res_small}"
        );
        let best_err = points
            .iter()
            .map(|p| p.mean_error)
            .fold(f64::INFINITY, f64::min);
        let chosen = points
            .iter()
            .min_by(|a, b| {
                a.mean_abs_residual
                    .partial_cmp(&b.mean_abs_residual)
                    .unwrap()
            })
            .unwrap();
        assert!(
            chosen.mean_error <= 2.5 * best_err,
            "residual-selected range error {} vs best {best_err}",
            chosen.mean_error
        );
    }
}
