//! Figs. 19–20 — the case study: locating a static tag with three
//! antennas, with and without phase calibration.
//!
//! Paper setup (Sec. V-F1): antennas `A1..A3` in a line 0.3 m apart at tag
//! height; each is first calibrated with the three-line scan (the paper
//! reports per-antenna center displacements and offsets 3.98 / 2.74 /
//! 4.07 rad); then a differential hologram across the antennas locates a
//! tag at (−10 cm, 80 cm). Accuracy improves monotonically: no calibration
//! 8.49 cm → center calibration 5.76 cm → full calibration 4.68 cm (1.8×).

use lion_baselines::hologram::SearchVolume;
use lion_baselines::multi_antenna::{locate_tag, AntennaReading, MultiAntennaConfig};
use lion_core::multistatic::{self, MultistaticConfig};
use lion_core::{Calibration, Calibrator, PairStrategy};
use lion_geom::{Point3, ThreeLineScan, Trajectory, Vec3};
use lion_linalg::stats;
use lion_sim::{Antenna, NoiseModel, ScenarioBuilder, Tag};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Distance errors (meters) of the three calibration levels.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyResult {
    /// Physical centers, no offset correction.
    pub uncalibrated: f64,
    /// Calibrated centers, no offset correction.
    pub center_only: f64,
    /// Calibrated centers and offsets.
    pub full: f64,
    /// LION-multistatic extension (calibrated centers + offsets, linear
    /// solve with integer-ambiguity search instead of a hologram).
    pub multistatic: f64,
    /// Per-antenna calibrations (diagnostics).
    pub calibrations: Vec<Calibration>,
}

/// The three rig antennas: distinct hidden displacements and the paper's
/// measured offsets.
fn rig_antennas() -> Vec<Antenna> {
    let offsets = [3.98, 2.74, 4.07];
    let displacements = [
        Vec3::new(0.024, -0.010, 0.012),
        Vec3::new(-0.018, 0.015, -0.020),
        Vec3::new(0.012, 0.022, 0.008),
    ];
    (0..3)
        .map(|i| {
            Antenna::builder(Point3::new(-0.3 + 0.3 * i as f64, 0.0, 0.0))
                .phase_center_displacement(
                    displacements[i].x,
                    displacements[i].y,
                    displacements[i].z,
                )
                .phase_offset(offsets[i])
                .boresight(Vec3::new(0.0, 1.0, 0.0)) // facing the tag at +y
                .build()
        })
        .collect()
}

fn scenario_for(antenna: Antenna, seed: u64) -> lion_sim::Scenario {
    ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("case-study").with_phase_offset(0.9))
        .environment(lion_sim::Environment::indoor_lab())
        .noise(NoiseModel::indoor_default())
        .seed(seed)
        .build()
        .expect("components set")
}

/// Calibrates each antenna via the three-line scan in front of it.
pub fn calibrate_all(seed: u64) -> Vec<Calibration> {
    rig_antennas()
        .into_iter()
        .enumerate()
        .map(|(i, antenna)| {
            let physical = antenna.physical_center();
            let mut scenario = scenario_for(antenna, seed ^ ((i as u64) << 20));
            // Scan lines in front of this antenna (depth 0.7 m), matching
            // the paper's per-antenna calibration geometry. The scan is in
            // world coordinates centered under the antenna x.
            let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid");
            // Shift the path in front of the antenna: the scan's L1 runs at
            // y = 0.7, lines offset toward +y (away from the antenna).
            let path = scan.to_path();
            let m: Vec<(Point3, f64)> = path
                .sample(rig::TAG_SPEED, rig::READ_RATE)
                .into_iter()
                .map(|w| {
                    let world = Point3::new(
                        w.position.x + physical.x,
                        0.7 - w.position.y, // L1 at 0.7, L3 at 0.9 (deeper)
                        w.position.z,
                    );
                    let sample = scenario.measure_at(w.time, world);
                    (world, sample.phase)
                })
                .collect();
            // The scan lives in world coordinates, so the structured
            // strategy (which assumes the scan-local frame) does not apply;
            // exhaustive pairs with a minimum separation observe all axes.
            let cfg = lion_core::LocalizerConfig {
                pair_strategy: PairStrategy::AllWithMinSeparation {
                    min_separation: 0.18,
                    max_pairs: 4000,
                },
                ..rig::paper_localizer_config(physical)
            };
            Calibrator::new(cfg)
                .with_adaptive(None)
                .calibrate(&m, physical)
                .expect("calibration succeeds")
        })
        .collect()
}

/// Mean phase each antenna measures from the static tag.
pub fn read_tag_phases(seed: u64, tag_pos: Point3, reads: usize) -> Vec<f64> {
    rig_antennas()
        .into_iter()
        .enumerate()
        .map(|(i, antenna)| {
            let mut scenario = scenario_for(antenna, seed ^ 0x5555 ^ ((i as u64) << 8));
            let trace = scenario
                .read_static(tag_pos, reads, rig::READ_RATE)
                .expect("valid read");
            stats::circular_mean(&trace.phases()).expect("concentrated phases")
        })
        .collect()
}

/// Runs the full case study, averaging over several tag placements to
/// tame the grating-lobe luck inherent in a 3-antenna differential
/// hologram.
pub fn run(seed: u64, grid: f64) -> CaseStudyResult {
    let antennas = rig_antennas();
    let calibrations = calibrate_all(seed);
    // The paper's tag sits at (−10 cm, 80 cm) from the center antenna; we
    // average a small neighborhood of placements around it.
    let tag_positions = [
        Point3::new(-0.1, 0.8, 0.0),
        Point3::new(0.05, 0.75, 0.0),
        Point3::new(-0.05, 0.85, 0.0),
        Point3::new(0.1, 0.8, 0.0),
        Point3::new(0.0, 0.7, 0.0),
    ];
    let cfg = MultiAntennaConfig {
        grid_size: grid,
        ..MultiAntennaConfig::default()
    };
    let physical: Vec<Point3> = antennas.iter().map(|a| a.physical_center()).collect();
    let calibrated: Vec<Point3> = calibrations.iter().map(|c| c.phase_center).collect();
    let offsets: Vec<f64> = calibrations.iter().map(|c| c.phase_offset).collect();

    let mut sums = [0.0_f64; 4];
    let mut counts = [0usize; 4];
    for (t_idx, &tag_pos) in tag_positions.iter().enumerate() {
        let phases = read_tag_phases(seed ^ ((t_idx as u64) << 12), tag_pos, 500);
        // The search region matches the paper's bounded prior knowledge of
        // the tag area; one interference fringe (~0.43 m spacing here)
        // fits inside, so mis-calibration shifts the peak instead of
        // teleporting it to a neighboring fringe.
        let volume = SearchVolume::square_2d(Point3::new(0.0, 0.8, 0.0), 0.2);
        let mut run_case = |slot: usize, positions: &[Point3], offs: Option<&[f64]>| {
            let readings: Vec<AntennaReading> = positions
                .iter()
                .zip(&phases)
                .enumerate()
                .map(|(i, (&p, &ph))| {
                    let r = AntennaReading::new(p, ph);
                    match offs {
                        Some(o) => r.with_offset(o[i]),
                        None => r,
                    }
                })
                .collect();
            if let Ok(e) = locate_tag(&readings, volume, &cfg) {
                sums[slot] += e.position.distance(tag_pos);
                counts[slot] += 1;
            }
        };
        run_case(0, &physical, None);
        run_case(1, &calibrated, None);
        run_case(2, &calibrated, Some(&offsets));
        // The LION-multistatic extension: same calibrated inputs, linear
        // solve + ambiguity search instead of a grid scan.
        let ms_readings: Vec<(lion_geom::Point3, f64)> = calibrated
            .iter()
            .zip(&phases)
            .zip(&offsets)
            .map(|((&c, &ph), &o)| (c, lion_linalg::stats::wrap_angle(ph - o)))
            .collect();
        let ms_cfg = MultistaticConfig {
            side_hint: Some(Point3::new(0.0, 0.8, 0.0)),
            // Same prior knowledge the hologram's search volume encodes.
            region: Some((Point3::new(0.0, 0.8, 0.0), 0.2)),
            ..MultistaticConfig::default()
        };
        if let Ok(e) = multistatic::locate_tag(&ms_readings, &ms_cfg) {
            sums[3] += e.position.distance(tag_pos);
            counts[3] += 1;
        }
    }
    let mean = |i: usize| {
        if counts[i] > 0 {
            sums[i] / counts[i] as f64
        } else {
            f64::NAN
        }
    };
    CaseStudyResult {
        uncalibrated: mean(0),
        center_only: mean(1),
        full: mean(2),
        multistatic: mean(3),
        calibrations,
    }
}

/// Renders the paper-style report.
pub fn report(seed: u64) -> ExperimentReport {
    let res = run(seed, 0.002);
    let mut r = ExperimentReport::new(
        "fig20",
        "case study: static tag, 3 antennas, calibration levels (Sec. V-F1)",
    );
    for (i, c) in res.calibrations.iter().enumerate() {
        r.push(format!(
            "A{}: center displacement {} (|{}|), offset {:.2} rad",
            i + 1,
            c.center_displacement,
            rig::cm(c.center_displacement.norm()),
            c.phase_offset
        ));
    }
    r.push(format!(
        "tag error: no calibration {} -> center calibration {} -> full calibration {}",
        rig::cm(res.uncalibrated),
        rig::cm(res.center_only),
        rig::cm(res.full)
    ));
    r.push(format!(
        "improvement {:.1}x (paper: 8.49 -> 5.76 -> 4.68 cm, 1.8x)",
        res.uncalibrated / res.full.max(0.002)
    ));
    r.push(format!(
        "extension: LION multistatic (linear solve + ambiguity search) {} — \
         x is accurate but depth suffers: the minimal 3-antenna array has no \
         redundancy and the d_r route amplifies offset-calibration error",
        rig::cm(res.multistatic)
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrations_recover_planted_displacements() {
        let cals = calibrate_all(91);
        let ants = rig_antennas();
        for (c, a) in cals.iter().zip(&ants) {
            let err = c.phase_center.distance(a.phase_center());
            assert!(err < 0.012, "calibration error {err}");
            // Offsets recovered up to the common tag offset: check pairwise
            // differences against planted θ_R differences.
        }
        let planted = [3.98, 2.74, 4.07];
        for i in 0..3 {
            for j in (i + 1)..3 {
                let measured = stats::circular_diff(cals[i].phase_offset, cals[j].phase_offset);
                let expected = stats::circular_diff(planted[i], planted[j]);
                // Indoor multipath leaves a couple tenths of a radian of
                // offset error — the residual error seen in the case study.
                assert!(
                    (measured - expected).abs() < 0.5,
                    "offset diff A{i}-A{j}: {measured} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn calibration_improves_monotonically() {
        let res = run(101, 0.004);
        assert!(
            res.full < res.uncalibrated,
            "full {} should beat uncalibrated {}",
            res.full,
            res.uncalibrated
        );
        assert!(
            res.center_only <= res.uncalibrated * 1.05,
            "center-only {} should not be worse than uncalibrated {}",
            res.center_only,
            res.uncalibrated
        );
        assert!(res.full < 0.05, "full calibration error {}", res.full);
        // The multistatic extension recovers x well but loses depth
        // accuracy to the hologram on this minimal collinear array: its
        // linear d_r route amplifies the residual offset-calibration error,
        // where the hologram's wrapped-phase agreement degrades gracefully.
        // (A good reason the paper used the hologram here; see
        // EXPERIMENTS.md.)
        assert!(
            res.multistatic < 0.25,
            "multistatic error {}",
            res.multistatic
        );
    }
}
