//! Fig. 2 — the phase valley is not at the physical center.
//!
//! Paper setup (Sec. II-A): a tag 65 cm in front of the antenna sweeps
//! across the antenna face horizontally and vertically; the unwrapped
//! phase minimum should sit straight in front of the *phase* center, so
//! with real hardware it shows up 2–3 cm away from the physical center.
//! We reproduce exactly that with the planted displacement.

use lion_core::preprocess::PhaseProfile;
use lion_geom::{LineSegment, Point3};

use crate::experiments::ExperimentReport;
use crate::rig;

/// The sweep result for one axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValleyOffset {
    /// Coordinate of the unwrapped-phase minimum along the sweep axis
    /// (meters, relative to the physical center).
    pub valley: f64,
    /// The planted phase-center coordinate along the same axis.
    pub truth: f64,
}

/// Runs the two sweeps and returns (horizontal, vertical) valley offsets.
pub fn run(seed: u64) -> (ValleyOffset, ValleyOffset) {
    // Physical center at the origin; tag plane 65 cm in front (−y).
    let antenna = rig::paper_antenna(Point3::ORIGIN);
    let truth = antenna.phase_center();
    let mut scenario = rig::paper_scenario(antenna, seed);

    // Horizontal sweep: x from −0.3 to 0.3 at y = −0.65, z = 0.
    let horizontal = LineSegment::new(Point3::new(-0.3, -0.65, 0.0), Point3::new(0.3, -0.65, 0.0))
        .expect("valid segment");
    let trace = scenario
        .scan(&horizontal, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    let h = valley_along(&trace.to_measurements(), |p| p.x, truth.x);

    // Vertical sweep: z from −0.3 to 0.3 at x = 0, y = −0.65.
    let vertical = LineSegment::new(Point3::new(0.0, -0.65, -0.3), Point3::new(0.0, -0.65, 0.3))
        .expect("valid segment");
    let trace = scenario
        .scan(&vertical, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan");
    let v = valley_along(&trace.to_measurements(), |p| p.z, truth.z);

    (h, v)
}

fn valley_along(
    measurements: &[(Point3, f64)],
    coord: impl Fn(Point3) -> f64,
    truth: f64,
) -> ValleyOffset {
    let mut profile =
        PhaseProfile::from_wrapped(measurements, rig::LAMBDA).expect("enough samples");
    profile.smooth(25);
    // The valley is shallow relative to the phase noise (the paper's own
    // Fig. 2 curves are visibly wobbly), so a raw argmin is unstable; a
    // quadratic fit of the central profile pins the vertex robustly.
    let coords: Vec<f64> = profile.positions().iter().map(|p| coord(*p)).collect();
    let poly =
        lion_linalg::poly::Polynomial::fit(&coords, profile.phases(), 2).expect("well-posed fit");
    let valley = poly.vertex().map(|(x, _)| x).unwrap_or_else(|| {
        // Degenerate curvature: fall back to the argmin sample.
        let i = profile
            .phases()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        coords[i]
    });
    ValleyOffset { valley, truth }
}

/// Renders the paper-style report.
pub fn report(seed: u64) -> ExperimentReport {
    let (h, v) = run(seed);
    let mut r = ExperimentReport::new(
        "fig2",
        "phase valley offset from the physical center (Sec. II-A)",
    );
    r.push(format!(
        "horizontal sweep: valley at x = {}, planted phase center x = {}",
        rig::cm(h.valley),
        rig::cm(h.truth)
    ));
    r.push(format!(
        "vertical sweep:   valley at z = {}, planted phase center z = {}",
        rig::cm(v.valley),
        rig::cm(v.truth)
    ));
    r.push(format!(
        "paper: valleys appear 2–3 cm from the origin; ours: {} and {}",
        rig::cm(h.valley.abs()),
        rig::cm(v.valley.abs())
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valley_tracks_planted_displacement() {
        let (h, v) = run(7);
        // The valley should land within ~1 cm of the planted coordinate
        // (noise plus sampling discretization).
        assert!(
            (h.valley - h.truth).abs() < 0.012,
            "horizontal valley {} vs truth {}",
            h.valley,
            h.truth
        );
        assert!(
            (v.valley - v.truth).abs() < 0.012,
            "vertical valley {} vs truth {}",
            v.valley,
            v.truth
        );
        // And decidedly NOT at the physical center (which is at 0).
        assert!(h.valley.abs() > 0.005);
        assert!(v.valley.abs() > 0.005);
    }

    #[test]
    fn report_renders() {
        let r = report(1);
        assert_eq!(r.id, "fig2");
        assert_eq!(r.lines.len(), 3);
    }
}
