//! Ablations of LION's design choices, beyond what the paper plots:
//! pair-selection strategy, adaptive selection, smoothing window, weight
//! function, and reference-sample choice.

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_baselines::refine::{locate_refined, RefineConfig};
use lion_core::{AdaptiveConfig, Localizer2d, LocalizerConfig, PairStrategy, Weighting};
use lion_engine::{Engine, Job, MetricsReport};
use lion_geom::{LineSegment, Point3, ThreeLineScan};
use lion_linalg::{IrlsConfig, WeightFunction};
use lion_sim::PositionErrorModel;

use crate::experiments::ExperimentReport;
use crate::rig;

/// Mean error and mean equation count for one configuration label.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: String,
    /// Mean distance error (meters).
    pub mean_error: f64,
    /// Mean equation count (0 when not applicable).
    pub mean_equations: f64,
}

fn three_line_measurements(seed: u64, target: Point3) -> (ThreeLineScan, Vec<(Point3, f64)>) {
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, seed);
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid");
    let m = scenario
        .scan(&scan.to_path(), rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan")
        .to_measurements();
    (scan, m)
}

/// Pair-strategy ablation on the 3D three-line scan.
pub fn run_pairs(seed: u64, trials: usize) -> Vec<AblationPoint> {
    run_pairs_on(&Engine::new(), seed, trials).0
}

/// [`run_pairs`] on an explicit [`Engine`]: three 3D [`Job`]s per trial,
/// one per strategy, on the same serially-simulated trace.
pub fn run_pairs_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
) -> (Vec<AblationPoint>, MetricsReport) {
    let target = Point3::new(0.05, 0.8, 0.12);
    let strategies: Vec<(String, PairStrategy)> = vec![
        (
            "interval 0.2".to_string(),
            PairStrategy::Interval { interval: 0.2 },
        ),
        (
            "all pairs >=0.18 (cap 4000)".to_string(),
            PairStrategy::AllWithMinSeparation {
                min_separation: 0.18,
                max_pairs: 4000,
            },
        ),
    ];
    let mut jobs = Vec::with_capacity((1 + strategies.len()) * trials);
    for t in 0..trials {
        let (scan, m) = three_line_measurements(seed ^ (t as u64), target);
        // The structured strategy needs the scan geometry.
        let structured = PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        };
        for strategy in std::iter::once(&structured).chain(strategies.iter().map(|(_, s)| s)) {
            let cfg = LocalizerConfig {
                pair_strategy: strategy.clone(),
                ..rig::paper_localizer_config(target)
            };
            jobs.push(Job::locate_3d(m.clone(), cfg));
        }
    }
    let outcome = engine.run(&jobs);
    let labels: Vec<String> = std::iter::once("structured 3-line (paper)".to_string())
        .chain(strategies.into_iter().map(|(label, _)| label))
        .collect();
    let mut per_label: Vec<(Vec<f64>, Vec<f64>)> =
        labels.iter().map(|_| (Vec::new(), Vec::new())).collect();
    for chunk in outcome.results.chunks(labels.len()) {
        for (slot, result) in per_label.iter_mut().zip(chunk) {
            if let Some(est) = result.as_ref().ok().and_then(|o| o.estimate()) {
                slot.0.push(est.distance_error(target));
                slot.1.push(est.equation_count as f64);
            }
        }
    }
    let points = labels
        .into_iter()
        .zip(per_label)
        .map(|(label, (errs, eqs))| AblationPoint {
            label,
            mean_error: rig::mean_std(&errs).0,
            mean_equations: rig::mean_std(&eqs).0,
        })
        .collect();
    (points, outcome.report)
}

/// Adaptive selection on/off across noise levels (2D conveyor setup).
pub fn run_adaptive(seed: u64, trials: usize) -> Vec<AblationPoint> {
    run_adaptive_on(&Engine::new(), seed, trials).0
}

/// [`run_adaptive`] on an explicit [`Engine`]: each trial contributes a
/// single-shot [`Job`] and an adaptive-sweep [`Job`] on the same trace.
pub fn run_adaptive_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
) -> (Vec<AblationPoint>, MetricsReport) {
    let environments = [
        ("paper noise, free space", false),
        ("indoor multipath", true),
    ];
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let mut jobs = Vec::with_capacity(2 * environments.len() * trials);
    for (_, indoor) in environments {
        let antenna = rig::ideal_antenna(antenna_pos);
        let mut scenario = if indoor {
            rig::indoor_scenario(antenna, seed)
        } else {
            rig::paper_scenario(antenna, seed)
        };
        for _ in 0..trials {
            let track = LineSegment::along_x(-0.6, 0.6, 0.0, 0.0).expect("valid");
            let m = scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan")
                .to_measurements();
            let cfg = rig::paper_localizer_config(antenna_pos);
            jobs.push(Job::locate_2d(m.clone(), cfg.clone()));
            jobs.push(Job::adaptive_2d(m, cfg, AdaptiveConfig::default()));
        }
    }
    let outcome = engine.run(&jobs);
    let mut out = Vec::new();
    for (e_idx, (label, _)) in environments.iter().enumerate() {
        let mut plain = Vec::new();
        let mut adaptive_err = Vec::new();
        let slice = &outcome.results[e_idx * 2 * trials..(e_idx + 1) * 2 * trials];
        for chunk in slice.chunks(2) {
            if let Some(est) = chunk[0].as_ref().ok().and_then(|o| o.estimate()) {
                plain.push(est.distance_error(antenna_pos));
            }
            if let Some(est) = chunk[1].as_ref().ok().and_then(|o| o.estimate()) {
                adaptive_err.push(est.distance_error(antenna_pos));
            }
        }
        out.push(AblationPoint {
            label: format!("{label}: single-shot"),
            mean_error: rig::mean_std(&plain).0,
            mean_equations: 0.0,
        });
        out.push(AblationPoint {
            label: format!("{label}: adaptive"),
            mean_error: rig::mean_std(&adaptive_err).0,
            mean_equations: 0.0,
        });
    }
    (out, outcome.report)
}

/// Scans `trials` straight passes of the given scenario.
fn linear_traces(scenario: &mut lion_sim::Scenario, trials: usize) -> Vec<Vec<(Point3, f64)>> {
    (0..trials)
        .map(|_| {
            let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
            scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan")
                .to_measurements()
        })
        .collect()
}

/// Runs a labelled 2D configuration sweep over shared traces on the
/// engine: one [`Job`] per `(configuration, trace)` combination.
fn sweep_2d_on(
    engine: &Engine,
    traces: &[Vec<(Point3, f64)>],
    configs: Vec<(String, LocalizerConfig)>,
    target: Point3,
) -> (Vec<AblationPoint>, MetricsReport) {
    let mut jobs = Vec::with_capacity(configs.len() * traces.len());
    for (_, cfg) in &configs {
        for m in traces {
            jobs.push(Job::locate_2d(m.clone(), cfg.clone()));
        }
    }
    let outcome = engine.run(&jobs);
    let points = configs
        .into_iter()
        .zip(outcome.results.chunks(traces.len().max(1)))
        .map(|((label, _), chunk)| {
            let errs: Vec<f64> = chunk
                .iter()
                .filter_map(|r| r.as_ref().ok().and_then(|o| o.estimate()))
                .map(|est| est.distance_error(target))
                .collect();
            AblationPoint {
                label,
                mean_error: rig::mean_std(&errs).0,
                mean_equations: 0.0,
            }
        })
        .collect();
    (points, outcome.report)
}

/// Smoothing-window sweep under the paper's noise (2D linear scan).
pub fn run_smoothing(seed: u64, trials: usize) -> Vec<AblationPoint> {
    run_smoothing_on(&Engine::new(), seed, trials).0
}

/// [`run_smoothing`] on an explicit [`Engine`].
pub fn run_smoothing_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
) -> (Vec<AblationPoint>, MetricsReport) {
    let antenna_pos = Point3::new(0.1, 0.8, 0.0);
    let antenna = rig::ideal_antenna(antenna_pos);
    let mut scenario = rig::paper_scenario(antenna, seed);
    let traces = linear_traces(&mut scenario, trials);
    let configs = [1usize, 5, 9, 17, 33, 65]
        .into_iter()
        .map(|w| {
            (
                format!("window {w}"),
                LocalizerConfig {
                    smoothing_window: w,
                    ..rig::paper_localizer_config(antenna_pos)
                },
            )
        })
        .collect();
    sweep_2d_on(engine, &traces, configs, antenna_pos)
}

/// Weight-function ablation (Gaussian vs Huber vs uniform) under
/// multipath.
pub fn run_weightfn(seed: u64, trials: usize) -> Vec<AblationPoint> {
    run_weightfn_on(&Engine::new(), seed, trials).0
}

/// [`run_weightfn`] on an explicit [`Engine`].
pub fn run_weightfn_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
) -> (Vec<AblationPoint>, MetricsReport) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = rig::ideal_antenna(antenna_pos);
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let traces = linear_traces(&mut scenario, trials);
    let variants: Vec<(String, Weighting)> = vec![
        (
            "gaussian residual (paper)".to_string(),
            Weighting::Weighted(IrlsConfig::default()),
        ),
        (
            "huber delta=0.01".to_string(),
            Weighting::Weighted(IrlsConfig {
                weight_fn: WeightFunction::Huber { delta: 0.01 },
                ..IrlsConfig::default()
            }),
        ),
        ("uniform (plain LS)".to_string(), Weighting::LeastSquares),
    ];
    let configs = variants
        .into_iter()
        .map(|(label, weighting)| {
            (
                label,
                LocalizerConfig {
                    weighting,
                    ..rig::paper_localizer_config(antenna_pos)
                },
            )
        })
        .collect();
    sweep_2d_on(engine, &traces, configs, antenna_pos)
}

/// Reference-sample-choice sensitivity (first / quarter / middle / last).
pub fn run_reference(seed: u64, trials: usize) -> Vec<AblationPoint> {
    run_reference_on(&Engine::new(), seed, trials).0
}

/// [`run_reference`] on an explicit [`Engine`].
pub fn run_reference_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
) -> (Vec<AblationPoint>, MetricsReport) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = rig::ideal_antenna(antenna_pos);
    let mut scenario = rig::paper_scenario(antenna, seed);
    let traces = linear_traces(&mut scenario, trials);
    let n = traces[0].len();
    let configs = [
        ("first sample", 0usize),
        ("quarter", n / 4),
        ("middle (default)", n / 2),
        ("last sample", n - 1),
    ]
    .into_iter()
    .map(|(label, idx)| {
        (
            label.to_string(),
            LocalizerConfig {
                reference_index: Some(idx),
                ..rig::paper_localizer_config(antenna_pos)
            },
        )
    })
    .collect();
    sweep_2d_on(engine, &traces, configs, antenna_pos)
}

/// Sensitivity to trajectory-knowledge error: the paper assumes perfectly
/// known tag positions; real encoders have bias, scale error, and jitter.
pub fn run_position_error(seed: u64, trials: usize) -> Vec<AblationPoint> {
    let target = Point3::new(0.05, 0.8, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, seed);
    let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
    let mut traces = Vec::new();
    for _ in 0..trials {
        traces.push(
            scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan"),
        );
    }
    let models: Vec<(String, PositionErrorModel)> = vec![
        ("exact positions".to_string(), PositionErrorModel::exact()),
        (
            "industrial encoder".to_string(),
            PositionErrorModel::industrial_encoder(),
        ),
        (
            "5 mm jitter".to_string(),
            PositionErrorModel {
                jitter_std: 0.005,
                ..PositionErrorModel::exact()
            },
        ),
        (
            "1% belt slip".to_string(),
            PositionErrorModel {
                scale_error: 0.01,
                ..PositionErrorModel::exact()
            },
        ),
        (
            "1 cm datum bias".to_string(),
            PositionErrorModel {
                bias: lion_geom::Vec3::new(0.01, 0.0, 0.0),
                ..PositionErrorModel::exact()
            },
        ),
    ];
    models
        .into_iter()
        .map(|(label, model)| {
            let mut errs = Vec::new();
            for (i, trace) in traces.iter().enumerate() {
                let m = model.apply(trace, seed ^ (i as u64)).to_measurements();
                let cfg = rig::paper_localizer_config(target);
                if let Ok(est) = Localizer2d::new(cfg).locate(&m) {
                    errs.push(est.distance_error(target));
                }
            }
            AblationPoint {
                label,
                mean_error: rig::mean_std(&errs).0,
                mean_equations: 0.0,
            }
        })
        .collect()
}

/// Coarse-to-fine hologram refinement vs the naive full grid: does the
/// optimized baseline close the gap to LION? (No — but the comparison is
/// fairer with it in the picture.)
pub fn run_refine(seed: u64, trials: usize) -> Vec<AblationPoint> {
    let target = Point3::new(0.1, 0.8, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, seed);
    let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
    let volume = SearchVolume::square_2d(target, 0.1);
    let mut full_err = Vec::new();
    let mut full_cells = Vec::new();
    let mut ref_err = Vec::new();
    let mut ref_cells = Vec::new();
    let mut lion_err = Vec::new();
    for _ in 0..trials {
        let m: Vec<(Point3, f64)> = scenario
            .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
            .expect("valid scan")
            .to_measurements();
        let dec: Vec<(Point3, f64)> = m.iter().step_by(20).copied().collect();
        let full_cfg = HologramConfig {
            grid_size: 0.001,
            wavelength: rig::LAMBDA,
            augmented: true,
        };
        if let Ok(est) = hologram::locate(&dec, volume, &full_cfg) {
            full_err.push(est.position.distance(target));
            full_cells.push(est.cells_evaluated as f64);
        }
        let refine_cfg = RefineConfig {
            hologram: HologramConfig {
                wavelength: rig::LAMBDA,
                augmented: true,
                ..HologramConfig::default()
            },
            ..RefineConfig::default()
        };
        if let Ok(est) = locate_refined(&dec, volume, &refine_cfg) {
            ref_err.push(est.position.distance(target));
            ref_cells.push(est.cells_evaluated as f64);
        }
        let cfg = rig::paper_localizer_config(target);
        if let Ok(est) = Localizer2d::new(cfg).locate(&m) {
            lion_err.push(est.distance_error(target));
        }
    }
    vec![
        AblationPoint {
            label: "DAH full grid 1 mm".to_string(),
            mean_error: rig::mean_std(&full_err).0,
            mean_equations: rig::mean_std(&full_cells).0,
        },
        AblationPoint {
            label: "DAH coarse-to-fine".to_string(),
            mean_error: rig::mean_std(&ref_err).0,
            mean_equations: rig::mean_std(&ref_cells).0,
        },
        AblationPoint {
            label: "LION (for scale)".to_string(),
            mean_error: rig::mean_std(&lion_err).0,
            mean_equations: 0.0,
        },
    ]
}

fn render(id: &str, title: &str, points: &[AblationPoint], with_eqs: bool) -> ExperimentReport {
    let mut r = ExperimentReport::new(id, title);
    for p in points {
        if with_eqs {
            r.push(format!(
                "{:<32} | mean error {} | {:.0} equations",
                p.label,
                rig::cm(p.mean_error),
                p.mean_equations
            ));
        } else {
            r.push(format!(
                "{:<32} | mean error {}",
                p.label,
                rig::cm(p.mean_error)
            ));
        }
    }
    r
}

/// Renders the pair-strategy ablation.
pub fn report_pairs(seed: u64) -> ExperimentReport {
    let (points, metrics) = run_pairs_on(&Engine::new(), seed, 10);
    render(
        "ablation_pairs",
        "pair-selection strategies on the 3D three-line scan",
        &points,
        true,
    )
    .with_metrics(metrics)
}

/// Renders the adaptive on/off ablation.
pub fn report_adaptive(seed: u64) -> ExperimentReport {
    let (points, metrics) = run_adaptive_on(&Engine::new(), seed, 10);
    render(
        "ablation_adaptive",
        "adaptive parameter selection on/off across environments",
        &points,
        false,
    )
    .with_metrics(metrics)
}

/// Renders the smoothing-window ablation.
pub fn report_smoothing(seed: u64) -> ExperimentReport {
    let (points, metrics) = run_smoothing_on(&Engine::new(), seed, 20);
    render(
        "ablation_smooth",
        "moving-average window sweep",
        &points,
        false,
    )
    .with_metrics(metrics)
}

/// Renders the weight-function ablation.
pub fn report_weightfn(seed: u64) -> ExperimentReport {
    let (points, metrics) = run_weightfn_on(&Engine::new(), seed, 20);
    render(
        "ablation_weightfn",
        "IRLS weight functions under multipath",
        &points,
        false,
    )
    .with_metrics(metrics)
}

/// Renders the reference-choice ablation.
pub fn report_reference(seed: u64) -> ExperimentReport {
    let (points, metrics) = run_reference_on(&Engine::new(), seed, 20);
    render(
        "ablation_reference",
        "reference-sample choice sensitivity",
        &points,
        false,
    )
    .with_metrics(metrics)
}

/// Renders the trajectory-error ablation.
pub fn report_position_error(seed: u64) -> ExperimentReport {
    render(
        "ablation_position_error",
        "sensitivity to trajectory-knowledge error (encoder bias/slip/jitter)",
        &run_position_error(seed, 15),
        false,
    )
}

/// Renders the hologram-refinement ablation (the "cells" column holds
/// evaluated grid cells).
pub fn report_refine(seed: u64) -> ExperimentReport {
    render(
        "ablation_refine",
        "coarse-to-fine hologram vs full grid vs LION",
        &run_refine(seed, 5),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_error_degrades_gracefully() {
        let points = run_position_error(201, 4);
        assert_eq!(points.len(), 5);
        let exact = points[0].mean_error;
        // Encoder-grade error barely moves the needle.
        assert!(points[1].mean_error < exact + 0.01, "{:?}", points[1]);
        // A 1 cm datum bias translates the estimate by about 1 cm.
        assert!(
            (points[4].mean_error - 0.01).abs() < 0.006,
            "bias case: {}",
            points[4].mean_error
        );
        // Jitter does NOT simply average out: position noise enters the
        // design matrix (errors-in-variables), diluting the estimate by a
        // few multiples of the jitter. Trajectory knowledge is an accuracy
        // ceiling — consistent with the paper's premise that the scan
        // geometry must be tightly controlled.
        assert!(
            points[2].mean_error > points[0].mean_error,
            "jitter should hurt: {:?}",
            points[2]
        );
        assert!(
            points[2].mean_error < 0.06,
            "jitter case: {}",
            points[2].mean_error
        );
    }

    #[test]
    fn refinement_matches_full_grid_cheaply() {
        let points = run_refine(211, 2);
        assert_eq!(points.len(), 3);
        let full = &points[0];
        let refined = &points[1];
        let lion = &points[2];
        assert!(refined.mean_error < full.mean_error + 0.005);
        assert!(refined.mean_equations * 5.0 < full.mean_equations);
        assert!(lion.mean_error < 0.02);
    }

    #[test]
    fn pair_strategies_all_work() {
        let points = run_pairs(131, 3);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.mean_error < 0.05, "{}: error {}", p.label, p.mean_error);
            assert!(p.mean_equations > 3.0);
        }
    }

    #[test]
    fn smoothing_has_a_sweet_spot() {
        let points = run_smoothing(141, 8);
        assert_eq!(points.len(), 6);
        // Some smoothing should beat none under noise; the extreme window
        // should not be the best.
        let none = points[0].mean_error;
        let moderate = points[2].mean_error;
        assert!(
            moderate <= none * 1.2,
            "window 9 ({moderate}) should not be much worse than none ({none})"
        );
        assert!(points.iter().all(|p| p.mean_error < 0.05));
    }

    #[test]
    fn weightfn_variants_all_reasonable() {
        let points = run_weightfn(151, 6);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.mean_error < 0.06, "{}: {}", p.label, p.mean_error);
        }
        // The paper's Gaussian weight stays in the same ballpark as plain
        // LS here; its decisive win shows on dirtier data (fig15).
        assert!(points[0].mean_error <= points[2].mean_error * 1.5 + 0.001);
    }

    #[test]
    fn reference_choice_is_not_critical() {
        let points = run_reference(161, 6);
        assert_eq!(points.len(), 4);
        let best = points
            .iter()
            .map(|p| p.mean_error)
            .fold(f64::INFINITY, f64::min);
        let worst = points.iter().map(|p| p.mean_error).fold(0.0, f64::max);
        // All choices land within the same order of magnitude.
        assert!(worst < 10.0 * best.max(1e-4), "best {best} worst {worst}");
    }

    #[test]
    fn adaptive_helps_or_matches_under_multipath() {
        let points = run_adaptive(171, 4);
        assert_eq!(points.len(), 4);
        // Indoor: adaptive (idx 3) stays in the same ballpark as
        // single-shot (idx 2). Its payoff shows at depth (fig14b); on a
        // short clean track, restricting the range costs a little data.
        assert!(points[3].mean_error <= points[2].mean_error * 3.0 + 0.002);
        assert!(points.iter().all(|p| p.mean_error < 0.02));
    }
}
