//! Fig. 14 — impact of height and depth.
//!
//! (a) 3D localization of the antenna at six positions `P1..P6`
//!     (y ∈ {0.6, 0.8, 1.0} m, z ∈ {0, 0.2} m) from two scan lines in the
//!     xy-plane: error grows with depth, worst along y and z (the phase
//!     becomes insensitive to height at depth).
//! (b) 2D tag tracking while the depth sweeps 0.6–1.6 m: LION with
//!     adaptive parameter selection stays flat, while DAH — which ingests
//!     every (increasingly multipath-corrupted) sample — degrades sharply
//!     beyond ~1.4 m.

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_core::{AdaptiveConfig, Localizer2d, Localizer3d};
use lion_geom::{LineSegment, Path, Point3};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Per-position 3D result.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionError {
    /// Antenna position label.
    pub position: Point3,
    /// Mean |error| along (x, y, z) in meters.
    pub axis_errors: (f64, f64, f64),
    /// Mean distance error (meters).
    pub total: f64,
}

/// Runs Fig. 14(a): locate the antenna at the six paper positions.
pub fn run_3d(seed: u64, trials: usize) -> Vec<PositionError> {
    let mut out = Vec::new();
    let mut idx = 0u64;
    for &y in &[0.6, 0.8, 1.0] {
        for &z in &[0.0, 0.2] {
            idx += 1;
            let target = Point3::new(0.0, y, z);
            // Ideal antenna: this experiment isolates geometry effects.
            let antenna = rig::ideal_antenna(target);
            let mut scenario = rig::indoor_scenario(antenna, seed ^ (idx << 24));
            // Two scan lines in the xy-plane: y = 0 and y = −0.2.
            let l1 = LineSegment::along_x(-0.4, 0.4, 0.0, 0.0).expect("valid");
            let l2 = LineSegment::along_x(0.4, -0.4, -0.2, 0.0).expect("valid");
            let mut path = Path::new();
            path.push_line(l1).connect_to(l2.start()).push_line(l2);

            let mut ex = Vec::new();
            let mut ey = Vec::new();
            let mut ez = Vec::new();
            let mut et = Vec::new();
            for _ in 0..trials {
                let m = scenario
                    .scan(&path, rig::TAG_SPEED, rig::READ_RATE)
                    .expect("valid scan")
                    .to_measurements();
                let cfg = rig::paper_localizer_config(target);
                if let Ok(est) = Localizer3d::new(cfg).locate(&m) {
                    ex.push((est.position.x - target.x).abs());
                    ey.push((est.position.y - target.y).abs());
                    ez.push((est.position.z - target.z).abs());
                    et.push(est.distance_error(target));
                }
            }
            out.push(PositionError {
                position: target,
                axis_errors: (
                    rig::mean_std(&ex).0,
                    rig::mean_std(&ey).0,
                    rig::mean_std(&ez).0,
                ),
                total: rig::mean_std(&et).0,
            });
        }
    }
    out
}

/// Per-depth 2D result.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthError {
    /// Tag–antenna depth (meters).
    pub depth: f64,
    /// LION mean distance error (meters).
    pub lion: f64,
    /// DAH mean distance error (meters).
    pub dah: f64,
}

/// Runs Fig. 14(b): 2D accuracy as the depth sweeps 0.6–1.6 m.
pub fn run_2d(seed: u64, trials: usize, grid: f64) -> Vec<DepthError> {
    let mut out = Vec::new();
    for (d_idx, depth) in (0..6).map(|i| (i, 0.6 + 0.2 * i as f64)) {
        // Conveyor setup: antenna above the track at the given depth,
        // locating the tag's start position (relative-frame trick as in
        // Fig. 13).
        let antenna_pos = Point3::new(0.0, depth, 0.0);
        let antenna = rig::ideal_antenna(antenna_pos);
        let mut scenario = rig::indoor_scenario(antenna, seed ^ ((d_idx as u64) << 16));
        let mut lion_errors = Vec::new();
        let mut dah_errors = Vec::new();
        for t in 0..trials {
            let p0 = Point3::new(-0.5 + 0.05 * (t % 5) as f64, 0.0, 0.0);
            let track = LineSegment::new(p0, Point3::new(p0.x + 0.8, 0.0, 0.0)).expect("valid");
            let trace = scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan");
            let rel: Vec<(Point3, f64)> = trace
                .samples()
                .iter()
                .map(|s| (Point3::new(s.position.x - p0.x, 0.0, 0.0), s.phase))
                .collect();
            let hint = Point3::new(0.4, depth, 0.0);
            // LION with the adaptive parameter sweep (the paper's default).
            let cfg = rig::paper_localizer_config(hint);
            let adaptive = AdaptiveConfig::default();
            if let Ok(outcome) = Localizer2d::new(cfg).locate_adaptive(&rel, &adaptive) {
                let est = outcome.estimate.position;
                let p0_est = Point3::new(antenna_pos.x - est.x, antenna_pos.y - est.y, 0.0);
                lion_errors.push(p0_est.to_xy().distance(p0.to_xy()));
            }
            // DAH consumes every sample, no adaptive filtering.
            let dec: Vec<(Point3, f64)> = rel.iter().step_by(20).copied().collect();
            let volume = SearchVolume::square_2d(Point3::new(0.4, depth, 0.0), 0.12);
            let hcfg = HologramConfig {
                grid_size: grid,
                wavelength: rig::LAMBDA,
                augmented: true,
            };
            if let Ok(est) = hologram::locate(&dec, volume, &hcfg) {
                let p0_est = Point3::new(
                    antenna_pos.x - est.position.x,
                    antenna_pos.y - est.position.y,
                    0.0,
                );
                dah_errors.push(p0_est.to_xy().distance(p0.to_xy()));
            }
        }
        out.push(DepthError {
            depth,
            lion: rig::mean_std(&lion_errors).0,
            dah: rig::mean_std(&dah_errors).0,
        });
    }
    out
}

/// Renders the Fig. 14(a) report.
pub fn report_3d(seed: u64) -> ExperimentReport {
    let results = run_3d(seed, 10);
    let mut r = ExperimentReport::new(
        "fig14a",
        "3D localization error vs antenna position P1..P6 (Sec. V-C1)",
    );
    r.push("position (x, y, z) | err_x | err_y | err_z | total".to_string());
    for (i, p) in results.iter().enumerate() {
        r.push(format!(
            "P{} {} | {} | {} | {} | {}",
            i + 1,
            p.position,
            rig::cm(p.axis_errors.0),
            rig::cm(p.axis_errors.1),
            rig::cm(p.axis_errors.2),
            rig::cm(p.total)
        ));
    }
    r.push("paper: <1.5 cm below 0.8 m depth; grows with depth, worst along y/z".to_string());
    r
}

/// Renders the Fig. 14(b) report.
pub fn report_2d(seed: u64) -> ExperimentReport {
    let results = run_2d(seed, 10, 0.002);
    let mut r = ExperimentReport::new(
        "fig14b",
        "2D accuracy vs depth 0.6-1.6 m, LION (adaptive) vs DAH (Sec. V-C2)",
    );
    r.push("depth | LION | DAH".to_string());
    for d in &results {
        r.push(format!(
            "{:.1} m | {} | {}",
            d.depth,
            rig::cm(d.lion),
            rig::cm(d.dah)
        ));
    }
    r.push(
        "paper: LION ~0.45 cm throughout; DAH fine to 1.2 m then degrades past 2.5 cm".to_string(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_depth_in_3d() {
        let results = run_3d(31, 3);
        assert_eq!(results.len(), 6);
        // Average error at depth 1.0 exceeds that at depth 0.6.
        let near: f64 = results[0].total + results[1].total;
        let far: f64 = results[4].total + results[5].total;
        assert!(far > near, "far {far} should exceed near {near}");
        // Shallow positions are decently accurate.
        assert!(results[0].total < 0.05, "P1 error {}", results[0].total);
    }

    #[test]
    fn lion_stays_flat_longer_than_dah_in_2d() {
        let results = run_2d(7, 4, 0.004);
        assert_eq!(results.len(), 6);
        let lion_far = results[5].lion;
        let dah_far = results[5].dah;
        // At 1.6 m LION (adaptive) should not be worse than DAH.
        assert!(
            lion_far <= dah_far * 1.5,
            "LION {lion_far} vs DAH {dah_far} at 1.6 m"
        );
        // And LION remains reasonable at close depth.
        assert!(results[0].lion < 0.05, "LION at 0.6 m: {}", results[0].lion);
    }
}
