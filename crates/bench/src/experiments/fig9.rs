//! Fig. 9 — lower-dimension 2D localization from a linear trajectory.
//!
//! Paper setup (Sec. III-C1): tag moves on x ∈ [−0.3, 0.3], antenna at
//! (0.2, 1); `N(0, 0.1)` noise; 100 trials. LION's `d_r`-based recovery of
//! the perpendicular coordinate performs comparably to the hologram.

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_core::Localizer2d;
use lion_geom::{LineSegment, Point3};
use lion_sim::Antenna;

use crate::experiments::ExperimentReport;
use crate::rig;

/// Error statistics over the trials.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// LION (mean, p50, p90) distance error in meters.
    pub lion: (f64, f64, f64),
    /// Hologram (mean, p50, p90) distance error in meters.
    pub dah: (f64, f64, f64),
    /// Fraction of LION trials that took the lower-dimension path (should
    /// be 1.0).
    pub lower_dimension_fraction: f64,
}

fn summarize(errors: &[f64]) -> (f64, f64, f64) {
    (
        lion_linalg::stats::mean(errors).unwrap_or(f64::NAN),
        lion_linalg::stats::median(errors).unwrap_or(f64::NAN),
        lion_linalg::stats::percentile(errors, 90.0).unwrap_or(f64::NAN),
    )
}

/// Runs the comparison with `trials` repetitions.
pub fn run(seed: u64, trials: usize, grid: f64) -> Fig9Result {
    let target = Point3::new(0.2, 1.0, 0.0);
    let antenna = Antenna::builder(target).build();
    let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).expect("valid track");
    let mut scenario = rig::paper_scenario(antenna, seed);
    let mut lion_errors = Vec::new();
    let mut dah_errors = Vec::new();
    let mut lowdim = 0usize;
    for _ in 0..trials {
        let m = scenario
            .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
            .expect("valid scan")
            .to_measurements();
        let cfg = rig::paper_localizer_config(Point3::new(0.0, 0.8, 0.0));
        if let Ok(est) = Localizer2d::new(cfg).locate(&m) {
            lion_errors.push(est.distance_error(target));
            if est.lower_dimension {
                lowdim += 1;
            }
        }
        let dec: Vec<(Point3, f64)> = m.iter().step_by(10).copied().collect();
        let volume = SearchVolume::square_2d(target, 0.06);
        let hcfg = HologramConfig {
            grid_size: grid,
            wavelength: rig::LAMBDA,
            augmented: true,
        };
        if let Ok(est) = hologram::locate(&dec, volume, &hcfg) {
            dah_errors.push(est.position.distance(target));
        }
    }
    Fig9Result {
        lion: summarize(&lion_errors),
        dah: summarize(&dah_errors),
        lower_dimension_fraction: lowdim as f64 / trials.max(1) as f64,
    }
}

/// Renders the paper-style report.
pub fn report(seed: u64) -> ExperimentReport {
    let res = run(seed, 100, 0.002);
    let mut r = ExperimentReport::new(
        "fig9",
        "2D localization from a linear trajectory (lower-dimension path, Sec. III-C1)",
    );
    r.push(format!(
        "LION: mean {}, median {}, p90 {}",
        rig::cm(res.lion.0),
        rig::cm(res.lion.1),
        rig::cm(res.lion.2)
    ));
    r.push(format!(
        "DAH:  mean {}, median {}, p90 {}",
        rig::cm(res.dah.0),
        rig::cm(res.dah.1),
        rig::cm(res.dah.2)
    ));
    r.push(format!(
        "LION lower-dimension path taken in {:.0}% of trials",
        res.lower_dimension_fraction * 100.0
    ));
    r.push("paper: LION works well with the linear trajectory, comparable to hologram".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_trajectory_2d_is_accurate() {
        let res = run(17, 6, 0.004);
        assert_eq!(res.lower_dimension_fraction, 1.0);
        assert!(res.lion.0 < 0.05, "LION mean error {}", res.lion.0);
        assert!(res.dah.0 < 0.06, "DAH mean error {}", res.dah.0);
        // LION should be at least comparable to the (test-handicapped:
        // coarse grid, decimated input) hologram.
        assert!(res.lion.0 < 2.0 * res.dah.0.max(0.002));
    }
}
