//! Fig. 15 — weighted vs ordinary least squares.
//!
//! Paper setup (Sec. V-D): tag on the x-axis track at 0.8 m depth, 30
//! random start positions, locate each with WLS and plain LS. The paper
//! reports 0.43 cm (WLS) vs 0.92 cm (LS): the Gaussian-of-residual weight
//! suppresses multipath-corrupted equations.

use lion_engine::{Engine, Job, MetricsReport};
use lion_geom::{LineSegment, Point3};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Mean distance errors (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig15Result {
    /// Weighted least squares (the paper's WLS).
    pub wls: f64,
    /// Ordinary least squares.
    pub ls: f64,
}

/// Runs the WLS-vs-LS comparison over `trials` random tag positions.
pub fn run(seed: u64, trials: usize) -> Fig15Result {
    run_on(&Engine::new(), seed, trials).0
}

/// [`run`] on an explicit [`Engine`]: each trial contributes one WLS and
/// one LS [`Job`] on the same serially-simulated trace.
pub fn run_on(engine: &Engine, seed: u64, trials: usize) -> (Fig15Result, MetricsReport) {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = rig::ideal_antenna(antenna_pos);
    let mut scenario = rig::indoor_scenario(antenna, seed);
    let hint = Point3::new(0.7, 0.8, 0.0);
    let mut jobs = Vec::with_capacity(2 * trials);
    let mut starts = Vec::with_capacity(trials);
    for t in 0..trials {
        // A long pass (the paper's track is 2.5 m): the ends are far
        // off-beam and noise-saturated while the middle is clean — the
        // heteroscedastic structure the Gaussian residual weight exploits.
        // Start positions keep the antenna over the pass interior.
        let p0 = Point3::new(-0.95 + 0.02 * (t % 25) as f64, 0.0, 0.0);
        let track = LineSegment::new(p0, Point3::new(p0.x + 1.4, 0.0, 0.0)).expect("valid");
        let trace = scenario
            .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
            .expect("valid scan");
        let rel: Vec<(Point3, f64)> = trace
            .samples()
            .iter()
            .map(|s| (Point3::new(s.position.x - p0.x, 0.0, 0.0), s.phase))
            .collect();
        starts.push(p0);
        jobs.push(Job::locate_2d(
            rel.clone(),
            rig::paper_localizer_config(hint),
        ));
        jobs.push(Job::locate_2d(rel, rig::ls_localizer_config(hint)));
    }
    let outcome = engine.run(&jobs);
    let mut wls_errors = Vec::new();
    let mut ls_errors = Vec::new();
    for (t, chunk) in outcome.results.chunks(2).enumerate() {
        let p0 = starts[t];
        for (result, errors) in chunk.iter().zip([&mut wls_errors, &mut ls_errors]) {
            if let Some(est) = result.as_ref().ok().and_then(|o| o.estimate()) {
                let p0_est = Point3::new(
                    antenna_pos.x - est.position.x,
                    antenna_pos.y - est.position.y,
                    0.0,
                );
                errors.push(p0_est.to_xy().distance(p0.to_xy()));
            }
        }
    }
    (
        Fig15Result {
            wls: rig::mean_std(&wls_errors).0,
            ls: rig::mean_std(&ls_errors).0,
        },
        outcome.report,
    )
}

/// Renders the paper-style report (30 positions like the paper).
pub fn report(seed: u64) -> ExperimentReport {
    let (res, metrics) = run_on(&Engine::new(), seed, 30);
    let mut r = ExperimentReport::new("fig15", "weighted vs ordinary least squares (Sec. V-D)");
    r.push(format!(
        "WLS mean error {} | LS mean error {} | ratio {:.2}x",
        rig::cm(res.wls),
        rig::cm(res.ls),
        res.ls / res.wls.max(1e-9)
    ));
    r.push("paper: WLS 0.43 cm vs LS 0.92 cm (~2.1x)".to_string());
    r.with_metrics(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wls_beats_ls_under_multipath() {
        let res = run(51, 30);
        assert!(
            res.wls <= res.ls * 1.05,
            "WLS {} should not exceed LS {}",
            res.wls,
            res.ls
        );
        assert!(res.wls < 0.07, "WLS error {}", res.wls);
    }
}
