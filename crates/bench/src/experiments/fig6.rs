//! Fig. 6 — LION vs the hologram for a circular scan, antenna at three
//! directions.
//!
//! Paper setup (Sec. III-A): tag circles the origin at radius 0.3 m; one
//! antenna sits 1 m away at 0°, 45°, or 90°; phases carry `N(0, 0.1)`
//! noise; 100 trials per direction. LION matches the hologram's accuracy,
//! and the per-axis errors rotate with the antenna direction (errors
//! distribute along the trajectory-center→antenna line).

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_core::PairStrategy;
use lion_engine::{Engine, Job, MetricsReport};
use lion_geom::{CircularArc, Point3};
use lion_sim::Antenna;

use crate::experiments::ExperimentReport;
use crate::rig;

/// Aggregated errors for one antenna direction.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionResult {
    /// Antenna direction label (degrees from the x-axis).
    pub direction_deg: f64,
    /// LION mean distance error (m).
    pub lion_mean: f64,
    /// LION mean |error| along x / along y (m).
    pub lion_axis: (f64, f64),
    /// Hologram mean distance error (m).
    pub dah_mean: f64,
}

/// Runs the three-direction comparison with `trials` repetitions each.
pub fn run(seed: u64, trials: usize, grid: f64) -> Vec<DirectionResult> {
    run_on(&Engine::new(), seed, trials, grid).0
}

/// [`run`] on an explicit [`Engine`]: traces are simulated serially (the
/// RNG stream is independent of the worker count), then every LION solve
/// is fanned out as one [`Job`]; the hologram baseline stays inline.
pub fn run_on(
    engine: &Engine,
    seed: u64,
    trials: usize,
    grid: f64,
) -> (Vec<DirectionResult>, MetricsReport) {
    let directions = [0.0_f64, 45.0, 90.0];
    let mut jobs = Vec::new();
    let mut targets = Vec::new();
    let mut dah_per_direction = Vec::new();
    for (d_idx, &deg) in directions.iter().enumerate() {
        let angle = deg.to_radians();
        let target = Point3::new(angle.cos(), angle.sin(), 0.0);
        // The antenna is ideal here: Fig. 6 evaluates the *localization
        // model*, not calibration, so the planted center is the target.
        let antenna = Antenna::builder(target)
            .boresight(lion_geom::Vec3::new(-angle.cos(), -angle.sin(), 0.0))
            .build();
        let circle = CircularArc::turntable(Point3::ORIGIN, 0.3).expect("radius > 0");
        targets.push(target);

        let mut dah_errors = Vec::new();
        let mut scenario = rig::paper_scenario(antenna, seed ^ ((d_idx as u64) << 32));
        for _ in 0..trials {
            let trace = scenario
                .scan(&circle, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan");
            let m = trace.to_measurements();
            // Hologram on a decimated trace (cost control; accuracy is set
            // by the grid, not the sample count).
            let dec: Vec<(Point3, f64)> = m.iter().step_by(10).copied().collect();
            let cfg = lion_core::LocalizerConfig {
                pair_strategy: PairStrategy::Interval { interval: 0.2 },
                ..rig::paper_localizer_config(target)
            };
            jobs.push(Job::locate_2d(m, cfg));
            let volume = SearchVolume::square_2d(target, 0.05);
            let cfg = HologramConfig {
                grid_size: grid,
                wavelength: rig::LAMBDA,
                augmented: true,
            };
            if let Ok(est) = hologram::locate(&dec, volume, &cfg) {
                dah_errors.push(est.position.distance(target));
            }
        }
        dah_per_direction.push(dah_errors);
    }

    let outcome = engine.run(&jobs);
    let mut out = Vec::new();
    for (d_idx, &deg) in directions.iter().enumerate() {
        let target = targets[d_idx];
        let mut lion_errors = Vec::new();
        let mut ex = Vec::new();
        let mut ey = Vec::new();
        for result in &outcome.results[d_idx * trials..(d_idx + 1) * trials] {
            if let Some(est) = result.as_ref().ok().and_then(|o| o.estimate()) {
                lion_errors.push(est.distance_error(target));
                ex.push((est.position.x - target.x).abs());
                ey.push((est.position.y - target.y).abs());
            }
        }
        out.push(DirectionResult {
            direction_deg: deg,
            lion_mean: rig::mean_std(&lion_errors).0,
            lion_axis: (rig::mean_std(&ex).0, rig::mean_std(&ey).0),
            dah_mean: rig::mean_std(&dah_per_direction[d_idx]).0,
        });
    }
    (out, outcome.report)
}

/// Renders the paper-style report (100 trials, 2 mm hologram grid).
pub fn report(seed: u64) -> ExperimentReport {
    let (results, metrics) = run_on(&Engine::new(), seed, 100, 0.002);
    let mut r = ExperimentReport::new(
        "fig6",
        "LION vs hologram, circular scan, antenna at 3 directions (Sec. III-A)",
    );
    r.push("direction | LION err | err_x | err_y | DAH err".to_string());
    for d in &results {
        r.push(format!(
            "{:>6.0}°   | {} | {} | {} | {}",
            d.direction_deg,
            rig::cm(d.lion_mean),
            rig::cm(d.lion_axis.0),
            rig::cm(d.lion_axis.1),
            rig::cm(d.dah_mean)
        ));
    }
    r.push(
        "paper: LION ≈ hologram overall; axis errors rotate with the antenna direction".to_string(),
    );
    r.with_metrics(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lion_matches_hologram_accuracy() {
        let results = run(11, 5, 0.004);
        for d in &results {
            assert!(
                d.lion_mean < 0.03,
                "direction {}: LION err {}",
                d.direction_deg,
                d.lion_mean
            );
            // Comparable: within 3x of each other (both are sub-cm-ish).
            assert!(d.lion_mean < 3.0 * d.dah_mean.max(0.003));
        }
    }

    #[test]
    fn axis_errors_rotate_with_direction() {
        let results = run(23, 12, 0.004);
        // Antenna along +x (0°): error concentrates along x ⇒ err_x > err_y.
        let d0 = &results[0];
        assert!(
            d0.lion_axis.0 > d0.lion_axis.1,
            "0°: err_x {} vs err_y {}",
            d0.lion_axis.0,
            d0.lion_axis.1
        );
        // Antenna along +y (90°): the opposite.
        let d90 = &results[2];
        assert!(
            d90.lion_axis.1 > d90.lion_axis.0,
            "90°: err_x {} vs err_y {}",
            d90.lion_axis.0,
            d90.lion_axis.1
        );
    }
}
