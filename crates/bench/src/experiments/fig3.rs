//! Fig. 3 — phase offsets differ per antenna–tag pair.
//!
//! Paper setup (Sec. II-B): four Laird antennas × four ImpinJ tags, tag
//! fixed 1 m in front of the antenna, 500 phase reads per pair. Each
//! hardware combination shows a distinct additive phase: evidence that
//! `θ_T` and `θ_R` in Eq. (1) are real and pair-specific.

use lion_geom::{Point3, Vec3};
use lion_linalg::stats;
use lion_sim::{Antenna, NoiseModel, ScenarioBuilder, Tag};

use crate::experiments::ExperimentReport;
use crate::rig;

/// Per-pair circular mean phase (radians), indexed `[antenna][tag]`.
pub type PhaseMatrix = Vec<Vec<f64>>;

/// The planted hardware offsets used by the experiment.
pub fn planted_offsets() -> (Vec<f64>, Vec<f64>) {
    // Distinct values of the same flavor the paper measured (Sec. V-F1
    // reports 3.98 / 2.74 / 4.07 rad for its three antennas).
    let antennas = vec![3.98, 2.74, 4.07, 1.15];
    let tags = vec![0.00, 0.85, 1.90, 2.60];
    (antennas, tags)
}

/// Collects the 4×4 mean-phase matrix (500 reads per pair).
pub fn run(seed: u64, reads: usize) -> PhaseMatrix {
    let (ant_offsets, tag_offsets) = planted_offsets();
    let antenna_pos = Point3::new(0.0, 1.0, 0.0);
    let tag_pos = Point3::new(0.0, 0.0, 0.0);
    let mut matrix = Vec::new();
    for (a, &theta_r) in ant_offsets.iter().enumerate() {
        let mut row = Vec::new();
        for (t, &theta_t) in tag_offsets.iter().enumerate() {
            let antenna = Antenna::builder(antenna_pos)
                .phase_offset(theta_r)
                .boresight(Vec3::new(0.0, -1.0, 0.0))
                .build();
            let mut scenario = ScenarioBuilder::new()
                .antenna(antenna)
                .tag(Tag::new(format!("tag-{t}")).with_phase_offset(theta_t))
                .noise(NoiseModel::paper_default())
                .seed(seed ^ ((a as u64) << 8) ^ t as u64)
                .build()
                .expect("components set");
            let trace = scenario
                .read_static(tag_pos, reads, rig::READ_RATE)
                .expect("valid read");
            let mean = stats::circular_mean(&trace.phases()).unwrap_or(f64::NAN);
            row.push(mean);
        }
        matrix.push(row);
    }
    matrix
}

/// Renders the paper-style report.
pub fn report(seed: u64) -> ExperimentReport {
    let matrix = run(seed, 500);
    let mut r = ExperimentReport::new(
        "fig3",
        "mean phase per antenna-tag pair, 500 reads each (Sec. II-B)",
    );
    r.push("mean phase (rad), rows = antennas A1..A4, cols = tags T1..T4".to_string());
    for (a, row) in matrix.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|p| format!("{p:5.2}")).collect();
        r.push(format!("A{}: [{}]", a + 1, cells.join(", ")));
    }
    // Quantify the spread the paper illustrates.
    let all: Vec<f64> = matrix.iter().flatten().copied().collect();
    let spread = stats::circular_std_dev(&all).unwrap_or(0.0);
    r.push(format!(
        "circular spread across pairs: {spread:.2} rad (same geometry, different hardware)"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_have_distinct_phases() {
        let matrix = run(3, 100);
        assert_eq!(matrix.len(), 4);
        assert!(matrix.iter().all(|r| r.len() == 4));
        // Distinct antennas at the same tag differ in phase.
        for (t, (&a1, &a2)) in matrix[0].iter().zip(&matrix[1]).enumerate() {
            let d = stats::circular_diff(a1, a2).abs();
            assert!(d > 0.3, "A1 vs A2 at T{t}: {d}");
        }
        // Distinct tags at the same antenna differ in phase.
        for (a, row) in matrix.iter().enumerate() {
            let d = stats::circular_diff(row[0], row[1]).abs();
            assert!(d > 0.3, "T1 vs T2 at A{a}: {d}");
        }
    }

    #[test]
    fn offsets_are_additive_in_differences() {
        // The difference between two antennas' mean phases equals the
        // difference of their planted offsets (tag/geometry cancels).
        let matrix = run(5, 200);
        let (ant, _) = planted_offsets();
        for (t, (&a3, &a2)) in matrix[2].iter().zip(&matrix[1]).enumerate() {
            let measured = stats::circular_diff(a3, a2);
            let planted = stats::circular_diff(ant[2], ant[1]);
            assert!(
                (measured - planted).abs() < 0.05,
                "T{t}: pair diff {measured} vs planted {planted}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = report(1);
        assert!(r.lines.len() >= 6);
    }
}
