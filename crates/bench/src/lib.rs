//! # lion-bench
//!
//! Experiment harness for the LION reproduction: one generator per figure
//! of the paper's evaluation (Sec. V), plus ablations of the design
//! choices. The `run_experiments` binary prints the same series the paper
//! plots; `EXPERIMENTS.md` in the repository root records paper-vs-measured
//! for each.
//!
//! ```bash
//! cargo run --release -p lion-bench --bin run_experiments -- all
//! cargo run --release -p lion-bench --bin run_experiments -- fig13a fig15
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benv;
pub mod experiments;
pub mod rig;

pub use experiments::{available_experiments, run_experiment, ExperimentReport};
