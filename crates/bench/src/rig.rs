//! Shared test-rig construction and statistics helpers for the
//! experiments.
//!
//! The defaults mirror the paper's Sec. V-A setup: antenna at 1 m height
//! facing the track, carrier 920.625 MHz, tag sliding at 10 cm/s with a
//! > 100 Hz read rate, default tag–antenna depth 0.8 m.

use lion_core::{LocalizerConfig, PairStrategy, Weighting};
use lion_geom::{Point3, Vec3};
use lion_sim::{Antenna, Environment, NoiseModel, Scenario, ScenarioBuilder, Tag};

/// Tag speed on the motorized slide (m/s) — 10 cm/s in the paper.
pub const TAG_SPEED: f64 = 0.1;
/// Reader sampling rate (Hz) — "over 100 Hz" in the paper.
pub const READ_RATE: f64 = 100.0;
/// The paper's carrier wavelength (meters).
pub const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// A typical hidden phase-center displacement: 2–3 cm diagonal, matching
/// the paper's Sec. II-A measurement.
pub const DEFAULT_DISPLACEMENT: Vec3 = Vec3 {
    x: 0.021,
    y: -0.012,
    z: 0.016,
};

/// Builds the paper's default antenna at `position` with the standard
/// hidden displacement and a hardware offset.
pub fn paper_antenna(position: Point3) -> Antenna {
    Antenna::builder(position)
        .phase_center_displacement(
            DEFAULT_DISPLACEMENT.x,
            DEFAULT_DISPLACEMENT.y,
            DEFAULT_DISPLACEMENT.z,
        )
        .phase_offset(2.74)
        .boresight(Vec3::new(0.0, -1.0, 0.0))
        .build()
}

/// An antenna with an ideal phase center (for experiments isolating other
/// effects).
pub fn ideal_antenna(position: Point3) -> Antenna {
    Antenna::builder(position)
        .boresight(Vec3::new(0.0, -1.0, 0.0))
        .build()
}

/// Builds a scenario with the paper's simulation noise `N(0, 0.1)` in free
/// space.
pub fn paper_scenario(antenna: Antenna, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51").with_phase_offset(1.3))
        .noise(NoiseModel::paper_default())
        .seed(seed)
        .build()
        .expect("antenna and tag are set")
}

/// Builds an indoor scenario: multipath reflectors plus SNR-dependent
/// noise — the regime of the paper's depth/range experiments.
pub fn indoor_scenario(antenna: Antenna, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51").with_phase_offset(1.3))
        .environment(Environment::indoor_lab())
        .noise(NoiseModel::indoor_default())
        .seed(seed)
        .build()
        .expect("antenna and tag are set")
}

/// A noiseless scenario for analytic checks.
pub fn noiseless_scenario(antenna: Antenna, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51").with_phase_offset(1.3))
        .noise(NoiseModel::noiseless())
        .seed(seed)
        .build()
        .expect("antenna and tag are set")
}

/// A localizer configuration matching the paper's defaults, with the
/// side-of-track hint pointing at the physical antenna position.
pub fn paper_localizer_config(physical_center: Point3) -> LocalizerConfig {
    LocalizerConfig {
        side_hint: Some(physical_center),
        ..LocalizerConfig::default()
    }
}

/// Same but with ordinary least squares (for the WLS-vs-LS comparison).
pub fn ls_localizer_config(physical_center: Point3) -> LocalizerConfig {
    LocalizerConfig {
        side_hint: Some(physical_center),
        weighting: Weighting::LeastSquares,
        ..LocalizerConfig::default()
    }
}

/// Interval pair strategy matching the paper's default scanning interval.
pub fn default_pairs() -> PairStrategy {
    PairStrategy::Interval { interval: 0.2 }
}

/// Mean and population standard deviation of a sample; `(0, 0)` when
/// empty.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    let mean = lion_linalg::stats::mean(values).unwrap_or(0.0);
    let std = lion_linalg::stats::std_dev(values).unwrap_or(0.0);
    (mean, std)
}

/// Formats meters as centimeters with two decimals.
pub fn cm(meters: f64) -> String {
    format!("{:.2} cm", meters * 100.0)
}

/// Formats a duration in seconds with adaptive precision.
pub fn secs(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Measures the wall-clock time of a closure, returning `(result,
/// seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_constants_match_paper() {
        assert!((LAMBDA - 0.3256).abs() < 1e-3);
        assert_eq!(TAG_SPEED, 0.1);
        let d = DEFAULT_DISPLACEMENT.norm();
        assert!((0.02..0.03).contains(&d), "displacement {d} not 2–3 cm");
    }

    #[test]
    fn scenario_builders_work() {
        let a = paper_antenna(Point3::new(0.0, 0.8, 0.0));
        assert!(a.phase_center().distance(a.physical_center()) > 0.02);
        let _ = paper_scenario(a.clone(), 1);
        let _ = indoor_scenario(a.clone(), 2);
        let _ = noiseless_scenario(a, 3);
        let i = ideal_antenna(Point3::ORIGIN);
        assert_eq!(i.phase_center(), i.physical_center());
    }

    #[test]
    fn formatting() {
        assert_eq!(cm(0.0123), "1.23 cm");
        assert!(secs(0.0000005).contains("µs"));
        assert!(secs(0.5).contains("ms"));
        assert!(secs(2.0).contains("s"));
    }

    #[test]
    fn stats_and_timing() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (v, t) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
