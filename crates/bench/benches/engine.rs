//! Criterion bench: batch throughput of the parallel engine on a
//! 100-job 2D localization batch, across worker counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lion_bench::rig;
use lion_core::LocalizerConfig;
use lion_engine::{Engine, Job};
use lion_geom::{LineSegment, Point3};

const BATCH: usize = 100;

fn batch_jobs() -> Vec<Job> {
    let target = Point3::new(0.1, 0.8, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, 17);
    let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
    (0..BATCH)
        .map(|_| {
            let m = scenario
                .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
                .expect("valid scan")
                .to_measurements();
            Job::locate_2d(
                m,
                LocalizerConfig {
                    side_hint: Some(target),
                    ..LocalizerConfig::default()
                },
            )
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let jobs = batch_jobs();
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let mut worker_counts = vec![1usize, 2, 4, available];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let mut group = c.benchmark_group("engine_batch_100");
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in worker_counts {
        let engine = Engine::builder().workers(workers).build().expect("valid");
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| engine.run(std::hint::black_box(&jobs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
