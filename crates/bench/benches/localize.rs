//! Criterion bench: end-to-end localization — LION vs DAH vs hyperbola on
//! the same trace (the paper's Fig. 13b comparison, as a microbenchmark).

use criterion::{criterion_group, criterion_main, Criterion};

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_baselines::hyperbola::{self, HyperbolaConfig};
use lion_baselines::parabola::{self, ParabolaConfig};
use lion_bench::rig;
use lion_core::{Localizer2d, LocalizerConfig};
use lion_geom::{LineSegment, Point3};

fn shared_trace() -> Vec<(Point3, f64)> {
    let target = Point3::new(0.1, 0.8, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, 3);
    let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
    scenario
        .scan(&track, rig::TAG_SPEED, rig::READ_RATE)
        .expect("valid scan")
        .to_measurements()
}

fn bench_localize(c: &mut Criterion) {
    let m = shared_trace();
    let hint = Point3::new(0.0, 0.5, 0.0);

    let mut group = c.benchmark_group("end_to_end_2d");
    let lion_cfg = LocalizerConfig {
        side_hint: Some(hint),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer2d::new(lion_cfg);
    group.bench_function("lion", |b| {
        b.iter(|| localizer.locate(std::hint::black_box(&m)).expect("locates"))
    });

    let dec: Vec<(Point3, f64)> = m.iter().step_by(10).copied().collect();
    let dah_cfg = HologramConfig {
        grid_size: 0.001,
        wavelength: rig::LAMBDA,
        augmented: true,
    };
    let volume = SearchVolume::square_2d(Point3::new(0.1, 0.8, 0.0), 0.1);
    group.sample_size(10);
    group.bench_function("dah_1mm_20cm", |b| {
        b.iter(|| hologram::locate(std::hint::black_box(&dec), volume, &dah_cfg).expect("locates"))
    });

    let hyp_cfg = HyperbolaConfig {
        initial_guess: Some(hint),
        ..HyperbolaConfig::default()
    };
    group.bench_function("hyperbola_lm", |b| {
        b.iter(|| hyperbola::locate(std::hint::black_box(&m), &hyp_cfg).expect("locates"))
    });

    let par_cfg = ParabolaConfig::default();
    group.bench_function("parabola_fit", |b| {
        b.iter(|| parabola::locate(std::hint::black_box(&m), &par_cfg).expect("locates"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_localize
}
criterion_main!(benches);
