//! Criterion bench: DAH hologram build cost vs grid size and dimension —
//! the quadratic/cubic wall that motivates LION (paper Figs. 4 and 13b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lion_baselines::hologram::{build_hologram, HologramConfig, SearchVolume};
use lion_bench::rig;
use lion_geom::Point3;

fn measurements(n: usize) -> Vec<(Point3, f64)> {
    let target = Point3::new(0.0, 0.8, 0.0);
    (0..n)
        .map(|i| {
            let a = i as f64 * std::f64::consts::TAU / n as f64;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            let phase = (4.0 * std::f64::consts::PI * target.distance(p) / rig::LAMBDA)
                .rem_euclid(std::f64::consts::TAU);
            (p, phase)
        })
        .collect()
}

fn bench_hologram(c: &mut Criterion) {
    let m = measurements(30);
    let target = Point3::new(0.0, 0.8, 0.0);

    // 2D: cost scales with 1/grid² (paper Fig. 4: ~0.8 s at 1 mm).
    let mut group = c.benchmark_group("hologram_2d_grid");
    for &grid_mm in &[4.0_f64, 2.0, 1.0] {
        let cfg = HologramConfig {
            grid_size: grid_mm / 1000.0,
            wavelength: rig::LAMBDA,
            augmented: true,
        };
        let volume = SearchVolume::square_2d(target, 0.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{grid_mm}mm")),
            &cfg,
            |b, cfg| {
                b.iter(|| build_hologram(std::hint::black_box(&m), volume, cfg).expect("builds"))
            },
        );
    }
    group.finish();

    // 3D: the (20 cm)³ volume of paper Fig. 13b at coarser grids (1 mm
    // takes tens of seconds — measured once in the harness, not here).
    let mut group = c.benchmark_group("hologram_3d_grid");
    group.sample_size(10);
    for &grid_mm in &[10.0_f64, 5.0] {
        let cfg = HologramConfig {
            grid_size: grid_mm / 1000.0,
            wavelength: rig::LAMBDA,
            augmented: true,
        };
        let volume = SearchVolume::cube_3d(target, 0.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{grid_mm}mm")),
            &cfg,
            |b, cfg| {
                b.iter(|| build_hologram(std::hint::black_box(&m), volume, cfg).expect("builds"))
            },
        );
    }
    group.finish();

    // Cost also scales linearly with the measurement count.
    let mut group = c.benchmark_group("hologram_2d_measurements");
    for &n in &[10usize, 30, 100] {
        let m = measurements(n);
        let cfg = HologramConfig {
            grid_size: 0.002,
            wavelength: rig::LAMBDA,
            augmented: false,
        };
        let volume = SearchVolume::square_2d(target, 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| build_hologram(std::hint::black_box(m), volume, &cfg).expect("builds"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hologram
}
criterion_main!(benches);
