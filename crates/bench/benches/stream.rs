//! Criterion bench: steady-state streaming throughput (reads/sec) of the
//! online pipeline across window sizes, plus the cost of a single
//! windowed re-solve.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lion_geom::Point3;
use lion_stream::{Cadence, StreamConfig, StreamLocalizer, StreamRead};
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;
const FEED: usize = 5_000;

/// A clean circular-scan feed (120 reads per revolution) long enough to
/// keep every window size saturated.
fn feed() -> Vec<StreamRead> {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    (0..FEED)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.001,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

fn stream_config(window: usize, cadence: Cadence) -> StreamConfig {
    StreamConfig::builder()
        .window_capacity(window)
        .min_window_len(24)
        .cadence(cadence)
        .build()
        .expect("valid bench config")
}

/// Reads/sec through the full pipeline (window maintenance + cadence
/// solves every 64 reads) for each window size.
fn bench_stream_throughput(c: &mut Criterion) {
    let reads = feed();
    let mut group = c.benchmark_group("stream_throughput");
    group.throughput(Throughput::Elements(FEED as u64));
    for window in [64usize, 128, 256, 512] {
        group.bench_function(format!("window_{window}"), |b| {
            b.iter(|| {
                let config = stream_config(window, Cadence::EveryReads(64));
                let mut stream = StreamLocalizer::new(config).expect("valid");
                let mut emitted = 0u64;
                for &read in std::hint::black_box(&reads) {
                    if let Ok(Some(_)) = stream.push(read) {
                        emitted += 1;
                    }
                }
                emitted
            })
        });
    }
    group.finish();
}

/// Window maintenance alone: cadence never fires, so this isolates the
/// ring-buffer insert + incremental unwrap cost per read.
fn bench_window_maintenance(c: &mut Criterion) {
    let reads = feed();
    let mut group = c.benchmark_group("stream_window_maintenance");
    group.throughput(Throughput::Elements(FEED as u64));
    for window in [256usize, 512] {
        group.bench_function(format!("window_{window}"), |b| {
            b.iter(|| {
                let config = stream_config(window, Cadence::EveryReads(usize::MAX));
                let mut stream = StreamLocalizer::new(config).expect("valid");
                for &read in std::hint::black_box(&reads) {
                    let _ = stream.push(read);
                }
                stream.reads_seen()
            })
        });
    }
    group.finish();
}

/// One forced re-solve on a full window of each size (the flush path) —
/// the marginal cost a tighter cadence pays per solve.
fn bench_single_solve(c: &mut Criterion) {
    let reads = feed();
    let mut group = c.benchmark_group("stream_single_solve");
    for window in [64usize, 128, 256, 512] {
        let config = stream_config(window, Cadence::EveryReads(usize::MAX));
        let mut stream = StreamLocalizer::new(config).expect("valid");
        for &read in reads.iter().take(window + 16) {
            let _ = stream.push(read);
        }
        group.bench_function(format!("window_{window}"), |b| {
            b.iter(|| stream.flush().expect("solves"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream_throughput, bench_window_maintenance, bench_single_solve
}
criterion_main!(benches);
