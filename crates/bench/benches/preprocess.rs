//! Criterion bench: preprocessing throughput — unwrapping and smoothing
//! scale linearly and are never the bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lion_bench::rig;
use lion_core::preprocess::{unwrap_phases, PhaseProfile};
use lion_geom::Point3;

fn wrapped_ramp(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (0.12 * i as f64).rem_euclid(std::f64::consts::TAU))
        .collect()
}

fn measurements(n: usize) -> Vec<(Point3, f64)> {
    let phases = wrapped_ramp(n);
    phases
        .into_iter()
        .enumerate()
        .map(|(i, p)| (Point3::new(i as f64 * 0.001, 0.0, 0.0), p))
        .collect()
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("unwrap");
    for &n in &[1_000usize, 10_000, 100_000] {
        let wrapped = wrapped_ramp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &wrapped, |b, w| {
            b.iter(|| unwrap_phases(std::hint::black_box(w)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("profile_build_and_smooth");
    for &n in &[1_000usize, 10_000] {
        let m = measurements(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let mut p = PhaseProfile::from_wrapped(std::hint::black_box(m), rig::LAMBDA)
                    .expect("valid");
                p.smooth(9);
                p
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("delta_distances");
    let m = measurements(10_000);
    let profile = PhaseProfile::from_wrapped(&m, rig::LAMBDA).expect("valid");
    group.bench_function("10k", |b| {
        b.iter(|| std::hint::black_box(&profile).delta_distances(5_000))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_preprocess
}
criterion_main!(benches);
