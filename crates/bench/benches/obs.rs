//! Criterion bench: cost of the observability layer itself.
//!
//! The acceptance bar for threading `lion-obs` through the hot path is
//! that the *disabled* case stays effectively free — `enabled()` is one
//! relaxed atomic load and a disabled span never reads the clock. The
//! enabled cases quantify what a subscriber actually pays per span/event
//! and per histogram record.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lion_obs::{CollectingSubscriber, Histogram};

fn bench_disabled(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let span = lion_obs::span!("bench.noop");
            black_box(&span);
        })
    });
    group.bench_function("event", |b| {
        b.iter(|| {
            lion_obs::event!(
                lion_obs::Level::Debug,
                "bench.noop",
                "value" => black_box(42u64),
            );
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let collector = Arc::new(CollectingSubscriber::new());
    lion_obs::set_global_subscriber(collector);
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("span", |b| {
        b.iter(|| {
            let span = lion_obs::span!("bench.collected");
            black_box(&span);
        })
    });
    group.bench_function("event", |b| {
        b.iter(|| {
            lion_obs::event!(
                lion_obs::Level::Debug,
                "bench.collected",
                "value" => black_box(42u64),
            );
        })
    });
    group.finish();
    lion_obs::clear_global_subscriber();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_histogram");
    group.bench_function("record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        })
    });
    group.bench_function("quantile", |b| {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 + 11);
        }
        b.iter(|| black_box(h.p99()))
    });
    group.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled, bench_histogram);
criterion_main!(benches);
