//! Criterion bench: cost of the LION linear solve as the measurement
//! count grows (the "light-weight" claim, paper Fig. 13b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lion_bench::rig;
use lion_core::{Localizer2d, Localizer3d, LocalizerConfig, PairStrategy, Weighting};
use lion_geom::{LineSegment, Point3, ThreeLineScan};

fn measurements_2d(n: usize) -> Vec<(Point3, f64)> {
    let target = Point3::new(0.1, 0.8, 0.0);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, 1);
    let track = LineSegment::along_x(-0.6, 0.6, 0.0, 0.0).expect("valid");
    // Pick the read rate so the sampler emits ~n samples over the track.
    let rate = n as f64 * rig::TAG_SPEED / 1.2;
    scenario
        .scan(&track, rig::TAG_SPEED, rate)
        .expect("valid scan")
        .to_measurements()
}

fn measurements_3d(rate: f64) -> Vec<(Point3, f64)> {
    let target = Point3::new(0.1, 0.8, 0.15);
    let antenna = rig::ideal_antenna(target);
    let mut scenario = rig::paper_scenario(antenna, 2);
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid");
    scenario
        .scan(&scan.to_path(), rig::TAG_SPEED, rate)
        .expect("valid scan")
        .to_measurements()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lion_solve_2d");
    for &n in &[200usize, 500, 1000, 2000] {
        let m = measurements_2d(n);
        let cfg = LocalizerConfig {
            side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
            ..LocalizerConfig::default()
        };
        let localizer = Localizer2d::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(m.len()), &m, |b, m| {
            b.iter(|| localizer.locate(std::hint::black_box(m)).expect("locates"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lion_solve_3d");
    for &rate in &[20.0_f64, 50.0, 100.0] {
        let m = measurements_3d(rate);
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid");
        let cfg = LocalizerConfig {
            pair_strategy: PairStrategy::StructuredScan {
                scan,
                x_interval: 0.2,
                tolerance: 0.003,
            },
            side_hint: Some(Point3::new(0.0, 0.5, 0.1)),
            ..LocalizerConfig::default()
        };
        let localizer = Localizer3d::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(m.len()), &m, |b, m| {
            b.iter(|| localizer.locate(std::hint::black_box(m)).expect("locates"))
        });
    }
    group.finish();

    // WLS vs plain LS solve cost (the robustness premium).
    let mut group = c.benchmark_group("weighting_cost");
    let m = measurements_2d(1000);
    for (name, weighting) in [
        ("plain_ls", Weighting::LeastSquares),
        ("irls_wls", Weighting::default()),
    ] {
        let cfg = LocalizerConfig {
            weighting,
            side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
            ..LocalizerConfig::default()
        };
        let localizer = Localizer2d::new(cfg);
        group.bench_function(name, |b| {
            b.iter(|| localizer.locate(std::hint::black_box(&m)).expect("locates"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_solver
}
criterion_main!(benches);
