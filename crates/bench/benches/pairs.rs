//! Criterion bench: pair-selection strategies — the ablation's cost side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lion_bench::rig;
use lion_core::PairStrategy;
use lion_geom::{Point3, ThreeLineScan, Trajectory};

fn line_positions(n: usize) -> Vec<Point3> {
    (0..n)
        .map(|i| Point3::new(i as f64 * 0.001, 0.0, 0.0))
        .collect()
}

fn scan_positions() -> (ThreeLineScan, Vec<Point3>) {
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid");
    let positions = scan
        .to_path()
        .sample(rig::TAG_SPEED, rig::READ_RATE)
        .into_iter()
        .map(|w| w.position)
        .collect();
    (scan, positions)
}

fn bench_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_pairs");
    for &n in &[1_000usize, 5_000, 20_000] {
        let positions = line_positions(n);
        let strategy = PairStrategy::Interval { interval: 0.2 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &positions, |b, p| {
            b.iter(|| strategy.pairs(std::hint::black_box(p)))
        });
    }
    group.finish();

    let (scan, positions) = scan_positions();
    let mut group = c.benchmark_group("strategies_on_three_line_scan");
    let strategies: Vec<(&str, PairStrategy)> = vec![
        ("interval", PairStrategy::Interval { interval: 0.2 }),
        (
            "structured",
            PairStrategy::StructuredScan {
                scan,
                x_interval: 0.2,
                tolerance: 0.003,
            },
        ),
        (
            "all_capped",
            PairStrategy::AllWithMinSeparation {
                min_separation: 0.18,
                max_pairs: 4000,
            },
        ),
    ];
    for (name, strategy) in strategies {
        group.bench_function(name, |b| {
            b.iter(|| strategy.pairs(std::hint::black_box(&positions)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pairs
}
criterion_main!(benches);
