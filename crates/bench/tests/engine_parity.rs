//! The engine ports must produce the same series regardless of worker
//! count: traces are simulated serially, so the only difference between
//! a serial and a parallel run is which thread executes each pure solve.

use lion_bench::experiments::{fig13, fig15, fig6};
use lion_engine::Engine;

fn parallel() -> Engine {
    Engine::builder().workers(4).build().expect("valid")
}

#[test]
fn fig13a_series_is_identical_serial_vs_parallel() {
    let (serial, serial_metrics) = fig13::run_accuracy_on(&Engine::serial(), 5, 5, 0.004);
    let (threaded, threaded_metrics) = fig13::run_accuracy_on(&parallel(), 5, 5, 0.004);
    for (name, a, b) in [
        ("lion_2d_cal", serial.lion_2d_cal, threaded.lion_2d_cal),
        (
            "lion_2d_uncal",
            serial.lion_2d_uncal,
            threaded.lion_2d_uncal,
        ),
        ("lion_3d_cal", serial.lion_3d_cal, threaded.lion_3d_cal),
        (
            "lion_3d_uncal",
            serial.lion_3d_uncal,
            threaded.lion_3d_uncal,
        ),
        ("dah_2d_cal", serial.dah_2d_cal, threaded.dah_2d_cal),
        ("dah_3d_cal", serial.dah_3d_cal, threaded.dah_3d_cal),
    ] {
        assert!(a.is_finite(), "{name} is not finite: {a}");
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}");
    }
    // The deterministic counters agree too; only the timers may differ.
    assert_eq!(serial_metrics.total.solves, threaded_metrics.total.solves);
    assert_eq!(
        serial_metrics.total.irls_iterations,
        threaded_metrics.total.irls_iterations
    );
    assert_eq!(
        serial_metrics.total.equations,
        threaded_metrics.total.equations
    );
    assert_eq!(serial_metrics.workers, 1);
    assert_eq!(threaded_metrics.workers, 4);
}

#[test]
fn fig6_series_is_identical_serial_vs_parallel() {
    let (serial, _) = fig6::run_on(&Engine::serial(), 11, 4, 0.004);
    let (threaded, _) = fig6::run_on(&parallel(), 11, 4, 0.004);
    assert_eq!(serial, threaded);
}

#[test]
fn fig15_series_is_identical_serial_vs_parallel() {
    let (serial, _) = fig15::run_on(&Engine::serial(), 51, 8);
    let (threaded, _) = fig15::run_on(&parallel(), 51, 8);
    assert_eq!(serial, threaded);
}
