//! Bit-parity suite for the runtime-dispatched SIMD kernels.
//!
//! Every kernel in `lion_linalg::simd` ships a scalar reference twin; the
//! dispatch contract is that the SIMD implementation is **bit-identical**
//! (`==` on every `f64`, no tolerance) on every input, because the
//! stream/adaptive/solver parity suites downstream assert exact equality
//! between pipelines that mix the two. These proptests pin that contract
//! across remainder lengths `0..width` (width = 4 lanes on AVX2, 2 on
//! NEON), so both the full-vector body and the scalar tail of each kernel
//! are exercised.
//!
//! On hosts without SIMD support, `active()` resolves to the scalar
//! backend and the comparisons are trivially equal — the suite is still
//! worth running there as a smoke test of the dispatch seam itself.

use proptest::prelude::*;

use lion_linalg::simd;

/// Strategy: finite phases in `[0, 2π)` like a wrapped RFID phase stream.
fn phases(len: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0_f64..std::f64::consts::TAU, len)
}

proptest! {
    #[test]
    fn exp_kernel_bit_parity(xs in proptest::collection::vec(-800.0_f64..0.0, 0..20)) {
        let mut scalar = xs.clone();
        let mut dispatched = xs.clone();
        simd::exp_non_positive_scalar(&mut scalar);
        simd::exp_non_positive(&mut dispatched);
        prop_assert_eq!(scalar, dispatched);
    }

    #[test]
    fn unwrap_kernel_bit_parity(ph in phases(0..20)) {
        let mut scalar = ph.clone();
        let mut dispatched = ph.clone();
        let mut revs_a = Vec::new();
        let mut revs_b = Vec::new();
        simd::phase_unwrap_in_place_scalar(&mut scalar, &mut revs_a);
        simd::phase_unwrap_in_place(&mut dispatched, &mut revs_b);
        prop_assert_eq!(scalar, dispatched);
        prop_assert_eq!(revs_a, revs_b);
    }

    #[test]
    fn sliding_mean_kernel_bit_parity(
        data in proptest::collection::vec(-10.0_f64..10.0, 1..24),
        window in 2_usize..9,
    ) {
        // Build the running-sum prefix exactly as the smoothing stage does.
        let mut prefix = Vec::with_capacity(data.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &d in &data {
            acc += d;
            prefix.push(acc);
        }
        let mut scalar = vec![0.0; data.len()];
        let mut dispatched = vec![0.0; data.len()];
        simd::sliding_mean_from_prefix_scalar(&prefix, window, &mut scalar);
        simd::sliding_mean_from_prefix(&prefix, window, &mut dispatched);
        prop_assert_eq!(scalar, dispatched);
    }

    #[test]
    fn radical_rows_kernel_bit_parity(
        k in 1_usize..4,
        n in 2_usize..12,
        m in 0_usize..20,
        seed in 0_u64..u64::MAX,
    ) {
        // Deterministic pseudo-random coords/deltas/pairs from the seed so
        // the three lengths can shrink independently.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64 * 4.0 - 2.0
        };
        let coords: Vec<f64> = (0..n * k).map(|_| next()).collect();
        let deltas: Vec<f64> = (0..n).map(|_| next()).collect();
        let pair_i: Vec<i32> = (0..m).map(|r| (r % n) as i32).collect();
        let pair_j: Vec<i32> = (0..m).map(|r| ((r * 7 + 1) % n) as i32).collect();
        let mut design_a = vec![0.0; m * (k + 1)];
        let mut design_b = vec![0.0; m * (k + 1)];
        let mut rhs_a = vec![0.0; m];
        let mut rhs_b = vec![0.0; m];
        simd::radical_rows_scalar(
            &coords, n, k, &deltas, &pair_i, &pair_j, &mut design_a, &mut rhs_a,
        );
        simd::radical_rows(
            &coords, n, k, &deltas, &pair_i, &pair_j, &mut design_b, &mut rhs_b,
        );
        prop_assert_eq!(design_a, design_b);
        prop_assert_eq!(rhs_a, rhs_b);
    }
}

/// Shared body for the Gram-kernel parity check at one width.
fn gram_parity<const N: usize>(flat: &[f64], rhs: &[f64], weights: &[f64]) {
    let (g_s, atk_s) = simd::gram_fixed_scalar::<N>(flat, rhs, weights);
    let (g_d, atk_d) = simd::gram_fixed::<N>(flat, rhs, weights);
    assert_eq!(g_s, g_d);
    assert_eq!(atk_s, atk_d);
}

proptest! {
    #[test]
    fn gram_kernel_bit_parity(
        m in 0_usize..20,
        n_sel in 0_usize..3,
        data in proptest::collection::vec(-5.0_f64..5.0, 20 * 6),
        weights in proptest::collection::vec(0.0_f64..1.0, 20),
    ) {
        let widths = [2, 3, 4];
        let n = widths[n_sel];
        let flat = &data[..m * n];
        let rhs = &data[20 * 5..20 * 5 + m];
        let weights = &weights[..m];
        match n {
            2 => gram_parity::<2>(flat, rhs, weights),
            3 => gram_parity::<3>(flat, rhs, weights),
            _ => gram_parity::<4>(flat, rhs, weights),
        }
    }
}

/// The forced-dispatch hook pins the scalar path regardless of host CPU:
/// CI runs this everywhere, so the fallback is never dead code. Flipping
/// the override mid-process is harmless to concurrently running parity
/// tests precisely because the kernels are bit-identical.
#[test]
fn forced_scalar_dispatch_matches_auto() {
    let xs: Vec<f64> = (0..37).map(|i| -(i as f64) * 0.37).collect();
    let mut auto = xs.clone();
    simd::exp_non_positive(&mut auto);
    simd::force(Some(simd::Backend::Scalar));
    assert_eq!(simd::active(), simd::Backend::Scalar);
    let mut forced = xs;
    simd::exp_non_positive(&mut forced);
    simd::force(None);
    assert_eq!(auto, forced);
    assert_eq!(simd::active(), simd::detected());
}
