//! Property-based tests for the linear-algebra kernel.
//!
//! These exercise the algebraic identities the LION solver relies on, over
//! randomized inputs: factorizations reconstruct their input, solvers
//! invert their forward maps, and circular statistics respect wrapping.

use proptest::prelude::*;

use lion_linalg::{lstsq, stats, Cholesky, Lu, Matrix, NormalEq, Qr, Svd, Vector};

/// Loads a matrix/rhs pair into a fresh incremental system.
fn normal_eq_from(m: &Matrix, b: &Vector) -> NormalEq {
    let mut ne = NormalEq::new();
    ne.begin(m.cols());
    for r in 0..m.rows() {
        ne.push_row(m.row(r), b[r]);
    }
    ne
}

/// Skips draws where the squared-condition-number error amplification of
/// the normal-equation route would exceed the parity tolerance.
fn well_conditioned(m: &Matrix) -> bool {
    Svd::decompose(m)
        .map(|s| s.condition_number() < 1e3)
        .unwrap_or(false)
}

/// Strategy: a well-scaled `rows × cols` matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_row_major(rows, cols, data).expect("sized"))
}

fn vector_strategy(len: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0_f64..10.0, len).prop_map(Vector::from)
}

/// Makes a matrix comfortably nonsingular by boosting its diagonal.
fn diagonally_dominant(m: &Matrix) -> Matrix {
    let n = m.rows();
    let mut out = m.clone();
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| out[(i, j)].abs()).sum();
        out[(i, i)] += row_sum + 1.0;
    }
    out
}

proptest! {
    #[test]
    fn lu_solve_inverts_forward_map(
        m in matrix_strategy(5, 5),
        x in vector_strategy(5),
    ) {
        let a = diagonally_dominant(&m);
        let b = a.mul_vector(&x).unwrap();
        let solved = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        for (p, q) in solved.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn lu_det_sign_flips_on_row_swap(m in matrix_strategy(4, 4)) {
        let a = diagonally_dominant(&m);
        let det_a = Lu::decompose(&a).unwrap().det();
        let mut b = a.clone();
        b.swap_rows(0, 1);
        let det_b = Lu::decompose(&b).unwrap().det();
        prop_assert!((det_a + det_b).abs() < 1e-6 * det_a.abs().max(1.0));
    }

    #[test]
    fn qr_reconstructs_input(m in matrix_strategy(7, 3)) {
        let qr = Qr::decompose(&m).unwrap();
        let back = qr.q().mul_matrix(&qr.r()).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-8));
    }

    #[test]
    fn qr_q_is_orthonormal(m in matrix_strategy(6, 3)) {
        let qr = Qr::decompose(&m).unwrap();
        let q = qr.q();
        let gram = q.transpose().mul_matrix(&q).unwrap();
        // Columns may be degenerate only if the input was rank-deficient,
        // which has probability ~0 under this strategy.
        prop_assert!(gram.approx_eq(&Matrix::identity(3), 1e-7));
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns(
        m in matrix_strategy(8, 3),
        b in vector_strategy(8),
    ) {
        let qr = Qr::decompose(&m).unwrap();
        if qr.rank(1e-10) < 3 { return Ok(()); }
        let x = qr.solve_least_squares(&b).unwrap();
        let r = &m.mul_vector(&x).unwrap() - &b;
        let grad = m.transpose_mul_vector(&r).unwrap();
        prop_assert!(grad.norm_inf() < 1e-6, "gradient {grad:?}");
    }

    #[test]
    fn cholesky_solves_spd_system(
        m in matrix_strategy(4, 4),
        x in vector_strategy(4),
    ) {
        // AᵀA + I is symmetric positive definite.
        let spd = &m.gram() + &Matrix::identity(4);
        let b = spd.mul_vector(&x).unwrap();
        let solved = Cholesky::decompose(&spd).unwrap().solve(&b).unwrap();
        for (p, q) in solved.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn svd_reconstructs_and_orders(m in matrix_strategy(6, 4)) {
        let svd = Svd::decompose(&m).unwrap();
        let s = Matrix::from_diagonal(svd.singular_values());
        let back = svd.u().mul_matrix(&s).unwrap()
            .mul_matrix(&svd.v().transpose()).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-7));
        for w in svd.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // Frobenius norm equals the root sum of squared singular values.
        let fro = m.norm_frobenius();
        let sv_norm = svd.singular_values().iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((fro - sv_norm).abs() < 1e-7 * fro.max(1.0));
    }

    #[test]
    fn weighted_ls_matches_scaled_plain_ls(
        m in matrix_strategy(8, 3),
        b in vector_strategy(8),
        w in proptest::collection::vec(0.1_f64..5.0, 8),
    ) {
        let qr = Qr::decompose(&m).unwrap();
        if qr.rank(1e-10) < 3 { return Ok(()); }
        let x_w = lstsq::solve_weighted(&m, &b, &w).unwrap();
        // Scale rows manually and solve plain LS — must agree.
        let scaled = Matrix::from_fn(8, 3, |r, c| m[(r, c)] * w[r].sqrt());
        let rhs = Vector::from_fn(8, |r| b[r] * w[r].sqrt());
        let x_s = lstsq::solve(&scaled, &rhs).unwrap();
        for (p, q) in x_w.as_slice().iter().zip(x_s.as_slice()) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn irls_recovers_exact_solution_without_noise(
        m in matrix_strategy(10, 3),
        x in vector_strategy(3),
    ) {
        let qr = Qr::decompose(&m).unwrap();
        if qr.rank(1e-8) < 3 { return Ok(()); }
        if Svd::decompose(&m).unwrap().condition_number() > 1e5 { return Ok(()); }
        let b = m.mul_vector(&x).unwrap();
        let report = lstsq::solve_irls(&m, &b, &lion_linalg::IrlsConfig::default()).unwrap();
        for (p, q) in report.solution.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    #[test]
    fn wrap_angle_is_idempotent_and_in_range(theta in -100.0_f64..100.0) {
        let w = stats::wrap_angle(theta);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        prop_assert!((stats::wrap_angle(w) - w).abs() < 1e-12);
        // Wrapping preserves the angle modulo 2π.
        let diff = (theta - w) / std::f64::consts::TAU;
        prop_assert!((diff - diff.round()).abs() < 1e-9);
    }

    #[test]
    fn circular_diff_is_antisymmetric(a in 0.0_f64..7.0, b in 0.0_f64..7.0) {
        let d1 = stats::circular_diff(a, b);
        let d2 = stats::circular_diff(b, a);
        // Antisymmetric except at the branch point ±π.
        if d1.abs() < std::f64::consts::PI - 1e-9 {
            prop_assert!((d1 + d2).abs() < 1e-9);
        }
        prop_assert!(d1 <= std::f64::consts::PI + 1e-12);
        prop_assert!(d1 > -std::f64::consts::PI - 1e-12);
    }

    #[test]
    fn circular_mean_shifts_with_rotation(
        base in proptest::collection::vec(-0.5_f64..0.5, 3..20),
        shift in 0.0_f64..6.0,
    ) {
        // A tight cluster rotated by `shift` has its mean rotated by `shift`.
        let m0 = stats::circular_mean(&base).unwrap();
        let rotated: Vec<f64> = base.iter().map(|a| a + shift).collect();
        let m1 = stats::circular_mean(&rotated).unwrap();
        let d = stats::circular_diff(m1, m0 + shift);
        prop_assert!(d.abs() < 1e-9, "mean moved by {d}");
    }

    #[test]
    fn moving_average_preserves_mean_of_constant(
        value in -5.0_f64..5.0,
        len in 2_usize..40,
        window in 1_usize..10,
    ) {
        let v = vec![value; len];
        let s = stats::moving_average(&v, window);
        prop_assert_eq!(s.len(), len);
        for x in s {
            prop_assert!((x - value).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_stays_within_bounds(
        v in proptest::collection::vec(-10.0_f64..10.0, 1..50),
        window in 1_usize..12,
    ) {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for x in stats::moving_average(&v, window) {
            prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12);
        }
    }

    #[test]
    fn running_stats_matches_batch(
        v in proptest::collection::vec(-100.0_f64..100.0, 1..60),
    ) {
        let mut rs = stats::RunningStats::new();
        rs.extend(v.iter().copied());
        let batch_mean = stats::mean(&v).unwrap();
        let batch_var = stats::variance(&v).unwrap();
        prop_assert!((rs.mean().unwrap() - batch_mean).abs() < 1e-8);
        prop_assert!((rs.variance().unwrap() - batch_var).abs() < 1e-6);
    }

    // Parity tolerance for NormalEq vs QR: the normal-equation route
    // squares the condition number, so for κ(A) < 1e3 (enforced by
    // `well_conditioned`) solutions agree to ~κ²·ε ≈ 1e-10 relative —
    // 1e-6 leaves two orders of headroom. Documented in DESIGN §11.
    #[test]
    fn normal_eq_matches_qr_on_weighted_systems(
        m in matrix_strategy(10, 3),
        b in vector_strategy(10),
        w in proptest::collection::vec(0.1_f64..5.0, 10),
    ) {
        if !well_conditioned(&m) { return Ok(()); }
        let x_qr = lstsq::solve_weighted(&m, &b, &w).unwrap();
        let mut ne = normal_eq_from(&m, &b);
        ne.set_weights(&w).unwrap();
        let x_ne = ne.solve().unwrap();
        for (p, q) in x_ne.iter().zip(x_qr.as_slice()) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()), "{p} vs {q}");
        }
    }

    #[test]
    fn normal_eq_weight_sequences_match_qr(
        m in matrix_strategy(10, 3),
        b in vector_strategy(10),
        seq in proptest::collection::vec(
            proptest::collection::vec(0.1_f64..5.0, 10), 1..6),
        cadence in 1_usize..10,
    ) {
        if !well_conditioned(&m) { return Ok(()); }
        // Random rank-1-update/rebuild interleavings must stay in parity
        // with a from-scratch weighted QR solve of the *final* weights.
        let mut ne = NormalEq::with_rebuild_every(cadence);
        ne.begin(m.cols());
        for r in 0..m.rows() {
            ne.push_row(m.row(r), b[r]);
        }
        for w in &seq {
            ne.set_weights(w).unwrap();
            ne.solve().unwrap();
        }
        let last = seq.last().unwrap();
        let x_qr = lstsq::solve_weighted(&m, &b, last).unwrap();
        let x_ne = ne.solve().unwrap();
        for (p, q) in x_ne.iter().zip(x_qr.as_slice()) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()), "{p} vs {q}");
        }
    }

    #[test]
    fn normal_eq_add_remove_matches_subset_qr(
        m in matrix_strategy(10, 3),
        b in vector_strategy(10),
        keep in proptest::collection::vec((0_usize..2).prop_map(|v| v == 1), 10),
    ) {
        if keep.iter().filter(|k| **k).count() < 5 { return Ok(()); }
        let mut ne = normal_eq_from(&m, &b);
        ne.solve().ok(); // sync so removals exercise the downdate path
        for at in (0..10).rev() {
            if !keep[at] {
                ne.remove_row(at);
            }
        }
        let rows: Vec<&[f64]> =
            (0..10).filter(|r| keep[*r]).map(|r| m.row(r)).collect();
        let sub = Matrix::from_rows(&rows).unwrap();
        if !well_conditioned(&sub) { return Ok(()); }
        let rhs = Vector::from_slice(
            &(0..10).filter(|r| keep[*r]).map(|r| b[r]).collect::<Vec<_>>());
        let x_qr = lstsq::solve(&sub, &rhs).unwrap();
        let x_ne = ne.solve().unwrap().to_vec();
        for (p, q) in x_ne.iter().zip(x_qr.as_slice()) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()), "{p} vs {q}");
        }
        // Re-inserting the removed rows at their original positions must
        // recover the full system. Ascending order keeps every earlier
        // original row present, so the insert position is the original
        // index itself.
        for at in 0..10 {
            if !keep[at] {
                ne.insert_row(at, m.row(at), b[at]);
            }
        }
        if !well_conditioned(&m) { return Ok(()); }
        let x_full_qr = lstsq::solve(&m, &b).unwrap();
        let x_full = ne.solve().unwrap();
        for (p, q) in x_full.iter().zip(x_full_qr.as_slice()) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()), "{p} vs {q}");
        }
    }

    #[test]
    fn polynomial_fit_interpolates_exact_data(
        c0 in -3.0_f64..3.0,
        c1 in -3.0_f64..3.0,
        c2 in -3.0_f64..3.0,
    ) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.25 - 1.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x + c2 * x * x).collect();
        let p = lion_linalg::poly::Polynomial::fit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((p.eval(x) - y).abs() < 1e-7);
        }
    }
}
