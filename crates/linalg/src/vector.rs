use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::error::LinalgError;

/// A dense, heap-allocated vector of `f64` elements.
///
/// `Vector` is the column-vector companion of [`crate::Matrix`]. It is a thin
/// wrapper over `Vec<f64>` that adds arithmetic, norms, and dot products.
///
/// # Example
///
/// ```
/// use lion_linalg::Vector;
///
/// let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
/// assert_eq!(a.dot(&b), Some(32.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Resizes this vector in place to `len` elements, reusing the existing
    /// allocation when capacity allows, and zeroes every element.
    ///
    /// The companion of [`crate::Matrix::reset_zeroed`] for right-hand-side
    /// buffer reuse in hot solve loops.
    pub fn reset_zeroed(&mut self, len: usize) {
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Overwrites this vector with the contents of `src`, reusing the
    /// existing allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Vector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying elements.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns the element at `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.data.get(i).copied()
    }

    /// Dot product; `None` when lengths differ.
    pub fn dot(&self, other: &Vector) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        Some(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Maximum absolute element; `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; `None` for the empty vector.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum() / self.len() as f64)
        }
    }

    /// Element-wise scaling by a constant.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector::from_fn(self.len(), |i| self.data[i] * factor)
    }

    /// Element-wise product; errors on length mismatch.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "vector hadamard product",
                found: format!("{} vs {}", self.len(), other.len()),
            });
        }
        Ok(Vector::from_fn(self.len(), |i| {
            self.data[i] * other.data[i]
        }))
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Appends an element.
    pub fn push(&mut self, value: f64) {
        self.data.push(value);
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<Vector> for Vec<f64> {
    fn from(v: Vector) -> Self {
        v.data
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

macro_rules! elementwise_binop {
    ($trait_:ident, $method:ident, $op:tt) => {
        impl $trait_<&Vector> for &Vector {
            type Output = Vector;
            /// # Panics
            ///
            /// Panics when the operand lengths differ.
            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(
                    self.len(),
                    rhs.len(),
                    concat!("vector ", stringify!($method), ": length mismatch"),
                );
                Vector::from_fn(self.len(), |i| self.data[i] $op rhs.data[i])
            }
        }
        impl $trait_<Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector sub_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert_eq!(Vector::zeros(4).len(), 4);
        assert_eq!(Vector::filled(3, 2.5).as_slice(), &[2.5, 2.5, 2.5]);
        assert!(Vector::zeros(0).is_empty());
        let v = Vector::from_fn(3, |i| i as f64 * 2.0);
        assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.norm_inf(), 4.0);
        let b = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.dot(&b), Some(-1.0));
        assert_eq!(a.dot(&Vector::zeros(3)), None);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_mismatched_panics() {
        let _ = Vector::zeros(2) + Vector::zeros(3);
    }

    #[test]
    fn hadamard_checks_length() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 8.0]);
        assert!(a.hadamard(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn mean_and_sum() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.mean(), Some(2.0));
        assert_eq!(Vector::zeros(0).mean(), None);
    }

    #[test]
    fn finite_detection() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut v = v;
        v.extend([5.0]);
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], 5.0);
    }

    #[test]
    fn display_nonempty() {
        let v = Vector::from_slice(&[1.0]);
        assert!(format!("{v}").contains("1.0"));
        assert_eq!(format!("{}", Vector::zeros(0)), "[]");
    }
}
