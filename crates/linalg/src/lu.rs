use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// Used for solving the square normal-equation systems produced by the LION
/// weighted-least-squares step, and for determinants/inverses in tests and
/// diagnostics.
///
/// # Example
///
/// ```
/// use lion_linalg::{Lu, Matrix, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[10.0, 12.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implied) and U (on/above).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1 or -1), for the determinant.
    sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] for a non-square input,
    /// - [`LinalgError::NotFinite`] when the input contains NaN/inf,
    /// - [`LinalgError::Singular`] when a pivot collapses to (near) zero.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu decompose",
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite {
                operation: "lu decompose",
            });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = f.norm_max().max(f64::MIN_POSITIVE);
        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at/below k.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for r in (k + 1)..n {
                let v = f[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= PIVOT_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                f.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                sign = -sign;
            }
            let pivot = f[(k, k)];
            for r in (k + 1)..n {
                let m = f[(r, k)] / pivot;
                f[(r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let sub = m * f[(k, c)];
                        f[(r, c)] -= sub;
                    }
                }
            }
        }
        Ok(Lu {
            factors: f,
            perm,
            sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve",
                found: format!("rhs length {} for dim {n}", b.len()),
            });
        }
        // Forward substitution with permuted rhs (L has unit diagonal).
        let mut y = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.factors[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back substitution through U.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.factors[(i, j)] * y[j];
            }
            y[i] = s / self.factors[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.factors[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix, column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (should not occur once factorized).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for c in 0..n {
            let e = Vector::from_fn(n, |i| if i == c { 1.0 } else { 0.0 });
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

/// Solves the square system `A·x = b` in one call.
///
/// # Errors
///
/// See [`Lu::decompose`] and [`Lu::solve`].
///
/// # Example
///
/// ```
/// use lion_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let x = lion_linalg::solve_square(&a, &Vector::from_slice(&[7.0, 8.0]))?;
/// assert_eq!(x.as_slice(), &[7.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_square(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    Lu::decompose(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from_slice(&[8.0, -11.0, -3.0]);
        let x = solve_square(&a, &b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (g, e) in x.as_slice().iter().zip(expect) {
            assert!((g - e).abs() < 1e-12, "got {g}, want {e}");
        }
    }

    #[test]
    fn residual_is_tiny_for_random_like_system() {
        // Deterministic pseudo-random fill via a simple LCG.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let n = 8;
        let noise = Matrix::from_fn(n, n, |_, _| next());
        let a = &noise + &(&Matrix::identity(n) * 4.0); // diagonally dominant-ish
        let x_true = Vector::from_fn(n, |i| (i as f64) - 3.5);
        let b = a.mul_vector(&x_true).unwrap();
        let x = solve_square(&a, &b).unwrap();
        for (g, e) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::decompose(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn nan_is_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::NotFinite { .. })
        ));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-12);
        // Permutation parity: swapping rows flips the sign.
        let b = Matrix::from_rows(&[&[4.0, 6.0], &[3.0, 8.0]]).unwrap();
        let lub = Lu::decompose(&b).unwrap();
        assert!((lub.det() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::decompose(&a).unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let lu = Lu::decompose(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve_square(&a, &Vector::from_slice(&[2.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }
}
