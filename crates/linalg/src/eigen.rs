//! Fixed-size symmetric eigensolver for geometry frame analysis.
//!
//! The adaptive sweep needs the principal axes of the tag-position cloud
//! (a 2×2 or 3×3 sample covariance) without touching the heap. A cyclic
//! Jacobi iteration on a stack-allocated 3×3 matrix does that: it is
//! deterministic (fixed rotation order, no pivot search on runtime
//! values beyond exact-zero skips), converges quadratically, and — key
//! for the planar (2-D) case — never mixes the z row/column into the
//! others when they are exactly zero, so planar inputs keep exactly
//! planar eigenvectors.

/// Eigendecomposition of a symmetric 3×3 matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// descending order and `eigenvectors[i]` the unit eigenvector (as a row)
/// paired with `eigenvalues[i]`. Ties keep the pre-sort (diagonal) order,
/// so the output is fully deterministic.
///
/// Only symmetric inputs make sense; the routine reads both triangles and
/// assumes `a[i][j] == a[j][i]`. For a 2-D problem, pad with a zero third
/// row/column: the zeros are preserved exactly, the third eigenvalue is
/// exactly `0.0`, and the third eigenvector is exactly `±e_z`.
///
/// # Example
///
/// ```
/// use lion_linalg::sym_eigen3;
///
/// let a = [[2.0, 0.0, 0.0], [0.0, 5.0, 0.0], [0.0, 0.0, 3.0]];
/// let (vals, vecs) = sym_eigen3(&a);
/// assert_eq!(vals, [5.0, 3.0, 2.0]);
/// assert_eq!(vecs[0][1].abs(), 1.0);
/// ```
pub fn sym_eigen3(a: &[[f64; 3]; 3]) -> ([f64; 3], [[f64; 3]; 3]) {
    let mut m = *a;
    // Rows of `v` accumulate Vᵀ, i.e. v[i] is the i-th eigenvector.
    let mut v = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
    const PAIRS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];
    for _ in 0..64 {
        let off = m[0][1] * m[0][1] + m[0][2] * m[0][2] + m[1][2] * m[1][2];
        let scale = m[0][0] * m[0][0] + m[1][1] * m[1][1] + m[2][2] * m[2][2] + 2.0 * off;
        if off <= f64::EPSILON * f64::EPSILON * scale.max(f64::MIN_POSITIVE) {
            break;
        }
        for &(p, q) in &PAIRS {
            let apq = m[p][q];
            if apq == 0.0 {
                continue;
            }
            let theta = (m[q][q] - m[p][p]) / (2.0 * apq);
            let t = if theta >= 0.0 {
                1.0 / (theta + (theta * theta + 1.0).sqrt())
            } else {
                -1.0 / (-theta + (theta * theta + 1.0).sqrt())
            };
            let c = 1.0 / (t * t + 1.0).sqrt();
            let s = t * c;
            let r = 3 - p - q;
            m[p][p] -= t * apq;
            m[q][q] += t * apq;
            m[p][q] = 0.0;
            m[q][p] = 0.0;
            let arp = m[r][p];
            let arq = m[r][q];
            m[r][p] = c * arp - s * arq;
            m[p][r] = m[r][p];
            m[r][q] = s * arp + c * arq;
            m[q][r] = m[r][q];
            let (head, tail) = v.split_at_mut(q);
            for (ep, eq) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                let (vp, vq) = (*ep, *eq);
                *ep = c * vp - s * vq;
                *eq = s * vp + c * vq;
            }
        }
    }
    // Stable descending sort of the three diagonal entries.
    let mut order = [0usize, 1, 2];
    for i in 1..3 {
        let mut j = i;
        while j > 0 && m[order[j]][order[j]] > m[order[j - 1]][order[j - 1]] {
            order.swap(j, j - 1);
            j -= 1;
        }
    }
    (
        [
            m[order[0]][order[0]],
            m[order[1]][order[1]],
            m[order[2]][order[2]],
        ],
        [v[order[0]], v[order[1]], v[order[2]]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[[f64; 3]; 3], x: &[f64; 3]) -> [f64; 3] {
        [
            a[0][0] * x[0] + a[0][1] * x[1] + a[0][2] * x[2],
            a[1][0] * x[0] + a[1][1] * x[1] + a[1][2] * x[2],
            a[2][0] * x[0] + a[2][1] * x[1] + a[2][2] * x[2],
        ]
    }

    #[test]
    fn diagonal_is_sorted_identity_rotation() {
        let a = [[1.0, 0.0, 0.0], [0.0, 4.0, 0.0], [0.0, 0.0, 2.0]];
        let (vals, vecs) = sym_eigen3(&a);
        assert_eq!(vals, [4.0, 2.0, 1.0]);
        assert_eq!(vecs[0], [0.0, 1.0, 0.0]);
        assert_eq!(vecs[1], [0.0, 0.0, 1.0]);
        assert_eq!(vecs[2], [1.0, 0.0, 0.0]);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = [[4.0, 1.0, -2.0], [1.0, 3.0, 0.5], [-2.0, 0.5, 5.0]];
        let (vals, vecs) = sym_eigen3(&a);
        for i in 0..3 {
            let av = mat_vec(&a, &vecs[i]);
            for c in 0..3 {
                assert!(
                    (av[c] - vals[i] * vecs[i][c]).abs() < 1e-10,
                    "pair {i} component {c}: {av:?} vs {vals:?}·{:?}",
                    vecs[i]
                );
            }
            let norm: f64 = vecs[i].iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        // Trace is preserved.
        let trace: f64 = vals.iter().sum();
        assert!((trace - 12.0).abs() < 1e-10);
    }

    #[test]
    fn planar_input_keeps_exact_zero_z() {
        // Positive semi-definite in-plane block (like a sample covariance).
        let a = [[2.0, 1.2, 0.0], [1.2, 1.0, 0.0], [0.0, 0.0, 0.0]];
        let (vals, vecs) = sym_eigen3(&a);
        // Third eigenpair is exactly (0, e_z); the in-plane eigenvectors
        // carry exact zeros in z.
        assert_eq!(vals[2], 0.0);
        assert_eq!(vecs[0][2], 0.0);
        assert_eq!(vecs[1][2], 0.0);
        assert_eq!(vecs[2], [0.0, 0.0, 1.0]);
        assert!(vals[0] > 0.0);
    }

    #[test]
    fn matches_hand_computed_two_by_two() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2,
        // (1,-1)/√2.
        let a = [[2.0, 1.0, 0.0], [1.0, 2.0, 0.0], [0.0, 0.0, 0.0]];
        let (vals, vecs) = sym_eigen3(&a);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((vecs[0][0].abs() - inv_sqrt2).abs() < 1e-12);
        assert!((vecs[0][1].abs() - inv_sqrt2).abs() < 1e-12);
        assert_eq!(vecs[0][0].signum(), vecs[0][1].signum());
    }

    #[test]
    fn repeated_eigenvalues_converge() {
        let a = [[3.0, 0.0, 0.0], [0.0, 3.0, 0.0], [0.0, 0.0, 1.0]];
        let (vals, _) = sym_eigen3(&a);
        assert_eq!(vals, [3.0, 3.0, 1.0]);
    }
}
