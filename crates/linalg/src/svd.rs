use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Thin singular value decomposition `A = U·Σ·Vᵀ` via one-sided Jacobi
/// rotations.
///
/// One-sided Jacobi is slow for large matrices but simple, robust, and very
/// accurate for the small systems LION works with (the design matrix has at
/// most 4 columns). It is used for condition-number diagnostics, the
/// pseudo-inverse fallback on rank-deficient geometries, and in tests as an
/// independent oracle for the QR/LU solvers.
///
/// # Example
///
/// ```
/// use lion_linalg::{Matrix, Svd};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_diagonal(&[3.0, 2.0]);
/// let svd = Svd::decompose(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.condition_number() - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
}

/// Convergence threshold on the off-diagonal Gram entries.
const JACOBI_TOL: f64 = 1e-14;
/// Maximum number of full Jacobi sweeps.
const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Computes the thin SVD of `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] when `rows < cols`,
    /// - [`LinalgError::NotFinite`] for NaN/inf input,
    /// - [`LinalgError::NonConvergence`] if Jacobi sweeps fail to converge
    ///   (practically unreachable for well-scaled small matrices).
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                operation: "svd decompose",
                found: format!("{m}x{n} (needs rows >= cols)"),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite {
                operation: "svd decompose",
            });
        }
        // Work on columns of W = A·V, rotating pairs until orthogonal.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries for the (p, q) column pair.
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for r in 0..m {
                        let wp = w[(r, p)];
                        let wq = w[(r, q)];
                        alpha += wp * wp;
                        beta += wq * wq;
                        gamma += wp * wq;
                    }
                    let scale = (alpha * beta).sqrt();
                    if scale > 0.0 {
                        off = off.max(gamma.abs() / scale);
                    }
                    if gamma.abs() <= JACOBI_TOL * scale || scale == 0.0 {
                        continue;
                    }
                    // Jacobi rotation that zeroes the Gram off-diagonal.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for r in 0..m {
                        let wp = w[(r, p)];
                        let wq = w[(r, q)];
                        w[(r, p)] = c * wp - s * wq;
                        w[(r, q)] = s * wp + c * wq;
                    }
                    for r in 0..n {
                        let vp = v[(r, p)];
                        let vq = v[(r, q)];
                        v[(r, p)] = c * vp - s * vq;
                        v[(r, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= JACOBI_TOL {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NonConvergence {
                algorithm: "jacobi svd",
                iterations: MAX_SWEEPS,
            });
        }
        // Extract singular values as column norms of W; normalize into U.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n).map(|c| w.column(c).norm()).collect();
        order.sort_by(|&a, &b| {
            norms[b]
                .partial_cmp(&norms[a])
                .expect("finite input implies finite norms")
        });
        let mut sigma = Vec::with_capacity(n);
        let mut u = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            let s = norms[src];
            sigma.push(s);
            for r in 0..m {
                u[(r, dst)] = if s > 0.0 { w[(r, src)] / s } else { 0.0 };
            }
            for r in 0..n {
                v_sorted[(r, dst)] = v[(r, src)];
            }
        }
        Ok(Svd {
            u,
            sigma,
            v: v_sorted,
        })
    }

    /// Singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// Left singular vectors (thin, `rows × cols`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Right singular vectors (`cols × cols`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// 2-norm condition number `σ_max / σ_min`; infinite when singular.
    pub fn condition_number(&self) -> f64 {
        match (self.sigma.first(), self.sigma.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => f64::INFINITY,
        }
    }

    /// Numerical rank: singular values above `tol · σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        match self.sigma.first() {
            Some(&max) if max > 0.0 => self.sigma.iter().filter(|&&s| s > tol * max).count(),
            _ => 0,
        }
    }

    /// Minimum-norm least-squares solution via the pseudo-inverse, with
    /// singular values below `tol · σ_max` treated as zero.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != rows`.
    pub fn solve_min_norm(&self, b: &Vector, tol: f64) -> Result<Vector, LinalgError> {
        let (m, n) = self.u.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "svd solve",
                found: format!("rhs length {} for {m} rows", b.len()),
            });
        }
        let cutoff = self.sigma.first().copied().unwrap_or(0.0) * tol;
        let mut x = Vector::zeros(n);
        for k in 0..n {
            let s = self.sigma[k];
            if s <= cutoff || s == 0.0 {
                continue;
            }
            // coefficient = (u_kᵀ b) / σ_k
            let mut coeff = 0.0;
            for r in 0..m {
                coeff += self.u[(r, k)] * b[r];
            }
            coeff /= s;
            for r in 0..n {
                x[r] += coeff * self.v[(r, k)];
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &Svd) -> Matrix {
        let s = Matrix::from_diagonal(svd.singular_values());
        svd.u()
            .mul_matrix(&s)
            .unwrap()
            .mul_matrix(&svd.v().transpose())
            .unwrap()
    }

    #[test]
    fn reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert!(reconstruct(&svd).approx_eq(&a, 1e-10));
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let svd = Svd::decompose(&a).unwrap();
        let sv = svd.singular_values();
        assert!((sv[0] - 5.0).abs() < 1e-12);
        assert!((sv[1] - 3.0).abs() < 1e-12);
        assert!((sv[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_values_descending_and_nonnegative() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[4.0, 0.0, -2.0],
        ])
        .unwrap();
        let svd = Svd::decompose(&a).unwrap();
        let sv = svd.singular_values();
        for w in sv.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(sv.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn orthogonality_of_factors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, -1.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        let ui = svd.u().transpose().mul_matrix(svd.u()).unwrap();
        assert!(ui.approx_eq(&Matrix::identity(2), 1e-10));
        let vi = svd.v().transpose().mul_matrix(svd.v()).unwrap();
        assert!(vi.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn rank_and_condition() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.condition_number() > 1e10);
        let id = Svd::decompose(&Matrix::identity(3)).unwrap();
        assert!((id.condition_number() - 1.0).abs() < 1e-12);
        assert_eq!(id.rank(1e-10), 3);
    }

    #[test]
    fn min_norm_solution_on_rank_deficient_system() {
        // x + y = 2 has minimum-norm solution (1, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 2.0]);
        let svd = Svd::decompose(&a).unwrap();
        let x = svd.solve_min_norm(&b, 1e-10).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_agrees_with_qr_on_full_rank() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.2, 2.9, 4.1]);
        let x_svd = Svd::decompose(&a)
            .unwrap()
            .solve_min_norm(&b, 1e-12)
            .unwrap();
        let x_qr = crate::qr::Qr::decompose(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        for (p, q) in x_svd.as_slice().iter().zip(x_qr.as_slice()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn wide_rejected_and_nan_rejected() {
        assert!(Svd::decompose(&Matrix::zeros(1, 2)).is_err());
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::NAN;
        assert!(matches!(
            Svd::decompose(&a),
            Err(LinalgError::NotFinite { .. })
        ));
    }

    #[test]
    fn zero_matrix_has_zero_rank() {
        let svd = Svd::decompose(&Matrix::zeros(3, 2)).unwrap();
        assert_eq!(svd.rank(1e-10), 0);
        assert!(svd.condition_number().is_infinite());
        let x = svd.solve_min_norm(&Vector::zeros(3), 1e-10).unwrap();
        assert_eq!(x.as_slice(), &[0.0, 0.0]);
    }
}
