//! Polynomial least-squares fitting.
//!
//! The parabola-based localization baseline (paper Sec. VI, citing \[8\])
//! fits a quadratic to the unwrapped phase profile of a linear scan: the
//! vertex abscissa estimates the coordinate of the closest approach to the
//! antenna, and the curvature encodes the perpendicular distance.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::vector::Vector;

/// A polynomial in `x`, stored internally in the centered-and-scaled
/// variable `t = (x − offset) / scale` for numerical stability.
///
/// [`Polynomial::fit`] centers the abscissae automatically, so evaluating a
/// fit remains accurate even when the `x` values sit far from zero (e.g.
/// absolute conveyor coordinates).
///
/// # Example
///
/// ```
/// use lion_linalg::poly::Polynomial;
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x - 4.0 * x + 1.0).collect();
/// let p = Polynomial::fit(&xs, &ys, 2)?;
/// assert!((p.eval(1.5) - (-0.5)).abs() < 1e-9);
/// assert!((p.vertex().unwrap().0 - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// Coefficients in ascending-degree order over `t`.
    coefficients: Vec<f64>,
    /// Centering offset: `t = (x − offset) / scale`.
    offset: f64,
    /// Scaling factor (always positive).
    scale: f64,
}

impl Polynomial {
    /// Creates a polynomial from ascending-degree coefficients in plain `x`
    /// (no centering/scaling).
    ///
    /// The empty list is the zero polynomial.
    pub fn new(coefficients: Vec<f64>) -> Self {
        Polynomial {
            coefficients,
            offset: 0.0,
            scale: 1.0,
        }
    }

    /// Least-squares fit of a degree-`degree` polynomial to `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] when `xs.len() != ys.len()` or
    ///   fewer than `degree + 1` points are supplied,
    /// - [`LinalgError::NotFinite`] for NaN/inf input,
    /// - [`LinalgError::RankDeficient`] when all `xs` coincide.
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Self, LinalgError> {
        if xs.len() != ys.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "polynomial fit",
                found: format!("{} xs vs {} ys", xs.len(), ys.len()),
            });
        }
        if xs.len() < degree + 1 {
            return Err(LinalgError::DimensionMismatch {
                operation: "polynomial fit",
                found: format!("{} points for degree {degree}", xs.len()),
            });
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return Err(LinalgError::NotFinite {
                operation: "polynomial fit",
            });
        }
        // Center and scale x for conditioning of the Vandermonde matrix.
        let offset = xs.iter().sum::<f64>() / xs.len() as f64;
        let scale = xs
            .iter()
            .map(|x| (x - offset).abs())
            .fold(0.0_f64, f64::max)
            .max(1e-30);
        let design = Matrix::from_fn(xs.len(), degree + 1, |r, c| {
            ((xs[r] - offset) / scale).powi(c as i32)
        });
        let rhs = Vector::from_slice(ys);
        let coefficients = Qr::decompose(&design)?
            .solve_least_squares(&rhs)?
            .into_inner();
        Ok(Polynomial {
            coefficients,
            offset,
            scale,
        })
    }

    /// Coefficients over the internal centered variable `t`, ascending
    /// degree. For polynomials built with [`Polynomial::new`], `t = x`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficients expanded into plain powers of `x`, ascending degree.
    ///
    /// For fits centered far from zero this expansion can lose precision;
    /// prefer [`Polynomial::eval`] for evaluation.
    pub fn to_plain_coefficients(&self) -> Vec<f64> {
        let d = self.coefficients.len();
        if d == 0 {
            return Vec::new();
        }
        let mut out = vec![0.0; d];
        // Basis expansion: t^c = ((x − μ)/s)^c via repeated convolution with
        // the linear factor (−μ/s) + (1/s)·x.
        let lin = [-self.offset / self.scale, 1.0 / self.scale];
        let mut basis = vec![1.0];
        for (c, &b) in self.coefficients.iter().enumerate() {
            for (i, &v) in basis.iter().enumerate() {
                out[i] += b * v;
            }
            if c + 1 < d {
                let mut next = vec![0.0; basis.len() + 1];
                for (i, &v) in basis.iter().enumerate() {
                    next[i] += v * lin[0];
                    next[i + 1] += v * lin[1];
                }
                basis = next;
            }
        }
        out
    }

    /// Degree (index of the highest stored coefficient); 0 for the zero
    /// polynomial.
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// Evaluates at `x` by Horner's rule in the centered variable.
    pub fn eval(&self, x: f64) -> f64 {
        let t = (x - self.offset) / self.scale;
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * t + c)
    }

    /// Derivative polynomial (with respect to `x`).
    pub fn derivative(&self) -> Polynomial {
        if self.coefficients.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial {
            coefficients: self.coefficients[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i + 1) as f64 / self.scale)
                .collect(),
            offset: self.offset,
            scale: self.scale,
        }
    }

    /// Vertex `(x, y)` of a quadratic; `None` unless the polynomial is
    /// degree 2 with a nonzero leading coefficient.
    pub fn vertex(&self) -> Option<(f64, f64)> {
        if self.coefficients.len() != 3 || self.coefficients[2] == 0.0 {
            return None;
        }
        let t = -self.coefficients[1] / (2.0 * self.coefficients[2]);
        let x = self.offset + self.scale * t;
        Some((x, self.eval(x)))
    }

    /// Second derivative with respect to `x` of a quadratic (the constant
    /// curvature `2a`); `None` unless degree 2.
    pub fn quadratic_curvature(&self) -> Option<f64> {
        if self.coefficients.len() != 3 {
            return None;
        }
        Some(2.0 * self.coefficients[2] / (self.scale * self.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.3 - 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x + 2.0 * x - 5.0).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        let c = p.to_plain_coefficients();
        assert!((c[0] + 5.0).abs() < 1e-9, "{c:?}");
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] - 3.0).abs() < 1e-9);
        assert!((p.quadratic_curvature().unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fits_line() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 5.0];
        let p = Polynomial::fit(&xs, &ys, 1).unwrap();
        assert!((p.eval(10.0) - 21.0).abs() < 1e-9);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn vertex_of_quadratic() {
        let p = Polynomial::new(vec![1.0, -4.0, 2.0]);
        let (x, y) = p.vertex().unwrap();
        assert!((x - 1.0).abs() < 1e-12);
        assert!((y - (-1.0)).abs() < 1e-12);
        assert_eq!(Polynomial::new(vec![1.0, 2.0]).vertex(), None);
        assert_eq!(Polynomial::new(vec![1.0, 2.0, 0.0]).vertex(), None);
    }

    #[test]
    fn vertex_of_fitted_offset_parabola() {
        // Parabola with vertex at x = 4.0 sampled away from the vertex.
        let xs: Vec<f64> = (0..15).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 * (x - 4.0) * (x - 4.0) + 2.0)
            .collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        let (vx, vy) = p.vertex().unwrap();
        assert!((vx - 4.0).abs() < 1e-9);
        assert!((vy - 2.0).abs() < 1e-9);
        assert!((p.quadratic_curvature().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 3.0, 2.0]); // 2x² + 3x + 5
        let d = p.derivative(); // 4x + 3
        assert_eq!(d.coefficients(), &[3.0, 4.0]);
        assert_eq!(
            Polynomial::new(vec![7.0]).derivative().coefficients(),
            &[0.0]
        );
        // Derivative of a fitted (centered) polynomial evaluates correctly.
        let xs: Vec<f64> = (0..8).map(|i| i as f64 + 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let f = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!((f.derivative().eval(103.0) - 206.0).abs() < 1e-6);
    }

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // x² + 1
        assert_eq!(p.eval(3.0), 10.0);
        assert_eq!(Polynomial::new(vec![]).eval(5.0), 0.0);
        assert!(Polynomial::new(vec![]).to_plain_coefficients().is_empty());
    }

    #[test]
    fn validates_input() {
        assert!(Polynomial::fit(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
        assert!(Polynomial::fit(&[f64::NAN, 0.0], &[1.0, 2.0], 1).is_err());
        // All x identical → rank deficient.
        assert!(matches!(
            Polynomial::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 1),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn conditioning_with_large_offsets() {
        // x values far from zero would wreck a naive Vandermonde fit.
        let xs: Vec<f64> = (0..20).map(|i| 1.0e6 + i as f64 * 0.01).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                let t = x - 1.0e6;
                4.0 * t * t - t + 0.25
            })
            .collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((p.eval(x) - y).abs() < 1e-5, "poor fit at {x}");
        }
    }
}
