//! # lion-linalg
//!
//! Small, self-contained dense linear-algebra toolkit used by the LION
//! reproduction (ICDCS 2022, "Pinpoint Achilles' Heel in RFID Localization").
//!
//! The LION localization model reduces RFID phase localization to solving an
//! overdetermined linear system `A·x = k` with (iteratively re-)weighted
//! least squares. This crate provides everything that pipeline needs, built
//! from scratch on `std` only:
//!
//! - [`Matrix`] / [`Vector`]: dense row-major matrices and vectors,
//! - [`Lu`]: LU decomposition with partial pivoting (solve / det / inverse),
//! - [`Qr`]: Householder QR (least-squares solve, rank detection),
//! - [`Cholesky`]: for symmetric positive-definite systems,
//! - [`NormalEq`]: incrementally maintained normal equations (rank-1 IRLS
//!   reweights, row insert/remove) for families of related solves,
//! - [`sym_eigen3`]: stack-only symmetric 3×3 eigensolver for geometry
//!   frames,
//! - [`Svd`]: one-sided Jacobi SVD (condition numbers, pseudo-inverse),
//! - [`lstsq`]: plain, weighted, and iteratively-reweighted least squares
//!   with the paper's Gaussian-of-residual weight (Eq. 15),
//! - [`lm`]: Levenberg–Marquardt for the non-linear hyperbola baseline,
//! - [`stats`]: summary statistics, circular (phase) statistics, filters,
//! - [`poly`]: polynomial fitting for the parabola baseline,
//! - [`simd`]: runtime-dispatched (AVX2/NEON) kernels for the solve
//!   pipeline's hot loops, bit-identical to their scalar references.
//!
//! # Example
//!
//! Solve an overdetermined system in the least-squares sense:
//!
//! ```
//! use lion_linalg::{Matrix, Vector, lstsq};
//!
//! # fn main() -> Result<(), lion_linalg::LinalgError> {
//! // y = 2x + 1 sampled at x = 0, 1, 2 with a design matrix [x 1].
//! let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
//! let k = Vector::from_slice(&[1.0, 3.0, 5.0]);
//! let x = lstsq::solve(&a, &k)?;
//! assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// `simd` is the single sanctioned exception to the no-unsafe rule: it
// needs `core::arch` intrinsics, and it opts in module-locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod eigen;
mod error;
pub mod lm;
pub mod lstsq;
mod lu;
mod matrix;
pub mod normal;
pub mod poly;
mod qr;
pub mod simd;
pub mod stats;
mod svd;
mod vector;

pub use cholesky::Cholesky;
pub use eigen::sym_eigen3;
pub use error::LinalgError;
pub use lm::{LevenbergMarquardt, LmOutcome, LmReport};
pub use lstsq::{IrlsConfig, IrlsReport, LstsqScratch, WeightFunction};
pub use lu::{solve_square, Lu};
pub use matrix::Matrix;
pub use normal::{
    solve_irls_normal, solve_irls_normal_warm, NormalEq, NormalIrlsOutcome, NormalIrlsScratch,
};
pub use qr::Qr;
pub use svd::Svd;
pub use vector::Vector;

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
