use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::error::LinalgError;
use crate::vector::Vector;

/// A dense, row-major matrix of `f64` elements.
///
/// This is the workhorse type of the crate: the LION solver assembles its
/// radical-line coefficient matrix as a [`Matrix`] and hands it to the
/// least-squares routines.
///
/// # Example
///
/// ```
/// use lion_linalg::Matrix;
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::filled(3, 3, 2.0);
/// let c = a.mul_matrix(&b)?;
/// assert_eq!(c[(1, 2)], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Reshapes this matrix in place to `rows × cols`, reusing the existing
    /// allocation when capacity allows, and zeroes every element.
    ///
    /// This is the buffer-reuse entry point for hot loops (the LION batch
    /// engine resizes one design matrix per worker instead of allocating a
    /// fresh [`Matrix::zeros`] per solve).
    ///
    /// # Example
    ///
    /// ```
    /// use lion_linalg::Matrix;
    ///
    /// let mut m = Matrix::filled(4, 4, 7.0);
    /// m.reset_zeroed(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert_eq!(m[(1, 2)], 0.0);
    /// ```
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Overwrites this matrix with the contents (and shape) of `src`,
    /// reusing the existing allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix by evaluating `f` at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::EmptyInput`] for an empty row list and
    /// [`LinalgError::DimensionMismatch`] when rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::EmptyInput {
            operation: "Matrix::from_rows",
        })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "Matrix::from_rows",
                    found: format!("row of length {} vs {}", row.len(), cols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "Matrix::from_row_major",
                found: format!("{} elements for {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the element at `(r, c)`, or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vector {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        Vector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix–matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn mul_matrix(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix multiply",
                found: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != v.len()`.
    pub fn mul_vector(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "matrix-vector multiply",
                found: format!("{}x{} * {}", self.rows, self.cols, v.len()),
            });
        }
        Ok(Vector::from_fn(self.rows, |r| {
            self.row(r)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        }))
    }

    /// `Aᵀ·A`, the Gram matrix used by normal-equation solvers.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// `Aᵀ·diag(w)·A`, the weighted Gram matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `weights.len() != self.rows()`.
    pub fn weighted_gram(&self, weights: &[f64]) -> Result<Matrix, LinalgError> {
        if weights.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "weighted gram",
                found: format!("{} weights for {} rows", weights.len(), self.rows),
            });
        }
        let mut out = Matrix::zeros(self.cols, self.cols);
        for (r, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = self.row(r);
            for i in 0..self.cols {
                let wri = w * row[i];
                if wri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += wri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        Ok(out)
    }

    /// `Aᵀ·v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != rows`.
    pub fn transpose_mul_vector(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "transpose-vector multiply",
                found: format!("{}x{} with vector {}", self.rows, self.cols, v.len()),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for r in 0..self.rows {
            let x = v[r];
            if x == 0.0 {
                continue;
            }
            for c in 0..self.cols {
                out[c] += self[(r, c)] * x;
            }
        }
        Ok(out)
    }

    /// `Aᵀ·diag(w)·v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths disagree
    /// with the row count.
    pub fn weighted_transpose_mul_vector(
        &self,
        weights: &[f64],
        v: &Vector,
    ) -> Result<Vector, LinalgError> {
        if v.len() != self.rows || weights.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "weighted transpose-vector multiply",
                found: format!(
                    "{}x{} with vector {} and {} weights",
                    self.rows,
                    self.cols,
                    v.len(),
                    weights.len()
                ),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for r in 0..self.rows {
            let x = v[r] * weights[r];
            if x == 0.0 {
                continue;
            }
            for c in 0..self.cols {
                out[c] += self[(r, c)] * x;
            }
        }
        Ok(out)
    }

    /// Returns a new matrix keeping only the given columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when an index is out of
    /// bounds.
    pub fn select_columns(&self, columns: &[usize]) -> Result<Matrix, LinalgError> {
        for &c in columns {
            if c >= self.cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "select columns",
                    found: format!("column {c} of {}", self.cols),
                });
            }
        }
        Ok(Matrix::from_fn(self.rows, columns.len(), |r, j| {
            self[(r, columns[j])]
        }))
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the column counts
    /// differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "vstack",
                found: format!("{} vs {} columns", self.cols, other.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element; `0.0` for an empty matrix.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns `true` when `self` and `other` agree element-wise within
    /// `tol`, including matching shapes.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row swap out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>12.6} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics when the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics when the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Matrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(1, 0)], 0.0);
        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f[(1, 1)], 11.0);
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::EmptyInput { .. })
        ));
        assert!(matches!(
            Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_row_major_validates() {
        assert!(Matrix::from_row_major(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn row_column_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2).as_slice(), &[3.0, 6.0]);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn multiply() {
        let m = sample();
        let t = m.transpose();
        let g = m.mul_matrix(&t).unwrap();
        // [1 2 3; 4 5 6] * [1 4; 2 5; 3 6] = [14 32; 32 77]
        assert_eq!(g[(0, 0)], 14.0);
        assert_eq!(g[(0, 1)], 32.0);
        assert_eq!(g[(1, 1)], 77.0);
        assert!(m.mul_matrix(&m).is_err());
    }

    #[test]
    fn multiply_identity_is_noop() {
        let m = sample();
        assert_eq!(m.mul_matrix(&Matrix::identity(3)).unwrap(), m);
        assert_eq!(Matrix::identity(2).mul_matrix(&m).unwrap(), m);
    }

    #[test]
    fn mat_vec() {
        let m = sample();
        let v = Vector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(m.mul_vector(&v).unwrap().as_slice(), &[-2.0, -2.0]);
        assert!(m.mul_vector(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let g = m.gram();
        let expect = m.transpose().mul_matrix(&m).unwrap();
        assert!(g.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn weighted_gram_matches_explicit_product() {
        let m = sample();
        let w = [2.0, 0.5];
        let g = m.weighted_gram(&w).unwrap();
        let dw = Matrix::from_diagonal(&w);
        let expect = m
            .transpose()
            .mul_matrix(&dw)
            .unwrap()
            .mul_matrix(&m)
            .unwrap();
        assert!(g.approx_eq(&expect, 1e-12));
        assert!(m.weighted_gram(&[1.0]).is_err());
    }

    #[test]
    fn transpose_mul_vector_matches_explicit() {
        let m = sample();
        let v = Vector::from_slice(&[1.0, 2.0]);
        let got = m.transpose_mul_vector(&v).unwrap();
        let expect = m.transpose().mul_vector(&v).unwrap();
        assert_eq!(got, expect);
        let w = [3.0, 0.25];
        let got = m.weighted_transpose_mul_vector(&w, &v).unwrap();
        let dw = Matrix::from_diagonal(&w);
        let expect = m
            .transpose()
            .mul_matrix(&dw)
            .unwrap()
            .mul_vector(&v)
            .unwrap();
        assert!(got
            .as_slice()
            .iter()
            .zip(expect.as_slice())
            .all(|(a, b)| (a - b).abs() < 1e-12));
    }

    #[test]
    fn select_columns_and_vstack() {
        let m = sample();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert!(m.select_columns(&[3]).is_err());
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(3), m.row(1));
        assert!(m.vstack(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn swap_rows_works() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.norm_frobenius(), 5.0);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn finite_and_approx_eq() {
        let m = sample();
        assert!(m.is_finite());
        let mut n = m.clone();
        n[(0, 0)] += 1e-9;
        assert!(m.approx_eq(&n, 1e-8));
        assert!(!m.approx_eq(&n, 1e-10));
        assert!(!m.approx_eq(&Matrix::zeros(2, 2), 1.0));
        n[(0, 0)] = f64::NAN;
        assert!(!n.is_finite());
    }

    #[test]
    fn display_nonempty() {
        assert!(format!("{}", sample()).contains("Matrix 2x3"));
    }
}
