//! Summary statistics, circular (phase) statistics, and simple filters.
//!
//! RFID phase measurements live on the circle `[0, 2π)`, so several
//! quantities the LION pipeline needs (the hardware phase offset of Eq. 17,
//! phase comparisons across antennas) must be computed with circular
//! statistics rather than ordinary means. The linear statistics here back
//! the residual weighting (Eq. 15) and the adaptive parameter selection.

use std::f64::consts::{PI, TAU};

/// Arithmetic mean; `None` for empty input.
///
/// # Example
///
/// ```
/// assert_eq!(lion_linalg::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(lion_linalg::stats::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance; `None` for empty input.
pub fn variance(values: &[f64]) -> Option<f64> {
    Some(variance_with_mean(values, mean(values)?))
}

/// Population variance about a precomputed mean. Identical arithmetic to
/// [`variance`] given `mean(values)`; callers that already hold the mean
/// save a pass over the data.
pub fn variance_with_mean(values: &[f64], mean: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Root mean square; `None` for empty input.
pub fn rms(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some((values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt())
    }
}

/// Median (average of the middle two for even counts); `None` for empty
/// input or when the data contains NaN.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linear-interpolated percentile `p ∈ [0, 100]`; `None` for empty input,
/// NaN data, or `p` out of range.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered above"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Mean absolute value; `None` for empty input.
pub fn mean_abs(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64)
    }
}

/// Normalizes an angle to `[0, 2π)`.
///
/// # Example
///
/// ```
/// use std::f64::consts::PI;
/// let a = lion_linalg::stats::wrap_angle(-PI / 2.0);
/// assert!((a - 1.5 * PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(theta: f64) -> f64 {
    let r = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself for tiny negative inputs.
    if r >= TAU {
        r - TAU
    } else {
        r
    }
}

/// Signed smallest difference `a − b` on the circle, in `(−π, π]`.
///
/// # Example
///
/// ```
/// use std::f64::consts::PI;
/// let d = lion_linalg::stats::circular_diff(0.1, 2.0 * PI - 0.1);
/// assert!((d - 0.2).abs() < 1e-12);
/// ```
pub fn circular_diff(a: f64, b: f64) -> f64 {
    let d = wrap_angle(a - b);
    if d > PI {
        d - TAU
    } else {
        d
    }
}

/// Circular mean of angles in radians; `None` for empty input or when the
/// resultant vector collapses to zero (uniformly spread angles have no
/// meaningful mean).
///
/// Used to average the per-sample phase-offset estimates in the calibration
/// step (paper Eq. 17): offsets near `0` and near `2π` must average to `~0`,
/// not to `π`.
pub fn circular_mean(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0_f64, 0.0_f64), |(s, c), &a| (s + a.sin(), c + a.cos()));
    let norm = (s * s + c * c).sqrt() / angles.len() as f64;
    if norm < 1e-12 {
        return None;
    }
    Some(wrap_angle(s.atan2(c)))
}

/// Circular standard deviation `√(−2·ln R)` where `R` is the mean resultant
/// length; `None` for empty input.
pub fn circular_std_dev(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0_f64, 0.0_f64), |(s, c), &a| (s + a.sin(), c + a.cos()));
    let r = ((s * s + c * c).sqrt() / angles.len() as f64).clamp(0.0, 1.0);
    if r == 0.0 {
        return Some(f64::INFINITY);
    }
    Some((-2.0 * r.ln()).sqrt())
}

/// Centered moving-average filter with the given window size (the paper's
/// smoothing step, Sec. IV-A2). Windows are truncated at the edges so the
/// output has the same length as the input.
///
/// A `window` of 0 or 1 returns the input unchanged.
///
/// # Example
///
/// ```
/// let smoothed = lion_linalg::stats::moving_average(&[1.0, 5.0, 1.0], 3);
/// assert!((smoothed[1] - 7.0 / 3.0).abs() < 1e-12);
/// ```
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    moving_average_into(values, window, &mut prefix, &mut out);
    out
}

/// [`moving_average`] into caller-provided buffers, reusing their
/// allocations. `prefix` is scratch for the prefix sums; `out` receives
/// the smoothed values. Bit-identical to [`moving_average`] (same
/// operations in the same order) — the streaming and adaptive-sweep hot
/// paths rely on that to stay exactly in parity with the batch path.
pub fn moving_average_into(
    values: &[f64],
    window: usize,
    prefix: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    out.clear();
    if window <= 1 || values.len() <= 1 {
        out.extend_from_slice(values);
        return;
    }
    let n = values.len();
    // Prefix sums for O(n) averaging.
    prefix.clear();
    prefix.push(0.0);
    for &v in values {
        prefix.push(prefix.last().expect("seeded with 0.0") + v);
    }
    out.resize(n, 0.0);
    crate::simd::sliding_mean_from_prefix(prefix, window, out);
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Handy for long reader traces where collecting everything before
/// computing statistics would be wasteful.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Current population variance; `None` before any observation.
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.m2 / self.count as f64)
        }
    }

    /// Current population standard deviation; `None` before any observation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(variance(&v), Some(4.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn rms_and_mean_abs() {
        assert_eq!(rms(&[3.0, -4.0]), Some((12.5_f64).sqrt()));
        assert_eq!(mean_abs(&[1.0, -3.0]), Some(2.0));
        assert_eq!(rms(&[]), None);
    }

    #[test]
    fn median_and_percentiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), Some(4.0));
        assert_eq!(percentile(&[1.0, 2.0], 101.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn wrapping() {
        assert!((wrap_angle(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert!((wrap_angle(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        let w = wrap_angle(-1e-18);
        assert!((0.0..TAU).contains(&w));
    }

    #[test]
    fn circular_difference() {
        assert!((circular_diff(0.2, 0.1) - 0.1).abs() < 1e-12);
        assert!((circular_diff(0.1, 0.2) + 0.1).abs() < 1e-12);
        // Across the wrap point.
        assert!((circular_diff(TAU - 0.1, 0.1) + 0.2).abs() < 1e-12);
        // Antipodal maps to +π.
        assert!((circular_diff(PI, 0.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_near_wrap() {
        let angles = [0.1, TAU - 0.1];
        let m = circular_mean(&angles).unwrap();
        assert!(m < 1e-9 || (TAU - m) < 1e-9, "mean {m}");
        assert_eq!(circular_mean(&[]), None);
        // Uniformly spread angles have no mean.
        assert_eq!(circular_mean(&[0.0, PI / 2.0, PI, 1.5 * PI]), None);
    }

    #[test]
    fn circular_std() {
        let tight = circular_std_dev(&[1.0, 1.01, 0.99]).unwrap();
        assert!(tight < 0.1);
        let spread = circular_std_dev(&[0.0, 2.0, 4.0]).unwrap();
        assert!(spread > tight);
        assert_eq!(circular_std_dev(&[]), None);
    }

    #[test]
    fn moving_average_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(moving_average(&v, 1), v.to_vec());
        assert_eq!(moving_average(&v, 0), v.to_vec());
        let s = moving_average(&v, 3);
        assert_eq!(s.len(), v.len());
        assert!((s[2] - 3.0).abs() < 1e-12);
        // Constant input is a fixed point of smoothing.
        let c = moving_average(&[2.0; 6], 4);
        assert!(c.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_reduces_noise_energy() {
        // Alternating noise around 0 should shrink.
        let v: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = moving_average(&v, 5);
        assert!(rms(&s).unwrap() < rms(&v).unwrap());
    }

    #[test]
    fn running_stats_matches_batch() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        rs.extend(v.iter().copied());
        assert_eq!(rs.count(), 8);
        assert!((rs.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((rs.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((rs.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(RunningStats::new().mean(), None);
    }
}
