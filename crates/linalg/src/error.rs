use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
///
/// All public fallible operations return [`crate::Result`] with this error
/// type; nothing in the public API panics on bad numeric input.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix/vector dimensions do not line up for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Dimensions that were actually supplied, formatted for display.
        found: String,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized or inverted.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// The system is rank deficient below the requested tolerance.
    RankDeficient {
        /// Estimated numerical rank.
        rank: usize,
        /// Number of columns (full rank expected).
        cols: usize,
    },
    /// An iterative algorithm failed to converge within its iteration cap.
    NonConvergence {
        /// The algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// Input was empty where at least one element is required.
    EmptyInput {
        /// The operation that received the empty input.
        operation: &'static str,
    },
    /// Input contained a NaN or infinite value.
    NotFinite {
        /// The operation that received the non-finite input.
        operation: &'static str,
    },
}

impl LinalgError {
    /// A stable snake_case label for this error's variant, independent of
    /// the variant's payload — the same taxonomy contract as
    /// `CoreError::kind` in `lion-core` (used for failure counters and
    /// the workspace-wide `lion::Error::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            LinalgError::DimensionMismatch { .. } => "dimension_mismatch",
            LinalgError::Singular => "singular",
            LinalgError::NotPositiveDefinite => "not_positive_definite",
            LinalgError::RankDeficient { .. } => "rank_deficient",
            LinalgError::NonConvergence { .. } => "non_convergence",
            LinalgError::EmptyInput { .. } => "empty_input",
            LinalgError::NotFinite { .. } => "not_finite",
        }
    }
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { operation, found } => {
                write!(f, "dimension mismatch in {operation}: {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::RankDeficient { rank, cols } => {
                write!(f, "rank deficient system: rank {rank} of {cols} columns")
            }
            LinalgError::NonConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::EmptyInput { operation } => {
                write!(f, "empty input supplied to {operation}")
            }
            LinalgError::NotFinite { operation } => {
                write!(f, "non-finite value supplied to {operation}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            LinalgError::DimensionMismatch {
                operation: "mul",
                found: "2x3 * 2x2".to_string(),
            },
            LinalgError::Singular,
            LinalgError::NotPositiveDefinite,
            LinalgError::RankDeficient { rank: 2, cols: 4 },
            LinalgError::NonConvergence {
                algorithm: "irls",
                iterations: 50,
            },
            LinalgError::EmptyInput { operation: "mean" },
            LinalgError::NotFinite { operation: "qr" },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
