use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// In-place Cholesky factorization of a flat row-major `n × n` buffer.
///
/// Only the lower triangle is read; on success the lower triangle holds
/// `L` (the strict upper triangle is left untouched and must never be
/// read). This is the single factorization kernel shared by
/// [`Cholesky::decompose`] and the incremental
/// [`crate::NormalEq`] solver — both paths run
/// exactly the same arithmetic, so their factors are bit-identical.
///
/// # Errors
///
/// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
/// strictly positive (or not finite).
pub(crate) fn factor_in_place(l: &mut [f64], n: usize) -> Result<(), LinalgError> {
    debug_assert_eq!(l.len(), n * n);
    for j in 0..n {
        let mut d = l[j * n + j];
        for k in 0..j {
            d -= l[j * n + k] * l[j * n + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let dj = d.sqrt();
        l[j * n + j] = dj;
        for i in (j + 1)..n {
            let mut s = l[i * n + j];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            l[i * n + j] = s / dj;
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ·x = b` in place given a factor produced by
/// [`factor_in_place`]; `b` is overwritten with the solution. Shared by
/// [`Cholesky::solve`] and [`crate::NormalEq::solve`].
pub(crate) fn solve_in_place(l: &[f64], n: usize, b: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // L·y = b
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * n + j] * b[j];
        }
        b[i] = s / l[i * n + i];
    }
    // Lᵀ·x = y
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l[j * n + i] * b[j];
        }
        b[i] = s / l[i * n + i];
    }
}

/// Cholesky decomposition `A = L·Lᵀ` for symmetric positive-definite
/// matrices.
///
/// The LION weighted-least-squares step solves `(AᵀWA)·x = AᵀWk`; the left
/// side is symmetric positive definite whenever the design matrix has full
/// column rank and all weights are positive, so Cholesky is the fastest
/// correct solver for it.
///
/// # Example
///
/// ```
/// use lion_linalg::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::decompose(&a)?;
/// let x = ch.solve(&Vector::from_slice(&[8.0, 7.0]))?;
/// let back = a.mul_vector(&x)?;
/// assert!((back[0] - 8.0).abs() < 1e-12 && (back[1] - 7.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part is garbage and never read).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper part is
    /// assumed, matching the output of [`Matrix::gram`].
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] for non-square input,
    /// - [`LinalgError::NotFinite`] for NaN/inf input,
    /// - [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
    ///   strictly positive.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky decompose",
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite {
                operation: "cholesky decompose",
            });
        }
        let n = a.rows();
        let mut l = a.clone();
        factor_in_place(l.as_mut_slice(), n)?;
        Ok(Cholesky { l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky solve",
                found: format!("rhs length {} for dim {n}", b.len()),
            });
        }
        let mut y = b.clone();
        solve_in_place(self.l.as_slice(), n, y.as_mut_slice());
        Ok(y)
    }

    /// Returns the lower-triangular factor `L` with the upper part zeroed.
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |r, c| if c <= r { self.l[(r, c)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_input() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let l = Cholesky::decompose(&a).unwrap().l();
        let back = l.mul_matrix(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn known_factor() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let l = Cholesky::decompose(&a).unwrap().l();
        let expect =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[6.0, 1.0, 0.0], &[-8.0, 5.0, 3.0]]).unwrap();
        assert!(l.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn solve_agrees_with_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]).unwrap();
        let b = Vector::from_slice(&[4.0, 3.0]);
        let x_ch = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve_square(&a, &b).unwrap();
        for (p, q) in x_ch.as_slice().iter().zip(x_lu.as_slice()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::decompose(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn zero_matrix_rejected() {
        assert_eq!(
            Cholesky::decompose(&Matrix::zeros(2, 2)).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let ch = Cholesky::decompose(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&Vector::zeros(3)).is_err());
    }
}
