//! Runtime-dispatched SIMD kernels for the solve pipeline's hot stages.
//!
//! Five kernels cover the stages that dominate a LION solve — phase
//! unwrap, moving-average (Savitzky–Golay degree-0) smoothing,
//! radical-line row assembly, the fixed-width Gram accumulation behind
//! [`crate::NormalEq`], and the IRLS Gaussian-weight exponential. Each
//! kernel exists twice: a portable scalar reference (`*_scalar`) and an
//! explicit-width `core::arch` twin (AVX2 on x86_64, NEON on aarch64)
//! selected once at runtime by [`active`].
//!
//! # Bit-identical contract
//!
//! Every SIMD twin produces **bit-identical** `f64` results to its scalar
//! reference, on every input. This is not an accuracy nicety: the
//! batch/stream parity suites assert `==` between estimates produced by
//! different code paths, and the incremental re-solver's replay oracle
//! only works if a replayed window reproduces the original solve exactly.
//! The twins therefore restrict themselves to operations that are
//! correctly rounded per IEEE 754 and identical per lane — add, sub, mul,
//! div, sqrt, floor, max — applied in the same order as the scalar loop.
//! In particular **no FMA is ever used** (a fused multiply-add rounds
//! once where the scalar code rounds twice) and no summation order is
//! changed (reductions keep their per-accumulator order; lanes only ever
//! hold *independent* accumulators).
//!
//! # Dispatch
//!
//! [`detected`] probes the CPU once (cached in an atomic); [`active`]
//! additionally honors a process-wide override installed with [`force`],
//! which tests use to pin the scalar fallback regardless of host CPU.
//! The `LION_SIMD` environment variable (`scalar` / `avx2` / `neon` /
//! `auto`) overrides detection at first use, for CI runs that must
//! exercise the fallback. Forcing a backend the CPU cannot run clamps to
//! [`Backend::Scalar`], so dispatch is always sound.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel implementation family, selected once at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable reference implementation; always available and always the
    /// semantics the SIMD twins must reproduce bit-for-bit.
    Scalar,
    /// 256-bit AVX2 kernels (x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON kernels (aarch64 baseline).
    Neon,
}

impl Backend {
    /// Stable lowercase name, used by bench `env` blocks and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// 0 = not probed yet; otherwise `encode(backend)`.
static DETECTED: AtomicU8 = AtomicU8::new(0);
/// 0 = no override; otherwise `encode(backend)`.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    }
}

fn decode(v: u8) -> Backend {
    match v {
        2 => Backend::Avx2,
        3 => Backend::Neon,
        _ => Backend::Scalar,
    }
}

/// Whether this process can actually execute `b`'s instructions.
fn available(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => false,
        Backend::Neon => cfg!(target_arch = "aarch64"),
    }
}

fn probe() -> Backend {
    if let Ok(v) = std::env::var("LION_SIMD") {
        match v.to_ascii_lowercase().as_str() {
            "scalar" => return Backend::Scalar,
            "avx2" if available(Backend::Avx2) => return Backend::Avx2,
            "neon" if available(Backend::Neon) => return Backend::Neon,
            // Unknown or unavailable value: fall through to detection.
            _ => {}
        }
    }
    if available(Backend::Avx2) {
        Backend::Avx2
    } else if available(Backend::Neon) {
        Backend::Neon
    } else {
        Backend::Scalar
    }
}

/// The backend runtime detection picked for this CPU (cached after the
/// first call; `LION_SIMD` overrides it at first use).
pub fn detected() -> Backend {
    match DETECTED.load(Ordering::Relaxed) {
        0 => {
            let b = probe();
            DETECTED.store(encode(b), Ordering::Relaxed);
            b
        }
        v => decode(v),
    }
}

/// Installs (or with `None` removes) a process-wide backend override.
///
/// Tests use this to exercise the scalar fallback on any host. Because
/// the kernels are bit-identical, flipping the override mid-run changes
/// no result — only which instructions compute it. A forced backend the
/// CPU cannot execute silently clamps to [`Backend::Scalar`].
pub fn force(backend: Option<Backend>) {
    FORCED.store(backend.map_or(0, encode), Ordering::Relaxed);
}

/// The backend kernels dispatch to right now: the [`force`]d override if
/// one is installed (clamped to what the CPU supports), else
/// [`detected`].
pub fn active() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        0 => detected(),
        v => {
            let b = decode(v);
            if available(b) {
                b
            } else {
                Backend::Scalar
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel 1: elementwise exp for non-positive arguments (IRLS weights).
// ---------------------------------------------------------------------------

/// The digits spell out the exact Cody–Waite hi/lo split of ln 2.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_2e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// 1.5·2⁵²: adding then subtracting rounds to the nearest integer and
/// leaves that integer in the sum's low mantissa bits.
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// Elementwise `x → exp(x)` for non-positive `x`, in place.
///
/// This is the Gaussian-weight hot path shared by the QR
/// ([`crate::lstsq::solve_irls_with`]) and normal-equation
/// ([`crate::solve_irls_normal`]) IRLS loops: one `exp` per equation per
/// iteration, so a libm call each would dominate the whole reweight.
/// Instead: Cody–Waite reduction `x = n·ln2 + r` (`|r| ≤ ln2/2`), a
/// degree-9 Taylor polynomial for `exp(r)` (remainder below 7e-12 on the
/// reduced range — noise at the scale of a reliability weight), and an
/// exact power-of-two scale assembled from the shift trick's mantissa
/// bits. One tolerance, one kernel: every IRLS path funnels here.
pub fn exp_non_positive(xs: &mut [f64]) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::exp_non_positive(xs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon => unsafe { neon::exp_non_positive(xs) },
        _ => exp_non_positive_scalar(xs),
    }
}

/// Scalar reference for [`exp_non_positive`]; the body is straight-line
/// arithmetic with no branches, calls, or float→int conversions.
pub fn exp_non_positive_scalar(xs: &mut [f64]) {
    for x in xs {
        debug_assert!(*x <= 0.0);
        // exp(-690) ≈ 1e-300 — an effectively zero weight — and the
        // clamp keeps the 2ⁿ scale inside normal-number range.
        let v = x.max(-690.0);
        let t = v * std::f64::consts::LOG2_E + SHIFT;
        let n = t - SHIFT;
        let r = (v - n * LN2_HI) - n * LN2_LO;
        let p = 1.0 / 362_880.0;
        let p = 1.0 / 40_320.0 + r * p;
        let p = 1.0 / 5_040.0 + r * p;
        let p = 1.0 / 720.0 + r * p;
        let p = 1.0 / 120.0 + r * p;
        let p = 1.0 / 24.0 + r * p;
        let p = 1.0 / 6.0 + r * p;
        let p = 0.5 + r * p;
        let p = 1.0 + r * p;
        let p = 1.0 + r * p;
        // n ∈ [-996, 0] lives in t's low mantissa bits (mod 2¹²), so the
        // biased exponent (n + 1023) << 52 comes straight from them.
        let scale = f64::from_bits(t.to_bits().wrapping_add(1023) << 52);
        *x = p * scale;
    }
}

// ---------------------------------------------------------------------------
// Kernel 2: phase unwrap (paper Sec. IV-A1).
// ---------------------------------------------------------------------------

const TAU: f64 = std::f64::consts::TAU;
const INV_TAU: f64 = 1.0 / std::f64::consts::TAU;

/// Unwraps a `[0, 2π)`-wrapped phase sequence in place, using `revs` as
/// scratch (resized to `phases.len()`, contents overwritten).
///
/// Three passes: (1) per-gap revolution counts
/// `rᵢ = ⌊(θᵢ − θᵢ₋₁)/2π + ½⌋` — data-parallel; (2) a scalar prefix sum
/// turning gap counts into per-sample offsets `mᵢ = mᵢ₋₁ − rᵢ` (exact
/// small integers in `f64`); (3) `θᵢ ← θᵢ + mᵢ·2π` — data-parallel.
/// The floor form reproduces the classic `while |jump| ≥ π` loop's
/// half-open `[−π, π)` normalization interval, including the `+π`
/// boundary.
pub fn phase_unwrap_in_place(phases: &mut [f64], revs: &mut Vec<f64>) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::phase_unwrap_in_place(phases, revs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon => unsafe { neon::phase_unwrap_in_place(phases, revs) },
        _ => phase_unwrap_in_place_scalar(phases, revs),
    }
}

/// Scalar reference for [`phase_unwrap_in_place`].
pub fn phase_unwrap_in_place_scalar(phases: &mut [f64], revs: &mut Vec<f64>) {
    let n = phases.len();
    revs.clear();
    revs.resize(n, 0.0);
    if n < 2 {
        return;
    }
    for i in 1..n {
        revs[i] = ((phases[i] - phases[i - 1]) * INV_TAU + 0.5).floor();
    }
    unwrap_integrate_and_apply(phases, revs);
}

/// Passes 2 + 3 of the unwrap, shared verbatim by every backend: the
/// prefix sum is inherently sequential (and exact — the counts are small
/// integers), and the scalar apply loop keeps the tail handling in one
/// place. Backends may run pass 3 with SIMD as long as each element stays
/// the same `θᵢ + mᵢ·2π` (separate mul then add, never fused).
fn unwrap_integrate_and_apply(phases: &mut [f64], revs: &mut [f64]) {
    let mut m = 0.0;
    for r in revs[1..].iter_mut() {
        m -= *r;
        *r = m;
    }
    for (p, &m) in phases.iter_mut().zip(revs.iter()) {
        *p += m * TAU;
    }
}

// ---------------------------------------------------------------------------
// Kernel 3: centered moving-average smoothing from a prefix sum.
// ---------------------------------------------------------------------------

/// Fills `out[i] = (prefix[hi] − prefix[lo]) / (hi − lo)` with the
/// centered window `[lo, hi) = [i − ⌊w/2⌋, i + ⌊w/2⌋ + (w mod 2))`
/// clamped to the sequence — exactly the spans
/// [`crate::stats::moving_average_into`] documents. `prefix` must hold
/// the running sums (`prefix[0] = 0`, `prefix.len() = out.len() + 1`);
/// `window ≥ 2`. Interior samples (where the window is unclamped) divide
/// by the constant window width and vectorize; the clamped edges stay
/// scalar.
pub fn sliding_mean_from_prefix(prefix: &[f64], window: usize, out: &mut [f64]) {
    debug_assert_eq!(prefix.len(), out.len() + 1);
    debug_assert!(window >= 2);
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns Avx2 when the CPU supports it.
        Backend::Avx2 => unsafe { avx2::sliding_mean_from_prefix(prefix, window, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon => unsafe { neon::sliding_mean_from_prefix(prefix, window, out) },
        _ => sliding_mean_from_prefix_scalar(prefix, window, out),
    }
}

/// Scalar reference for [`sliding_mean_from_prefix`].
pub fn sliding_mean_from_prefix_scalar(prefix: &[f64], window: usize, out: &mut [f64]) {
    let n = out.len();
    sliding_mean_edges(prefix, window, out, 0, n);
}

/// The fully general (clamped-window) scalar loop over `[from, to)`;
/// SIMD backends use it for the edges and any interior tail.
fn sliding_mean_edges(prefix: &[f64], window: usize, out: &mut [f64], from: usize, to: usize) {
    let n = out.len();
    let half = window / 2;
    let odd = window % 2;
    for (i, o) in out[from..to].iter_mut().enumerate() {
        let i = from + i;
        let lo = i.saturating_sub(half);
        let hi = (i + half + odd).min(n).max(lo + 1);
        *o = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
    }
}

/// The index range `[start, end)` where the centered window is unclamped
/// (width exactly `window`), so the divisor is constant.
fn sliding_mean_interior(n: usize, window: usize) -> (usize, usize) {
    let half = window / 2;
    let odd = window % 2;
    let start = half.min(n);
    let end = (n + 1).saturating_sub(half + odd).clamp(start, n);
    (start, end)
}

// ---------------------------------------------------------------------------
// Kernel 4: radical-line row assembly (paper Eqs. 7, 9, 12).
// ---------------------------------------------------------------------------

/// Assembles the stacked radical-line system from axis-major coordinates.
///
/// `coords` holds `k` contiguous axis slices of length `n` (axis `c` at
/// `coords[c·n .. (c+1)·n]`); `deltas` has length `n`. Pair `(i, j)` from
/// the parallel `pair_i`/`pair_j` index slices becomes one row of
/// `design` (row-major, `k + 1` columns): `2(cᵢ − cⱼ)` per axis, then
/// `2(Δdᵢ − Δdⱼ)`, with `rhs = Σ_c (cᵢ² − cⱼ²) − (Δdᵢ² − Δdⱼ²)`. The
/// arithmetic (including the accumulation order of the right-hand side)
/// is identical to the row-major AoS assembly in `lion-core`'s
/// `build_system`, so both produce bit-identical systems.
///
/// Callers validate; this kernel only debug-asserts. Indices are `i32`
/// so the x86 path can feed them straight into vector gathers.
#[allow(clippy::too_many_arguments)]
pub fn radical_rows(
    coords: &[f64],
    n: usize,
    k: usize,
    deltas: &[f64],
    pair_i: &[i32],
    pair_j: &[i32],
    design: &mut [f64],
    rhs: &mut [f64],
) {
    debug_assert_eq!(coords.len(), n * k);
    debug_assert_eq!(deltas.len(), n);
    debug_assert_eq!(pair_i.len(), rhs.len());
    debug_assert_eq!(pair_j.len(), rhs.len());
    debug_assert_eq!(design.len(), rhs.len() * (k + 1));
    debug_assert!(pair_i.iter().chain(pair_j).all(|&x| (x as usize) < n));
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns Avx2 when the CPU supports it;
        // index bounds are the caller's (debug-asserted) contract.
        Backend::Avx2 => unsafe {
            avx2::radical_rows(coords, n, k, deltas, pair_i, pair_j, design, rhs)
        },
        // The gather-heavy inner loop has no NEON win (no gather
        // instruction); aarch64 runs the scalar reference.
        _ => radical_rows_scalar(coords, n, k, deltas, pair_i, pair_j, design, rhs),
    }
}

/// Scalar reference for [`radical_rows`].
#[allow(clippy::too_many_arguments)]
pub fn radical_rows_scalar(
    coords: &[f64],
    n: usize,
    k: usize,
    deltas: &[f64],
    pair_i: &[i32],
    pair_j: &[i32],
    design: &mut [f64],
    rhs: &mut [f64],
) {
    radical_rows_range(
        coords,
        n,
        k,
        deltas,
        pair_i,
        pair_j,
        design,
        rhs,
        0,
        rhs.len(),
    );
}

/// The general scalar row loop over rows `[from, to)`; SIMD backends use
/// it for `k ≠ 1` and tails.
#[allow(clippy::too_many_arguments)]
fn radical_rows_range(
    coords: &[f64],
    n: usize,
    k: usize,
    deltas: &[f64],
    pair_i: &[i32],
    pair_j: &[i32],
    design: &mut [f64],
    rhs: &mut [f64],
    from: usize,
    to: usize,
) {
    let stride = k + 1;
    for row in from..to {
        let i = pair_i[row] as usize;
        let j = pair_j[row] as usize;
        let out = &mut design[row * stride..row * stride + stride];
        let mut kappa = 0.0;
        for (c, o) in out[..k].iter_mut().enumerate() {
            let ci = coords[c * n + i];
            let cj = coords[c * n + j];
            *o = 2.0 * (ci - cj);
            kappa += ci * ci - cj * cj;
        }
        let di = deltas[i];
        let dj = deltas[j];
        out[k] = 2.0 * (di - dj);
        kappa -= di * di - dj * dj;
        rhs[row] = kappa;
    }
}

// ---------------------------------------------------------------------------
// Kernel 5: fixed-width weighted Gram accumulation (NormalEq bulk path).
// ---------------------------------------------------------------------------

/// Sums `Σ wᵢ·aᵢaᵢᵀ` (lower triangle; upper entries stay 0) and
/// `Σ wᵢ·aᵢ·kᵢ` over every stored row, accumulators held in registers.
/// `weights[i]` supplies the per-row factor — the stored weight for
/// rebuilds, the weight *delta* for reweights.
///
/// Each Gram entry sees the same terms added in the same (row) order as
/// repeated single-row accumulation, so a bulk rebuild stays
/// bit-identical to an incremental row-at-a-time build of the same
/// system; the SIMD twins keep that order by giving each Gram entry its
/// own lane (lanes never share an accumulator).
pub fn gram_fixed<const N: usize>(
    rows: &[f64],
    rhs: &[f64],
    weights: &[f64],
) -> ([[f64; N]; N], [f64; N]) {
    debug_assert_eq!(rows.len(), rhs.len() * N);
    debug_assert_eq!(weights.len(), rhs.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns Avx2 when the CPU supports it.
        Backend::Avx2 if N >= 2 && N <= 4 => unsafe { avx2::gram_fixed::<N>(rows, rhs, weights) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon if N == 2 || N == 4 => unsafe { neon::gram_fixed::<N>(rows, rhs, weights) },
        _ => gram_fixed_scalar::<N>(rows, rhs, weights),
    }
}

/// Scalar reference for [`gram_fixed`].
pub fn gram_fixed_scalar<const N: usize>(
    rows: &[f64],
    rhs: &[f64],
    weights: &[f64],
) -> ([[f64; N]; N], [f64; N]) {
    let mut gram = [[0.0; N]; N];
    let mut atk = [0.0; N];
    for ((chunk, &k), &w) in rows.chunks_exact(N).zip(rhs).zip(weights) {
        let a: &[f64; N] = chunk.try_into().expect("chunk length equals N");
        for r in 0..N {
            let wa = w * a[r];
            for c in 0..=r {
                gram[r][c] += wa * a[c];
            }
            atk[r] += wa * k;
        }
    }
    (gram, atk)
}

// ---------------------------------------------------------------------------
// AVX2 twins (x86_64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn exp_non_positive(xs: &mut [f64]) {
        let n = xs.len();
        let clamp = _mm256_set1_pd(-690.0);
        let log2e = _mm256_set1_pd(std::f64::consts::LOG2_E);
        let shift = _mm256_set1_pd(SHIFT);
        let ln2hi = _mm256_set1_pd(LN2_HI);
        let ln2lo = _mm256_set1_pd(LN2_LO);
        let bias = _mm256_set1_epi64x(1023);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let v = _mm256_max_pd(x, clamp);
            let t = _mm256_add_pd(_mm256_mul_pd(v, log2e), shift);
            let nv = _mm256_sub_pd(t, shift);
            let r = _mm256_sub_pd(
                _mm256_sub_pd(v, _mm256_mul_pd(nv, ln2hi)),
                _mm256_mul_pd(nv, ln2lo),
            );
            let mut p = _mm256_set1_pd(1.0 / 362_880.0);
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 40_320.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 5_040.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 720.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 120.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 24.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0 / 6.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(r, p));
            p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(r, p));
            let scale = _mm256_castsi256_pd(_mm256_slli_epi64(
                _mm256_add_epi64(_mm256_castpd_si256(t), bias),
                52,
            ));
            _mm256_storeu_pd(xs.as_mut_ptr().add(i), _mm256_mul_pd(p, scale));
            i += 4;
        }
        super::exp_non_positive_scalar(&mut xs[i..]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn phase_unwrap_in_place(phases: &mut [f64], revs: &mut Vec<f64>) {
        let n = phases.len();
        revs.clear();
        revs.resize(n, 0.0);
        if n < 2 {
            return;
        }
        let inv_tau = _mm256_set1_pd(INV_TAU);
        let half = _mm256_set1_pd(0.5);
        let mut i = 1;
        while i + 4 <= n {
            let cur = _mm256_loadu_pd(phases.as_ptr().add(i));
            let prev = _mm256_loadu_pd(phases.as_ptr().add(i - 1));
            let r = _mm256_floor_pd(_mm256_add_pd(
                _mm256_mul_pd(_mm256_sub_pd(cur, prev), inv_tau),
                half,
            ));
            _mm256_storeu_pd(revs.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            revs[i] = ((phases[i] - phases[i - 1]) * INV_TAU + 0.5).floor();
            i += 1;
        }
        // Pass 2 stays scalar (sequential dependency); pass 3 is the
        // elementwise `θᵢ + mᵢ·2π` apply, shared with the scalar twin.
        super::unwrap_integrate_and_apply(phases, revs);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sliding_mean_from_prefix(prefix: &[f64], window: usize, out: &mut [f64]) {
        let n = out.len();
        let (start, end) = super::sliding_mean_interior(n, window);
        super::sliding_mean_edges(prefix, window, out, 0, start);
        let half = window / 2;
        let odd = window % 2;
        let inv = _mm256_set1_pd(window as f64);
        let mut i = start;
        while i + 4 <= end {
            let hi = _mm256_loadu_pd(prefix.as_ptr().add(i + half + odd));
            let lo = _mm256_loadu_pd(prefix.as_ptr().add(i - half));
            let mean = _mm256_div_pd(_mm256_sub_pd(hi, lo), inv);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), mean);
            i += 4;
        }
        super::sliding_mean_edges(prefix, window, out, i, n);
    }

    /// # Safety
    /// Caller must have verified AVX2 support and that every pair index
    /// is in `0..n`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn radical_rows(
        coords: &[f64],
        n: usize,
        k: usize,
        deltas: &[f64],
        pair_i: &[i32],
        pair_j: &[i32],
        design: &mut [f64],
        rhs: &mut [f64],
    ) {
        let m = rhs.len();
        if k != 1 {
            // Multi-axis frames are the cold shape (non-collinear scans);
            // the strided column writes don't pay for gathers there.
            super::radical_rows_range(coords, n, k, deltas, pair_i, pair_j, design, rhs, 0, m);
            return;
        }
        let two = _mm256_set1_pd(2.0);
        let mut row = 0;
        while row + 4 <= m {
            let ii = _mm_loadu_si128(pair_i.as_ptr().add(row).cast());
            let jj = _mm_loadu_si128(pair_j.as_ptr().add(row).cast());
            let ci = _mm256_i32gather_pd::<8>(coords.as_ptr(), ii);
            let cj = _mm256_i32gather_pd::<8>(coords.as_ptr(), jj);
            let di = _mm256_i32gather_pd::<8>(deltas.as_ptr(), ii);
            let dj = _mm256_i32gather_pd::<8>(deltas.as_ptr(), jj);
            let a = _mm256_mul_pd(two, _mm256_sub_pd(ci, cj));
            let b = _mm256_mul_pd(two, _mm256_sub_pd(di, dj));
            // rhs: (cᵢ² − cⱼ²) − (Δdᵢ² − Δdⱼ²), same two-step order as
            // the scalar loop (`kappa += …; kappa -= …`).
            let csq = _mm256_sub_pd(_mm256_mul_pd(ci, ci), _mm256_mul_pd(cj, cj));
            let dsq = _mm256_sub_pd(_mm256_mul_pd(di, di), _mm256_mul_pd(dj, dj));
            let kappa = _mm256_sub_pd(csq, dsq);
            // Interleave [a, b] into the row-major 2-column design block.
            let lo = _mm256_unpacklo_pd(a, b); // a0 b0 a2 b2
            let hi = _mm256_unpackhi_pd(a, b); // a1 b1 a3 b3
            let r01 = _mm256_permute2f128_pd::<0x20>(lo, hi); // a0 b0 a1 b1
            let r23 = _mm256_permute2f128_pd::<0x31>(lo, hi); // a2 b2 a3 b3
            _mm256_storeu_pd(design.as_mut_ptr().add(row * 2), r01);
            _mm256_storeu_pd(design.as_mut_ptr().add(row * 2 + 4), r23);
            _mm256_storeu_pd(rhs.as_mut_ptr().add(row), kappa);
            row += 4;
        }
        super::radical_rows_range(coords, n, k, deltas, pair_i, pair_j, design, rhs, row, m);
    }

    /// Broadcast lane `r` of a 4-lane vector (compile-time unrolled).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast(v: __m256d, r: usize) -> __m256d {
        match r {
            0 => _mm256_permute4x64_pd::<0x00>(v),
            1 => _mm256_permute4x64_pd::<0x55>(v),
            2 => _mm256_permute4x64_pd::<0xAA>(v),
            _ => _mm256_permute4x64_pd::<0xFF>(v),
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support; `2 ≤ N ≤ 4`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gram_fixed<const N: usize>(
        rows: &[f64],
        rhs: &[f64],
        weights: &[f64],
    ) -> ([[f64; N]; N], [f64; N]) {
        // Lane mask for partial row loads when N < 4 (maskload never
        // touches the masked-off lanes, so the last row cannot read past
        // the buffer).
        let mask = _mm256_setr_epi64x(
            -1,
            -1,
            if N >= 3 { -1 } else { 0 },
            if N >= 4 { -1 } else { 0 },
        );
        let mut acc = [_mm256_setzero_pd(); N];
        let mut acc_atk = _mm256_setzero_pd();
        for (row, (&k, &w)) in rhs.iter().zip(weights).enumerate() {
            let p = rows.as_ptr().add(row * N);
            let a = if N == 4 {
                _mm256_loadu_pd(p)
            } else {
                _mm256_maskload_pd(p, mask)
            };
            // wa[c] = w·a[c] — each lane is exactly the scalar loop's
            // `wa` for the matching Gram row.
            let wa = _mm256_mul_pd(_mm256_set1_pd(w), a);
            for (r, acc_r) in acc.iter_mut().enumerate() {
                *acc_r = _mm256_add_pd(*acc_r, _mm256_mul_pd(bcast(wa, r), a));
            }
            acc_atk = _mm256_add_pd(acc_atk, _mm256_mul_pd(wa, _mm256_set1_pd(k)));
        }
        let mut gram = [[0.0; N]; N];
        let mut atk = [0.0; N];
        let mut lanes = [0.0_f64; 4];
        for (r, acc_r) in acc.iter().enumerate() {
            _mm256_storeu_pd(lanes.as_mut_ptr(), *acc_r);
            // Keep only the lower triangle, matching the scalar kernel
            // (upper entries stay 0 and are never read downstream).
            gram[r][..=r].copy_from_slice(&lanes[..=r]);
        }
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc_atk);
        atk.copy_from_slice(&lanes[..N]);
        (gram, atk)
    }
}

// ---------------------------------------------------------------------------
// NEON twins (aarch64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unused_unsafe)]
mod neon {
    use super::*;
    use core::arch::aarch64::*;

    /// # Safety
    /// NEON is baseline on aarch64; kept `unsafe` for dispatch symmetry.
    pub(super) unsafe fn exp_non_positive(xs: &mut [f64]) {
        let n = xs.len();
        let clamp = vdupq_n_f64(-690.0);
        let log2e = vdupq_n_f64(std::f64::consts::LOG2_E);
        let shift = vdupq_n_f64(SHIFT);
        let ln2hi = vdupq_n_f64(LN2_HI);
        let ln2lo = vdupq_n_f64(LN2_LO);
        let bias = vdupq_n_u64(1023);
        let mut i = 0;
        while i + 2 <= n {
            let x = vld1q_f64(xs.as_ptr().add(i));
            let v = vmaxq_f64(x, clamp);
            let t = vaddq_f64(vmulq_f64(v, log2e), shift);
            let nv = vsubq_f64(t, shift);
            let r = vsubq_f64(vsubq_f64(v, vmulq_f64(nv, ln2hi)), vmulq_f64(nv, ln2lo));
            let mut p = vdupq_n_f64(1.0 / 362_880.0);
            p = vaddq_f64(vdupq_n_f64(1.0 / 40_320.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0 / 5_040.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0 / 720.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0 / 120.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0 / 24.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0 / 6.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(0.5), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0), vmulq_f64(r, p));
            p = vaddq_f64(vdupq_n_f64(1.0), vmulq_f64(r, p));
            let scale =
                vreinterpretq_f64_u64(vshlq_n_u64::<52>(vaddq_u64(vreinterpretq_u64_f64(t), bias)));
            vst1q_f64(xs.as_mut_ptr().add(i), vmulq_f64(p, scale));
            i += 2;
        }
        super::exp_non_positive_scalar(&mut xs[i..]);
    }

    /// # Safety
    /// NEON is baseline on aarch64; kept `unsafe` for dispatch symmetry.
    pub(super) unsafe fn phase_unwrap_in_place(phases: &mut [f64], revs: &mut Vec<f64>) {
        let n = phases.len();
        revs.clear();
        revs.resize(n, 0.0);
        if n < 2 {
            return;
        }
        let inv_tau = vdupq_n_f64(INV_TAU);
        let half = vdupq_n_f64(0.5);
        let mut i = 1;
        while i + 2 <= n {
            let cur = vld1q_f64(phases.as_ptr().add(i));
            let prev = vld1q_f64(phases.as_ptr().add(i - 1));
            let r = vrndmq_f64(vaddq_f64(vmulq_f64(vsubq_f64(cur, prev), inv_tau), half));
            vst1q_f64(revs.as_mut_ptr().add(i), r);
            i += 2;
        }
        while i < n {
            revs[i] = ((phases[i] - phases[i - 1]) * INV_TAU + 0.5).floor();
            i += 1;
        }
        super::unwrap_integrate_and_apply(phases, revs);
    }

    /// # Safety
    /// NEON is baseline on aarch64; kept `unsafe` for dispatch symmetry.
    pub(super) unsafe fn sliding_mean_from_prefix(prefix: &[f64], window: usize, out: &mut [f64]) {
        let n = out.len();
        let (start, end) = super::sliding_mean_interior(n, window);
        super::sliding_mean_edges(prefix, window, out, 0, start);
        let half = window / 2;
        let odd = window % 2;
        let width = vdupq_n_f64(window as f64);
        let mut i = start;
        while i + 2 <= end {
            let hi = vld1q_f64(prefix.as_ptr().add(i + half + odd));
            let lo = vld1q_f64(prefix.as_ptr().add(i - half));
            vst1q_f64(out.as_mut_ptr().add(i), vdivq_f64(vsubq_f64(hi, lo), width));
            i += 2;
        }
        super::sliding_mean_edges(prefix, window, out, i, n);
    }

    /// # Safety
    /// NEON is baseline on aarch64; `N` must be 2 or 4.
    pub(super) unsafe fn gram_fixed<const N: usize>(
        rows: &[f64],
        rhs: &[f64],
        weights: &[f64],
    ) -> ([[f64; N]; N], [f64; N]) {
        let mut gram = [[0.0; N]; N];
        let mut atk = [0.0; N];
        // Per Gram row: ⌈N/2⌉ two-lane accumulators; lanes are distinct
        // Gram entries, so per-entry addition order matches the scalar
        // row-at-a-time loop exactly.
        let mut acc = [[vdupq_n_f64(0.0); 2]; N];
        let mut acc_atk = [vdupq_n_f64(0.0); 2];
        for (row, (&k, &w)) in rhs.iter().zip(weights).enumerate() {
            let p = rows.as_ptr().add(row * N);
            let a0 = vld1q_f64(p);
            let a1 = if N == 4 {
                vld1q_f64(p.add(2))
            } else {
                vdupq_n_f64(0.0)
            };
            let wv = vdupq_n_f64(w);
            let wa0 = vmulq_f64(wv, a0);
            let wa1 = vmulq_f64(wv, a1);
            for r in 0..N {
                let war = match r {
                    0 => vdupq_laneq_f64::<0>(wa0),
                    1 => vdupq_laneq_f64::<1>(wa0),
                    2 => vdupq_laneq_f64::<0>(wa1),
                    _ => vdupq_laneq_f64::<1>(wa1),
                };
                acc[r][0] = vaddq_f64(acc[r][0], vmulq_f64(war, a0));
                if N == 4 {
                    acc[r][1] = vaddq_f64(acc[r][1], vmulq_f64(war, a1));
                }
            }
            let kv = vdupq_n_f64(k);
            acc_atk[0] = vaddq_f64(acc_atk[0], vmulq_f64(wa0, kv));
            if N == 4 {
                acc_atk[1] = vaddq_f64(acc_atk[1], vmulq_f64(wa1, kv));
            }
        }
        let mut lanes = [0.0_f64; 4];
        for r in 0..N {
            vst1q_f64(lanes.as_mut_ptr(), acc[r][0]);
            if N == 4 {
                vst1q_f64(lanes.as_mut_ptr().add(2), acc[r][1]);
            }
            gram[r][..=r].copy_from_slice(&lanes[..=r]);
        }
        vst1q_f64(lanes.as_mut_ptr(), acc_atk[0]);
        if N == 4 {
            vst1q_f64(lanes.as_mut_ptr().add(2), acc_atk[1]);
        }
        atk.copy_from_slice(&lanes[..N]);
        (gram, atk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_roundtrip_and_names() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(decode(encode(b)), b);
            assert!(!b.name().is_empty());
        }
        assert!(available(Backend::Scalar));
    }

    #[test]
    fn force_clamps_to_available() {
        force(Some(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        force(None);
        assert_eq!(active(), detected());
    }

    #[test]
    fn unwrap_matches_while_loop_reference() {
        // The classic reference: normalize each jump into [-π, π) with a
        // while loop, accumulating an offset.
        fn reference(wrapped: &[f64]) -> Vec<f64> {
            let tau = std::f64::consts::TAU;
            let mut out = Vec::new();
            let mut offset = 0.0;
            let mut prev: Option<f64> = None;
            for &theta in wrapped {
                if let Some(p) = prev {
                    let mut jump = theta - p;
                    while jump >= std::f64::consts::PI {
                        jump -= tau;
                        offset -= tau;
                    }
                    while jump < -std::f64::consts::PI {
                        jump += tau;
                        offset += tau;
                    }
                }
                out.push(theta + offset);
                prev = Some(theta);
            }
            out
        }
        let wrapped = [
            0.3,
            0.1,
            2.0 * std::f64::consts::PI - 0.1,
            0.2,
            3.0,
            6.0,
            0.05,
        ];
        let mut phases = wrapped.to_vec();
        let mut revs = Vec::new();
        phase_unwrap_in_place_scalar(&mut phases, &mut revs);
        for (a, b) in phases.iter().zip(reference(&wrapped)) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sliding_mean_interior_bounds() {
        assert_eq!(sliding_mean_interior(10, 5), (2, 8));
        assert_eq!(sliding_mean_interior(10, 4), (2, 9));
        assert_eq!(sliding_mean_interior(3, 7), (3, 3)); // window wider than data
    }
}
