//! Plain, weighted, and iteratively-reweighted least squares.
//!
//! This module implements the estimation machinery of the LION paper
//! (Sec. IV-B2): the optimal solution of the radical-line system is
//! `X* = (AᵀWA)⁻¹AᵀWK` (paper Eq. 16), with the weight of each equation
//! derived from its residual as `wᵢ = exp(−(rᵢ−μ)²/(2σ²))` (paper Eq. 15),
//! iterated until the estimate stabilizes.

use crate::cholesky::Cholesky;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::stats;
use crate::svd::Svd;
use crate::vector::Vector;

/// Weighting scheme applied to equation residuals between IRLS iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum WeightFunction {
    /// The paper's Gaussian-of-residual weight (Eq. 15):
    /// `wᵢ = exp(−(rᵢ−μ)²/(2σ²))` with `μ, σ` the mean/std of all residuals.
    #[default]
    GaussianResidual,
    /// Huber weights: `1` for `|r| ≤ delta`, `delta/|r|` beyond. A classical
    /// robust alternative kept for ablation studies.
    Huber {
        /// Transition point between quadratic and linear loss.
        delta: f64,
    },
    /// All weights equal to one — degrades IRLS to ordinary least squares.
    Uniform,
}

impl WeightFunction {
    /// Computes a weight per residual.
    pub fn weights(&self, residuals: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.weights_into(residuals, &mut out);
        out
    }

    /// Computes a weight per residual into `out`, reusing its allocation.
    ///
    /// Identical to [`WeightFunction::weights`] but allocation-free once
    /// `out` has grown to the batch size — the IRLS loop calls this once per
    /// iteration.
    pub fn weights_into(&self, residuals: &[f64], out: &mut Vec<f64>) {
        let (sum, sumsq) = residuals
            .iter()
            .fold((0.0_f64, 0.0_f64), |(s, q), &r| (s + r, q + r * r));
        self.weights_into_with_stats(residuals, sum, sumsq, out);
    }

    /// [`WeightFunction::weights_into`] for callers that already hold
    /// `Σr` and `Σr²` accumulated left-to-right over `residuals` (e.g.
    /// fused into the residual computation itself) — the results are
    /// identical, one pass cheaper.
    pub fn weights_into_with_stats(
        &self,
        residuals: &[f64],
        sum: f64,
        sumsq: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        match *self {
            WeightFunction::Uniform => out.resize(residuals.len(), 1.0),
            WeightFunction::Huber { delta } => out.extend(residuals.iter().map(|r| {
                let a = r.abs();
                if a <= delta || a == 0.0 {
                    1.0
                } else {
                    delta / a
                }
            })),
            WeightFunction::GaussianResidual => {
                // σ² = E[r²] − μ² from the fused sums, with a
                // non-negativity guard against cancellation.
                let n = residuals.len();
                let mu = if n == 0 { 0.0 } else { sum / n as f64 };
                let sigma2 = if n == 0 {
                    0.0
                } else {
                    (sumsq / n as f64 - mu * mu).max(0.0)
                };
                if sigma2 < MIN_SIGMA * MIN_SIGMA {
                    // Residuals are (numerically) identical: equations are
                    // equally reliable, weight them uniformly.
                    out.resize(n, 1.0);
                    return;
                }
                // Hoist the division out of the row loop: z²/2 becomes a
                // multiply by 1/(2σ²) per equation. The exponentiation
                // runs as a second branch-free pass over the slice so it
                // can vectorize.
                let inv_two_sigma2 = 0.5 / sigma2;
                out.extend(residuals.iter().map(|r| {
                    let d = r - mu;
                    -(d * d) * inv_two_sigma2
                }));
                // One weight kernel, one tolerance: every IRLS path (QR
                // and normal-equation) derives its Gaussian weights
                // through `simd::exp_non_positive`, whose accuracy
                // contract (relative error below 7e-12 on the reduced
                // range) is documented once, there.
                crate::simd::exp_non_positive(out);
            }
        }
    }
}

/// Residual spread below which the Gaussian weight collapses to uniform.
const MIN_SIGMA: f64 = 1e-12;

/// Configuration for [`solve_irls`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrlsConfig {
    /// Maximum number of reweighting iterations (the first plain LS solve is
    /// not counted). The paper iterates "until the difference between the
    /// last estimation and the current estimation is less than the given
    /// threshold".
    pub max_iterations: usize,
    /// Convergence threshold on `‖xₖ − xₖ₋₁‖∞`.
    pub tolerance: f64,
    /// Weighting scheme.
    pub weight_fn: WeightFunction,
}

impl Default for IrlsConfig {
    fn default() -> Self {
        IrlsConfig {
            max_iterations: 20,
            tolerance: 1e-8,
            weight_fn: WeightFunction::GaussianResidual,
        }
    }
}

/// Reusable scratch buffers for the (weighted) least-squares hot loop.
///
/// [`solve_irls`] clones the design matrix and right-hand side once per
/// reweighting iteration; on a batch of hundreds of solves those clones
/// dominate the allocator profile. A `LstsqScratch` keeps one scaled-system
/// copy plus weight/residual buffers alive across solves so steady-state
/// iterations allocate nothing. The batch engine gives each worker its own
/// scratch.
///
/// # Example
///
/// ```
/// use lion_linalg::{lstsq, IrlsConfig, LstsqScratch, Matrix, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let k = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let mut scratch = LstsqScratch::new();
/// let report = lstsq::solve_irls_with(&a, &k, &IrlsConfig::default(), &mut scratch)?;
/// assert!((report.solution[0] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LstsqScratch {
    scaled: Matrix,
    rhs: Vector,
    weights: Vec<f64>,
    residuals: Vec<f64>,
}

impl LstsqScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        LstsqScratch {
            scaled: Matrix::zeros(0, 0),
            rhs: Vector::zeros(0),
            weights: Vec::new(),
            residuals: Vec::new(),
        }
    }
}

impl Default for LstsqScratch {
    fn default() -> Self {
        LstsqScratch::new()
    }
}

/// Result of an iteratively-reweighted least-squares run.
#[derive(Debug, Clone, PartialEq)]
pub struct IrlsReport {
    /// The final estimate `X*`.
    pub solution: Vector,
    /// Final per-equation weights.
    pub weights: Vec<f64>,
    /// Final per-equation residuals `rᵢ = Aᵢ·X* − kᵢ`.
    pub residuals: Vec<f64>,
    /// Number of reweighting iterations performed.
    pub iterations: usize,
    /// Plain mean of the final residuals. The LION adaptive parameter
    /// selection picks the configuration whose mean residual is closest to
    /// zero (paper Sec. IV-C1, evaluated in Figs. 16–18).
    pub mean_residual: f64,
    /// Weighted root-mean-square residual.
    pub weighted_rms: f64,
    /// Whether the iteration converged before hitting `max_iterations`.
    pub converged: bool,
}

/// Solves `min ‖A·x − k‖₂` by Householder QR.
///
/// # Errors
///
/// Propagates [`Qr::decompose`]/[`Qr::solve_least_squares`] errors; in
/// particular [`LinalgError::RankDeficient`] signals the caller to use the
/// lower-dimension path.
pub fn solve(a: &Matrix, k: &Vector) -> Result<Vector, LinalgError> {
    Qr::decompose(a)?.solve_least_squares(k)
}

/// Solves the rank-deficient-tolerant least squares via the SVD
/// pseudo-inverse (minimum-norm solution).
///
/// # Errors
///
/// Propagates [`Svd::decompose`] errors.
pub fn solve_min_norm(a: &Matrix, k: &Vector) -> Result<Vector, LinalgError> {
    Svd::decompose(a)?.solve_min_norm(k, 1e-12)
}

/// Solves `min Σ wᵢ·(Aᵢ·x − kᵢ)²` (paper Eq. 14/16).
///
/// Internally scales each row by `√wᵢ` and solves by QR, which is
/// algebraically identical to `(AᵀWA)⁻¹AᵀWK` but better conditioned.
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] when shapes disagree,
/// - [`LinalgError::NotFinite`] when a weight is negative or non-finite,
/// - factorization errors from [`Qr`].
pub fn solve_weighted(a: &Matrix, k: &Vector, weights: &[f64]) -> Result<Vector, LinalgError> {
    let mut scaled = Matrix::zeros(0, 0);
    let mut rhs = Vector::zeros(0);
    solve_weighted_into(a, k, weights, &mut scaled, &mut rhs)
}

/// [`solve_weighted`] with caller-provided buffers for the scaled system.
///
/// `scaled`/`rhs` are overwritten; reusing them across calls (as
/// [`solve_irls_with`] does through a [`LstsqScratch`]) removes the
/// per-iteration clone of the design matrix.
fn solve_weighted_into(
    a: &Matrix,
    k: &Vector,
    weights: &[f64],
    scaled: &mut Matrix,
    rhs: &mut Vector,
) -> Result<Vector, LinalgError> {
    let (m, n) = a.shape();
    if k.len() != m || weights.len() != m {
        return Err(LinalgError::DimensionMismatch {
            operation: "weighted least squares",
            found: format!("{m}x{n} design, rhs {}, {} weights", k.len(), weights.len()),
        });
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(LinalgError::NotFinite {
            operation: "weighted least squares (weights)",
        });
    }
    scaled.copy_from(a);
    rhs.copy_from(k);
    for r in 0..m {
        let s = weights[r].sqrt();
        for c in 0..n {
            scaled[(r, c)] *= s;
        }
        rhs[r] *= s;
    }
    Qr::decompose(scaled)?.solve_least_squares(rhs)
}

/// Solves the weighted problem through the normal equations
/// `(AᵀWA)·x = AᵀWk` with a Cholesky factorization — the literal form of
/// paper Eq. 16. Faster than the QR route for tall-thin systems; used by the
/// benchmarks to compare both.
///
/// # Errors
///
/// Same as [`solve_weighted`], plus [`LinalgError::NotPositiveDefinite`]
/// when the weighted Gram matrix is singular.
pub fn solve_weighted_normal_equations(
    a: &Matrix,
    k: &Vector,
    weights: &[f64],
) -> Result<Vector, LinalgError> {
    let gram = a.weighted_gram(weights)?;
    let rhs = a.weighted_transpose_mul_vector(weights, k)?;
    Cholesky::decompose(&gram)?.solve(&rhs)
}

/// Computes the per-row residuals `rᵢ = Aᵢ·x − kᵢ`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when shapes disagree.
pub fn residuals(a: &Matrix, k: &Vector, x: &Vector) -> Result<Vec<f64>, LinalgError> {
    let mut out = Vec::new();
    residuals_into(a, k, x, &mut out)?;
    Ok(out)
}

/// [`residuals`] into a caller-provided buffer, reusing its allocation.
///
/// Computes each row's dot product directly instead of materializing
/// `A·x` — this runs once per IRLS iteration, and the intermediate vector
/// used to be the loop's only unavoidable allocation. The per-row sum
/// folds left-to-right exactly like [`Matrix::mul_vector`], so results
/// are bit-identical to the old route.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when shapes disagree.
pub fn residuals_into(
    a: &Matrix,
    k: &Vector,
    x: &Vector,
    out: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    let (m, n) = a.shape();
    if k.len() != m || x.len() != n {
        return Err(LinalgError::DimensionMismatch {
            operation: "residuals",
            found: format!("{m}x{n} design, rhs {}, x {}", k.len(), x.len()),
        });
    }
    out.clear();
    for r in 0..m {
        let dot: f64 = a.row(r).iter().zip(x.as_slice()).map(|(p, q)| p * q).sum();
        out.push(dot - k[r]);
    }
    Ok(())
}

/// Iteratively-reweighted least squares: the full LION estimation loop.
///
/// 1. Solve plain LS for an initial `X*` (paper Eq. 13).
/// 2. Compute residuals, derive weights (paper Eq. 15).
/// 3. Solve WLS (paper Eq. 16); repeat from 2 until the estimate moves less
///    than `config.tolerance` or `config.max_iterations` is reached.
///
/// # Errors
///
/// Propagates factorization errors; [`LinalgError::RankDeficient`] from the
/// initial solve indicates a lower-dimension geometry.
///
/// # Example
///
/// ```
/// use lion_linalg::{lstsq, IrlsConfig, Matrix, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[1.0, -1.0]])?;
/// let k = Vector::from_slice(&[1.0, 2.0, 3.0, -1.0]);
/// let report = lstsq::solve_irls(&a, &k, &IrlsConfig::default())?;
/// assert!((report.solution[0] - 1.0).abs() < 1e-9);
/// assert!((report.solution[1] - 2.0).abs() < 1e-9);
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn solve_irls(a: &Matrix, k: &Vector, config: &IrlsConfig) -> Result<IrlsReport, LinalgError> {
    solve_irls_with(a, k, config, &mut LstsqScratch::new())
}

/// [`solve_irls`] with a caller-provided [`LstsqScratch`].
///
/// Bit-identical to [`solve_irls`] (same operations in the same order), but
/// the per-iteration scaled-system copy, weight vector, and residual vector
/// live in `scratch` and are reused across calls. This is the entry point
/// the batch engine's per-worker solver workspaces drive.
///
/// # Errors
///
/// Same as [`solve_irls`].
pub fn solve_irls_with(
    a: &Matrix,
    k: &Vector,
    config: &IrlsConfig,
    scratch: &mut LstsqScratch,
) -> Result<IrlsReport, LinalgError> {
    let LstsqScratch {
        scaled,
        rhs,
        weights,
        residuals: res,
    } = scratch;
    let mut x = solve(a, k)?;
    residuals_into(a, k, &x, res)?;
    config.weight_fn.weights_into(res, weights);
    let mut iterations = 0;
    let mut converged = matches!(config.weight_fn, WeightFunction::Uniform);
    if !converged {
        for _ in 0..config.max_iterations {
            iterations += 1;
            let x_new = solve_weighted_into(a, k, weights, scaled, rhs)?;
            let delta = x_new
                .as_slice()
                .iter()
                .zip(x.as_slice())
                .fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()));
            x = x_new;
            residuals_into(a, k, &x, res)?;
            config.weight_fn.weights_into(res, weights);
            if delta < config.tolerance {
                converged = true;
                break;
            }
        }
    }
    let mean_residual = stats::mean(res).unwrap_or(0.0);
    let wsum: f64 = weights.iter().sum();
    let weighted_rms = if wsum > 0.0 {
        (res.iter()
            .zip(weights.iter())
            .map(|(r, w)| w * r * r)
            .sum::<f64>()
            / wsum)
            .sqrt()
    } else {
        0.0
    };
    Ok(IrlsReport {
        solution: x,
        weights: weights.clone(),
        residuals: res.clone(),
        iterations,
        mean_residual,
        weighted_rms,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_system() -> (Matrix, Vector) {
        // y = 2x + 1 with one gross outlier at the end.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let mut k: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        k[7] += 10.0; // outlier
        (a, Vector::from_slice(&k))
    }

    #[test]
    fn plain_ls_exact_on_clean_data() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let k = Vector::from_slice(&[3.0, 4.0, 7.0]);
        let x = solve(&a, &k).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ls_downweights_outlier() {
        let (a, k) = line_system();
        // Zero weight on the outlier row recovers the exact line.
        let mut w = vec![1.0; 8];
        w[7] = 0.0;
        let x = solve_weighted(&a, &k, &w).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn weighted_routes_agree() {
        let (a, k) = line_system();
        let w = [1.0, 0.5, 2.0, 1.0, 0.1, 1.0, 3.0, 0.7];
        let x_qr = solve_weighted(&a, &k, &w).unwrap();
        let x_ne = solve_weighted_normal_equations(&a, &k, &w).unwrap();
        for (p, q) in x_qr.as_slice().iter().zip(x_ne.as_slice()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_weights_match_plain_ls() {
        let (a, k) = line_system();
        let x_plain = solve(&a, &k).unwrap();
        let x_w = solve_weighted(&a, &k, &[1.0; 8]).unwrap();
        for (p, q) in x_plain.as_slice().iter().zip(x_w.as_slice()) {
            assert!((p - q).abs() < 1e-11);
        }
    }

    #[test]
    fn negative_weight_rejected() {
        let (a, k) = line_system();
        let mut w = vec![1.0; 8];
        w[0] = -1.0;
        assert!(matches!(
            solve_weighted(&a, &k, &w),
            Err(LinalgError::NotFinite { .. })
        ));
    }

    #[test]
    fn weight_length_checked() {
        let (a, k) = line_system();
        assert!(solve_weighted(&a, &k, &[1.0; 3]).is_err());
    }

    #[test]
    fn irls_beats_plain_ls_with_outlier() {
        let (a, k) = line_system();
        let plain = solve(&a, &k).unwrap();
        let irls = solve_irls(&a, &k, &IrlsConfig::default()).unwrap();
        let err = |x: &Vector| ((x[0] - 2.0).powi(2) + (x[1] - 1.0).powi(2)).sqrt();
        assert!(
            err(&irls.solution) < err(&plain),
            "irls {:?} should beat plain {:?}",
            irls.solution,
            plain
        );
        assert!(irls.iterations >= 1);
        // The outlier equation must have received the smallest weight.
        let min_idx = irls
            .weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_idx, 7);
    }

    #[test]
    fn irls_on_clean_data_converges_immediately() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]).unwrap();
        let x_true = Vector::from_slice(&[1.5, -0.5]);
        let k = a.mul_vector(&x_true).unwrap();
        let report = solve_irls(&a, &k, &IrlsConfig::default()).unwrap();
        assert!(report.converged);
        for (p, q) in report.solution.as_slice().iter().zip(x_true.as_slice()) {
            assert!((p - q).abs() < 1e-10);
        }
        assert!(report.mean_residual.abs() < 1e-10);
        assert!(report.weighted_rms < 1e-10);
    }

    #[test]
    fn irls_uniform_equals_plain() {
        let (a, k) = line_system();
        let cfg = IrlsConfig {
            weight_fn: WeightFunction::Uniform,
            ..IrlsConfig::default()
        };
        let report = solve_irls(&a, &k, &cfg).unwrap();
        let plain = solve(&a, &k).unwrap();
        for (p, q) in report.solution.as_slice().iter().zip(plain.as_slice()) {
            assert!((p - q).abs() < 1e-12);
        }
        assert_eq!(report.iterations, 0);
        assert!(report.converged);
    }

    #[test]
    fn huber_weights_shape() {
        let w = WeightFunction::Huber { delta: 1.0 }.weights(&[0.5, -2.0, 0.0]);
        assert_eq!(w[0], 1.0);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert_eq!(w[2], 1.0);
    }

    #[test]
    fn gaussian_weights_uniform_when_residuals_identical() {
        let w = WeightFunction::GaussianResidual.weights(&[0.3, 0.3, 0.3]);
        assert_eq!(w, vec![1.0; 3]);
    }

    #[test]
    fn gaussian_weights_penalize_outlier() {
        let w = WeightFunction::GaussianResidual.weights(&[0.0, 0.1, -0.1, 5.0]);
        assert!(w[3] < w[0]);
        assert!(w[3] < w[1]);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn residual_helper_checks_dims() {
        let a = Matrix::identity(2);
        assert!(residuals(&a, &Vector::zeros(2), &Vector::zeros(2)).is_ok());
        assert!(residuals(&a, &Vector::zeros(2), &Vector::zeros(3)).is_err());
    }

    #[test]
    fn exp_slice_matches_libm_exp() {
        // Dense sweep over the weight function's whole useful range plus
        // the clamp region; relative error must stay far below anything
        // a reliability weight can influence.
        let mut xs: Vec<f64> = (0..=200_000).map(|i| -i as f64 * 0.0004).collect();
        let want: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        crate::simd::exp_non_positive(&mut xs);
        for ((got, want), i) in xs.iter().zip(&want).zip(0..) {
            let rel = (got - want).abs() / want.max(f64::MIN_POSITIVE);
            assert!(
                rel < 1e-11,
                "exp({}) = {got}, libm {want}, rel {rel}",
                -i as f64 * 0.0004
            );
        }
        let mut edge = [0.0, -690.1, -1.0e4];
        crate::simd::exp_non_positive(&mut edge);
        assert_eq!(edge[0], 1.0);
        assert!(edge[1] > 0.0 && edge[1] < 1e-299);
        assert_eq!(edge[1], edge[2]);
    }

    #[test]
    fn gaussian_weights_match_explicit_formula() {
        let residuals = [0.3, -0.1, 0.05, 0.8, -0.4, 0.0];
        let mu: f64 = residuals.iter().sum::<f64>() / residuals.len() as f64;
        let sigma2 =
            residuals.iter().map(|r| (r - mu) * (r - mu)).sum::<f64>() / residuals.len() as f64;
        let w = WeightFunction::GaussianResidual.weights(&residuals);
        for (r, got) in residuals.iter().zip(&w) {
            let z2 = (r - mu) * (r - mu) / sigma2;
            assert!((got - (-0.5 * z2).exp()).abs() < 1e-9, "weight for r={r}");
        }
    }

    #[test]
    fn min_norm_handles_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let k = Vector::from_slice(&[2.0, 4.0, 6.0]);
        assert!(matches!(
            solve(&a, &k),
            Err(LinalgError::RankDeficient { .. })
        ));
        let x = solve_min_norm(&a, &k).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }
}
