use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Householder QR decomposition `A = Q·R` for `m ≥ n` matrices.
///
/// This is the numerically preferred path for the overdetermined
/// least-squares systems that the LION radical-line model produces: solving
/// through QR avoids squaring the condition number, unlike the
/// normal-equation route.
///
/// # Example
///
/// ```
/// use lion_linalg::{Matrix, Qr, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let qr = Qr::decompose(&a)?;
/// let x = qr.solve_least_squares(&Vector::from_slice(&[1.0, 1.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on/above it.
    factors: Matrix,
    /// The scalar `beta` for each Householder reflector.
    betas: Vec<f64>,
    /// Diagonal of R (kept separately for rank queries).
    r_diag: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] when `rows < cols`,
    /// - [`LinalgError::NotFinite`] when the input contains NaN/inf.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr decompose",
                found: format!("{m}x{n} (needs rows >= cols)"),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite {
                operation: "qr decompose",
            });
        }
        let mut f = a.clone();
        let mut betas = vec![0.0; n];
        let mut r_diag = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0_f64;
            for r in k..m {
                norm = norm.hypot(f[(r, k)]);
            }
            if norm == 0.0 {
                betas[k] = 0.0;
                r_diag[k] = 0.0;
                continue;
            }
            let alpha = if f[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha*e1, stored in place with v[k] normalized to 1.
            let v_k = f[(k, k)] - alpha;
            for r in (k + 1)..m {
                let scaled = f[(r, k)] / v_k;
                f[(r, k)] = scaled;
            }
            f[(k, k)] = 1.0;
            betas[k] = -v_k / alpha;
            r_diag[k] = alpha;
            // Apply the reflector to the trailing columns.
            for c in (k + 1)..n {
                let mut s = 0.0;
                for r in k..m {
                    s += f[(r, k)] * f[(r, c)];
                }
                s *= betas[k];
                for r in k..m {
                    let sub = s * f[(r, k)];
                    f[(r, c)] -= sub;
                }
            }
        }
        Ok(Qr {
            factors: f,
            betas,
            r_diag,
        })
    }

    /// Number of rows of the factorized matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factorized matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_q_transpose(&self, b: &mut Vector) {
        let (m, n) = self.factors.shape();
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = b[k]; // v[k] == 1
            for r in (k + 1)..m {
                s += self.factors[(r, k)] * b[r];
            }
            s *= self.betas[k];
            b[k] -= s;
            for r in (k + 1)..m {
                let sub = s * self.factors[(r, k)];
                b[r] -= sub;
            }
        }
    }

    /// Estimated numerical rank from the diagonal of `R`.
    ///
    /// Counts diagonal entries above `tol · max|diag|`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.r_diag.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if max == 0.0 {
            return 0;
        }
        self.r_diag.iter().filter(|v| v.abs() > tol * max).count()
    }

    /// Solves `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] when `b.len() != rows`,
    /// - [`LinalgError::RankDeficient`] when `R` has a (near-)zero pivot —
    ///   callers should fall back to the lower-dimension path of the LION
    ///   model in that case.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let (m, n) = self.factors.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr least squares",
                found: format!("rhs length {} for {m} rows", b.len()),
            });
        }
        let rank = self.rank(1e-10);
        if rank < n {
            return Err(LinalgError::RankDeficient { rank, cols: n });
        }
        let mut y = b.clone();
        self.apply_q_transpose(&mut y);
        // Back substitution on R (diagonal in r_diag, rest in factors).
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s / self.r_diag[i];
        }
        Ok(x)
    }

    /// Reconstructs the upper-triangular factor `R` (size `cols × cols`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |r, c| {
            if r == c {
                self.r_diag[r]
            } else if r < c {
                self.factors[(r, c)]
            } else {
                0.0
            }
        })
    }

    /// Reconstructs the thin orthogonal factor `Q` (size `rows × cols`).
    pub fn q(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let mut q = Matrix::from_fn(m, n, |r, c| if r == c { 1.0 } else { 0.0 });
        // Apply reflectors in reverse to the identity columns.
        for k in (0..n).rev() {
            if self.betas[k] == 0.0 {
                continue;
            }
            for c in 0..n {
                let mut s = q[(k, c)];
                for r in (k + 1)..m {
                    s += self.factors[(r, k)] * q[(r, c)];
                }
                s *= self.betas[k];
                q[(k, c)] -= s;
                for r in (k + 1)..m {
                    let sub = s * self.factors[(r, k)];
                    q[(r, c)] -= sub;
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall();
        let qr = Qr::decompose(&a).unwrap();
        let prod = qr.q().mul_matrix(&qr.r()).unwrap();
        assert!(prod.approx_eq(&a, 1e-10), "Q*R != A:\n{prod}\n{a}");
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let qr = Qr::decompose(&tall()).unwrap();
        let q = qr.q();
        let gram = q.transpose().mul_matrix(&q).unwrap();
        assert!(gram.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn least_squares_matches_line_fit() {
        // Fit y = 3x - 2 exactly.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[-2.0, 1.0, 4.0, 7.0]);
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = tall();
        let b = Vector::from_slice(&[1.0, -1.0, 2.0, 0.5]);
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations must hold at the optimum: Aᵀ(Ax − b) = 0.
        let ax = a.mul_vector(&x).unwrap();
        let r = &ax - &b;
        let grad = a.transpose_mul_vector(&r).unwrap();
        assert!(grad.norm() < 1e-9, "gradient {grad:?}");
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(Qr::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rank_deficiency_detected() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        assert_eq!(qr.rank(1e-10), 1);
        assert!(matches!(
            qr.solve_least_squares(&Vector::zeros(3)),
            Err(LinalgError::RankDeficient { rank: 1, cols: 2 })
        ));
    }

    #[test]
    fn zero_column_does_not_crash() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        assert_eq!(qr.rank(1e-10), 1);
    }

    #[test]
    fn rhs_length_checked() {
        let qr = Qr::decompose(&tall()).unwrap();
        assert!(qr.solve_least_squares(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn nan_rejected() {
        let mut a = tall();
        a[(0, 0)] = f64::INFINITY;
        assert!(matches!(
            Qr::decompose(&a),
            Err(LinalgError::NotFinite { .. })
        ));
    }
}
