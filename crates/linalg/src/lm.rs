//! Levenberg–Marquardt non-linear least squares.
//!
//! The hyperbola-based TDoA baseline (paper Sec. VI, refs [6, 14–19]) must
//! minimize `Σ (‖p − tᵢ‖ − ‖p − tⱼ‖ − Δd_{ij})²`, a non-linear objective.
//! This module provides a small, dependency-free LM implementation with
//! numerical Jacobians, used by `lion-baselines` — and, in benchmarks, as
//! evidence for the paper's claim that the non-linear route is far more
//! expensive than LION's linear model.

use crate::error::LinalgError;
use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Why the LM iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LmOutcome {
    /// Parameter step fell below the step tolerance.
    SmallStep,
    /// Cost decreased by less than the cost tolerance.
    SmallCostDecrease,
    /// Gradient norm fell below the gradient tolerance.
    SmallGradient,
    /// Hit the iteration cap without meeting any tolerance.
    MaxIterations,
}

/// Result of a Levenberg–Marquardt minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct LmReport {
    /// Final parameter estimate.
    pub solution: Vector,
    /// Final cost `½·Σ rᵢ²`.
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Stopping reason.
    pub outcome: LmOutcome,
}

/// Levenberg–Marquardt minimizer for `min ½‖r(x)‖²`.
///
/// The residual function is user-supplied; the Jacobian is computed by
/// central finite differences.
///
/// # Example
///
/// Fit the center of a circle from noisy radius observations:
///
/// ```
/// use lion_linalg::{LevenbergMarquardt, Vector};
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// let points = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)];
/// let lm = LevenbergMarquardt::new();
/// let report = lm.minimize(&Vector::from_slice(&[0.3, -0.2]), |x, out| {
///     for (i, (px, py)) in points.iter().enumerate() {
///         let d = ((px - x[0]).powi(2) + (py - x[1]).powi(2)).sqrt();
///         out[i] = d - 1.0; // all points at distance 1 from the center
///     }
/// }, points.len())?;
/// assert!(report.solution[0].abs() < 1e-6);
/// assert!(report.solution[1].abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevenbergMarquardt {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop when the parameter step max-norm falls below this.
    pub step_tolerance: f64,
    /// Stop when the relative cost decrease falls below this.
    pub cost_tolerance: f64,
    /// Stop when the gradient max-norm falls below this.
    pub gradient_tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Finite-difference step for the numerical Jacobian.
    pub fd_step: f64,
}

impl Default for LevenbergMarquardt {
    fn default() -> Self {
        LevenbergMarquardt {
            max_iterations: 100,
            step_tolerance: 1e-10,
            cost_tolerance: 1e-12,
            gradient_tolerance: 1e-10,
            initial_lambda: 1e-3,
            fd_step: 1e-6,
        }
    }
}

impl LevenbergMarquardt {
    /// Creates a minimizer with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimizes `½‖r(x)‖²` starting from `x0`.
    ///
    /// `residual_fn(x, out)` must fill `out` (length `residual_len`) with
    /// the residual vector at `x`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::EmptyInput`] when `x0` or the residual is empty,
    /// - [`LinalgError::NotFinite`] when the residual function produces
    ///   NaN/inf at the starting point,
    /// - [`LinalgError::NonConvergence`] when damping grows unboundedly
    ///   (the model cannot be improved in any direction).
    pub fn minimize<F>(
        &self,
        x0: &Vector,
        mut residual_fn: F,
        residual_len: usize,
    ) -> Result<LmReport, LinalgError>
    where
        F: FnMut(&Vector, &mut [f64]),
    {
        let n = x0.len();
        if n == 0 || residual_len == 0 {
            return Err(LinalgError::EmptyInput {
                operation: "levenberg-marquardt",
            });
        }
        let mut x = x0.clone();
        let mut r = vec![0.0; residual_len];
        residual_fn(&x, &mut r);
        if r.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NotFinite {
                operation: "levenberg-marquardt residual",
            });
        }
        let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();
        let mut lambda = self.initial_lambda;
        let mut iterations = 0;
        let mut outcome = LmOutcome::MaxIterations;

        let mut r_plus = vec![0.0; residual_len];
        let mut r_minus = vec![0.0; residual_len];

        'outer: for _ in 0..self.max_iterations {
            iterations += 1;
            // Numerical Jacobian by central differences.
            let mut jac = Matrix::zeros(residual_len, n);
            for c in 0..n {
                let h = self.fd_step * (1.0 + x[c].abs());
                let mut xp = x.clone();
                xp[c] += h;
                residual_fn(&xp, &mut r_plus);
                let mut xm = x.clone();
                xm[c] -= h;
                residual_fn(&xm, &mut r_minus);
                for rr in 0..residual_len {
                    jac[(rr, c)] = (r_plus[rr] - r_minus[rr]) / (2.0 * h);
                }
            }
            // Gradient g = Jᵀ r and Gauss-Newton Hessian H = JᵀJ.
            let rv = Vector::from_slice(&r);
            let grad = jac.transpose_mul_vector(&rv)?;
            if grad.norm_inf() < self.gradient_tolerance {
                outcome = LmOutcome::SmallGradient;
                break;
            }
            let hess = jac.gram();
            // Damped step loop: increase λ until the cost decreases.
            let mut inner_ok = false;
            for _ in 0..50 {
                let mut damped = hess.clone();
                for d in 0..n {
                    damped[(d, d)] += lambda * hess[(d, d)].max(1e-12);
                }
                let step = match Lu::decompose(&damped).and_then(|lu| lu.solve(&grad)) {
                    Ok(s) => s,
                    Err(_) => {
                        lambda *= 10.0;
                        continue;
                    }
                };
                let x_new = &x - &step;
                residual_fn(&x_new, &mut r_plus);
                if r_plus.iter().any(|v| !v.is_finite()) {
                    lambda *= 10.0;
                    continue;
                }
                let cost_new = 0.5 * r_plus.iter().map(|v| v * v).sum::<f64>();
                if cost_new < cost {
                    let step_small = step.norm_inf() < self.step_tolerance;
                    let decrease_small =
                        (cost - cost_new) <= self.cost_tolerance * cost.max(1e-300);
                    x = x_new;
                    r.copy_from_slice(&r_plus);
                    cost = cost_new;
                    lambda = (lambda * 0.3).max(1e-12);
                    inner_ok = true;
                    if step_small {
                        outcome = LmOutcome::SmallStep;
                        break 'outer;
                    }
                    if decrease_small {
                        outcome = LmOutcome::SmallCostDecrease;
                        break 'outer;
                    }
                    break;
                }
                lambda *= 10.0;
                if lambda > 1e12 {
                    // No direction improves the cost: converged to a
                    // stationary point within numerical precision.
                    outcome = LmOutcome::SmallStep;
                    break 'outer;
                }
            }
            if !inner_ok && outcome == LmOutcome::MaxIterations {
                outcome = LmOutcome::SmallStep;
                break;
            }
        }
        Ok(LmReport {
            solution: x,
            cost,
            iterations,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_rosenbrock() {
        // Rosenbrock residuals: r1 = 10(y − x²), r2 = 1 − x; min at (1, 1).
        let lm = LevenbergMarquardt {
            max_iterations: 500,
            ..LevenbergMarquardt::default()
        };
        let report = lm
            .minimize(
                &Vector::from_slice(&[-1.2, 1.0]),
                |x, out| {
                    out[0] = 10.0 * (x[1] - x[0] * x[0]);
                    out[1] = 1.0 - x[0];
                },
                2,
            )
            .unwrap();
        assert!((report.solution[0] - 1.0).abs() < 1e-5, "{report:?}");
        assert!((report.solution[1] - 1.0).abs() < 1e-5);
        assert!(report.cost < 1e-10);
    }

    #[test]
    fn solves_linear_problem_in_one_hop() {
        // r = A x − b with A = I: minimum at x = b.
        let lm = LevenbergMarquardt::new();
        let report = lm
            .minimize(
                &Vector::from_slice(&[0.0, 0.0]),
                |x, out| {
                    out[0] = x[0] - 3.0;
                    out[1] = x[1] + 2.0;
                },
                2,
            )
            .unwrap();
        assert!((report.solution[0] - 3.0).abs() < 1e-8);
        assert!((report.solution[1] + 2.0).abs() < 1e-8);
    }

    #[test]
    fn circle_center_from_distances() {
        let points = [(2.0, 1.0), (0.0, 3.0), (-2.0, 1.0), (0.0, -1.0)];
        // All at distance 2 from center (0, 1).
        let lm = LevenbergMarquardt::new();
        let report = lm
            .minimize(
                &Vector::from_slice(&[0.5, 0.5]),
                |x, out| {
                    for (i, (px, py)) in points.iter().enumerate() {
                        let d = ((px - x[0]).powi(2) + (py - x[1]).powi(2)).sqrt();
                        out[i] = d - 2.0;
                    }
                },
                4,
            )
            .unwrap();
        assert!(report.solution[0].abs() < 1e-6);
        assert!((report.solution[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_rejected() {
        let lm = LevenbergMarquardt::new();
        assert!(lm.minimize(&Vector::zeros(0), |_, _| {}, 1).is_err());
        assert!(lm.minimize(&Vector::zeros(1), |_, _| {}, 0).is_err());
    }

    #[test]
    fn nan_residual_rejected() {
        let lm = LevenbergMarquardt::new();
        let err = lm
            .minimize(&Vector::from_slice(&[1.0]), |_, out| out[0] = f64::NAN, 1)
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotFinite { .. }));
    }

    #[test]
    fn already_at_minimum_stops_quickly() {
        let lm = LevenbergMarquardt::new();
        let report = lm
            .minimize(&Vector::from_slice(&[3.0]), |x, out| out[0] = x[0] - 3.0, 1)
            .unwrap();
        assert!(report.iterations <= 2);
        assert!(report.cost < 1e-20);
    }
}
