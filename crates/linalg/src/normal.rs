//! Incremental normal-equation solver for families of related
//! least-squares problems.
//!
//! The adaptive sweep (paper Sec. IV-C1) solves a 6×6 grid of weighted
//! least-squares problems that share most of their rows: every grid cell
//! draws its equations from the same sample pool, IRLS only changes the
//! weights between iterations, and a wider scanning range's system is a
//! superset of a narrower one's. [`NormalEq`] exploits all three by
//! maintaining the normal equations `AᵀWA · x = AᵀWk` (paper Eq. 16)
//! incrementally:
//!
//! - **Row accumulation** — `push_row` folds `wᵢ·aᵢaᵢᵀ` / `wᵢ·aᵢkᵢ` into
//!   the Gram matrix as rows arrive, so building costs `O(m·n²)` with no
//!   intermediate `m×n` factorization.
//! - **Rank-1 reweighting** — an IRLS weight change `wᵢ → wᵢ + Δwᵢ`
//!   shifts the Gram matrix by `Δwᵢ·aᵢaᵢᵀ`, an `O(n²)` update per changed
//!   row instead of an `O(m·n²)` rebuild. A full rebuild every
//!   `rebuild_every`-th reweight bounds floating-point drift.
//! - **Row insert/remove** — a wider scanning range extends a narrower
//!   one's system in place instead of starting over.
//!
//! Solves go through the same Cholesky kernel as [`crate::Cholesky`]
//! (literally the same function), so the two routes cannot drift.
//!
//! **Determinism contract:** `push_row` accumulates the Gram matrix in
//! push order, and [`NormalEq::rebuild`] re-accumulates in storage order
//! with identical arithmetic. A system built by pushing rows 0..m with
//! unit weights and a system rebuilt from the same stored rows therefore
//! produce *bit-identical* Gram matrices, factors, and solutions — this
//! is what lets the sequential (row-reusing) and parallel (fresh-build)
//! adaptive sweeps return identical results.
//!
//! Accuracy: solving via the normal equations squares the condition
//! number relative to the QR route ([`crate::lstsq::solve_weighted`]),
//! so solutions agree to roughly `κ(A)²·ε` relative error. For the
//! well-conditioned systems the LION model produces this is ≤ ~1e-9;
//! the proptests in `tests/proptests.rs` pin a 1e-6 parity tolerance
//! against QR for random systems with condition number below 1e3.

use crate::cholesky;
use crate::error::LinalgError;
use crate::lstsq::{IrlsConfig, WeightFunction};

/// Default reweight count between full Gram rebuilds.
const DEFAULT_REBUILD_EVERY: usize = 8;

/// Accumulates the lower triangle of `w·a·aᵀ` into `gram` and `w·a·k`
/// into `atk`.
///
/// Only the lower triangle is maintained: the Cholesky routines read
/// nothing above the diagonal, so the mirrored upper entries would be
/// dead work (upper storage stays at the zeros `begin` wrote). This is
/// the single accumulation kernel used by `push_row`, `rebuild`, rank-1
/// reweights (with `w = Δw`), and row removal (with `w = −wᵢ`) —
/// identical per-entry addition order everywhere is what makes fresh
/// builds and rebuilds bit-identical.
fn accumulate(gram: &mut [f64], atk: &mut [f64], cols: usize, a: &[f64], k: f64, w: f64) {
    for r in 0..cols {
        let wa = w * a[r];
        let row = &mut gram[r * cols..r * cols + r + 1];
        for (g, &ac) in row.iter_mut().zip(a) {
            *g += wa * ac;
        }
        atk[r] += wa * k;
    }
}

/// Bulk counterpart of [`accumulate`]: sums `Σ wᵢ·aᵢaᵢᵀ` (lower
/// triangle) and `Σ wᵢ·aᵢ·kᵢ` over every row with the accumulators held
/// in registers for the whole sweep, instead of a read-modify-write of
/// the Gram storage per row. `weights[i]` supplies the per-row factor —
/// the stored weight for rebuilds, the weight *delta* for reweights.
///
/// Each Gram entry sees the same terms added in the same (row) order as
/// repeated [`accumulate`] calls, so a bulk rebuild stays bit-identical
/// to an incremental row-at-a-time build of the same system. The actual
/// accumulation dispatches through [`crate::simd::gram_fixed`], whose
/// SIMD twins uphold the same per-entry order (one Gram entry per lane).
#[inline]
fn bulk_accumulate<const N: usize>(
    rows: &[f64],
    rhs: &[f64],
    weights: &[f64],
) -> ([[f64; N]; N], [f64; N]) {
    crate::simd::gram_fixed::<N>(rows, rhs, weights)
}

/// Fixed-width residual kernel `rᵢ = aᵢ·x − kᵢ` with fused `(Σr, Σr²)`
/// accumulation; same ascending-column summation (from 0) as the generic
/// path, so the values are bit-identical — the constant width just lets
/// the dot product unroll.
#[inline]
fn residuals_fixed<const N: usize>(
    rows: &[f64],
    rhs: &[f64],
    x: &[f64],
    out: &mut Vec<f64>,
) -> (f64, f64) {
    let x: &[f64; N] = x[..N].try_into().expect("solution length equals N");
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    out.extend(rows.chunks_exact(N).zip(rhs).map(|(a, &k)| {
        let mut dot = 0.0;
        for c in 0..N {
            dot += a[c] * x[c];
        }
        let r = dot - k;
        sum += r;
        sumsq += r * r;
        r
    }));
    (sum, sumsq)
}

/// Incrementally maintained weighted normal equations `AᵀWA · x = AᵀWk`.
///
/// All buffers are reused across [`NormalEq::begin`] calls, so a
/// workspace-owned instance performs zero heap allocations in steady
/// state.
///
/// # Example
///
/// ```
/// use lion_linalg::NormalEq;
///
/// # fn main() -> Result<(), lion_linalg::LinalgError> {
/// // Fit y = 2x + 1 from three points.
/// let mut ne = NormalEq::new();
/// ne.begin(2);
/// for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)] {
///     ne.push_row(&[x, 1.0], y);
/// }
/// let sol = ne.solve()?;
/// assert!((sol[0] - 2.0).abs() < 1e-12 && (sol[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NormalEq {
    cols: usize,
    /// Flat row-major `m × cols` copy of the design rows.
    rows: Vec<f64>,
    /// Right-hand side, one entry per row.
    rhs: Vec<f64>,
    /// Current per-row weights (the `W` diagonal).
    weights: Vec<f64>,
    /// Flat row-major `cols × cols` Gram matrix `AᵀWA`; only the lower
    /// triangle is maintained (the upper entries stay zero), matching
    /// what the Cholesky factorization reads.
    gram: Vec<f64>,
    /// `AᵀWk`.
    atk: Vec<f64>,
    /// Cholesky factor scratch (lower triangle valid after a solve).
    chol: Vec<f64>,
    /// Last solution.
    solution: Vec<f64>,
    /// Unit-vector scratch for covariance extraction.
    unit: Vec<f64>,
    /// Weight-delta scratch for bulk reweights.
    wdelta: Vec<f64>,
    /// When set, `gram`/`atk` do not reflect `rows` (rows were inserted
    /// or the caller asked for a deferred rebuild).
    dirty: bool,
    rebuild_every: usize,
    /// Rank-1 Gram edits (reweights, row removals/replacements) since the
    /// last full rebuild — the drift budget. `push_row` does not count:
    /// appending accumulates in storage order, so it is bit-identical to
    /// what a rebuild would produce and introduces no drift.
    updates_since_rebuild: usize,
    gram_rebuilds: u64,
}

impl NormalEq {
    /// An empty system with the default rebuild cadence.
    pub fn new() -> Self {
        Self::with_rebuild_every(DEFAULT_REBUILD_EVERY)
    }

    /// An empty system that fully rebuilds the Gram matrix on every
    /// `rebuild_every`-th reweight (clamped to at least 1; a value of 1
    /// rebuilds on every reweight, disabling rank-1 updates entirely).
    pub fn with_rebuild_every(rebuild_every: usize) -> Self {
        NormalEq {
            cols: 0,
            rows: Vec::new(),
            rhs: Vec::new(),
            weights: Vec::new(),
            gram: Vec::new(),
            atk: Vec::new(),
            chol: Vec::new(),
            solution: Vec::new(),
            unit: Vec::new(),
            wdelta: Vec::new(),
            dirty: false,
            rebuild_every: rebuild_every.max(1),
            updates_since_rebuild: 0,
            gram_rebuilds: 0,
        }
    }

    /// Starts a fresh system with `cols` unknowns, reusing all buffers.
    pub fn begin(&mut self, cols: usize) {
        self.cols = cols;
        self.rows.clear();
        self.rhs.clear();
        self.weights.clear();
        self.gram.clear();
        self.gram.resize(cols * cols, 0.0);
        self.atk.clear();
        self.atk.resize(cols, 0.0);
        self.dirty = false;
        self.updates_since_rebuild = 0;
    }

    /// Loads a whole pre-assembled system in one call: `begin(cols)`,
    /// then every row of the flat row-major `rows` (length a multiple of
    /// `cols`) with its `rhs` entry at unit weight. The Gram matrix is
    /// left dirty and rebuilt on the next solve — in storage order, which
    /// equals push order, so the result is bit-identical to pushing the
    /// rows one at a time (the determinism contract above).
    ///
    /// This is the batch entry point: the localizer assembles the
    /// radical-line system into its workspace matrix and bulk-loads it
    /// here instead of paying a per-row `push_row` accumulation that the
    /// first IRLS rebuild would redo anyway.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != rhs.len() * cols`.
    pub fn set_system(&mut self, cols: usize, rows: &[f64], rhs: &[f64]) {
        assert_eq!(
            rows.len(),
            rhs.len() * cols,
            "flat row storage must be rhs.len() * cols"
        );
        self.begin(cols);
        self.rows.extend_from_slice(rows);
        self.rhs.extend_from_slice(rhs);
        self.weights.resize(rhs.len(), 1.0);
        self.dirty = true;
    }

    /// Counts `count` rank-1 Gram edits against the drift budget; once
    /// the budget is spent, marks the system dirty so the next solve (or
    /// reweight) performs a full rebuild. This is what bounds
    /// floating-point drift for callers that edit rows without ever
    /// reweighting (e.g. a uniform-weight streaming window).
    fn note_updates(&mut self, count: usize) {
        self.updates_since_rebuild = self.updates_since_rebuild.saturating_add(count);
        if self.updates_since_rebuild >= self.rebuild_every {
            self.dirty = true;
        }
    }

    /// Number of rows currently in the system.
    pub fn rows(&self) -> usize {
        self.rhs.len()
    }

    /// Number of unknowns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// Borrows design row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.cols..(i + 1) * self.cols]
    }

    /// Current per-row weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The most recent solution (empty before the first solve).
    pub fn solution(&self) -> &[f64] {
        &self.solution
    }

    /// Cumulative count of full Gram rebuilds (survives `begin`), the
    /// counter behind the `lion.adaptive.gram_rebuilds` metric.
    pub fn gram_rebuilds(&self) -> u64 {
        self.gram_rebuilds
    }

    /// Appends a row with unit weight, folding it into the Gram matrix.
    ///
    /// # Panics
    ///
    /// Panics when `a.len()` differs from the column count set by
    /// [`NormalEq::begin`].
    pub fn push_row(&mut self, a: &[f64], k: f64) {
        assert_eq!(a.len(), self.cols, "row length must equal column count");
        self.rows.extend_from_slice(a);
        self.rhs.push(k);
        self.weights.push(1.0);
        if !self.dirty {
            accumulate(&mut self.gram, &mut self.atk, self.cols, a, k, 1.0);
        }
    }

    /// Inserts a row (unit weight) at position `at`, marking the Gram
    /// matrix dirty; the next solve (or [`NormalEq::rebuild`]) brings it
    /// back in sync. Used by the sweep to extend a narrower range's
    /// system with a wider range's extra rows while keeping rows in the
    /// canonical order that makes rebuilds bit-identical to fresh builds.
    ///
    /// # Panics
    ///
    /// Panics when `a.len()` differs from the column count or `at` is
    /// past the end.
    pub fn insert_row(&mut self, at: usize, a: &[f64], k: f64) {
        assert_eq!(a.len(), self.cols, "row length must equal column count");
        assert!(at <= self.rhs.len(), "insert position out of bounds");
        let old = self.rows.len();
        self.rows.resize(old + self.cols, 0.0);
        self.rows
            .copy_within(at * self.cols..old, (at + 1) * self.cols);
        self.rows[at * self.cols..(at + 1) * self.cols].copy_from_slice(a);
        self.rhs.insert(at, k);
        self.weights.insert(at, 1.0);
        self.note_updates(1);
        self.dirty = true;
    }

    /// Removes the row at `at`. When the Gram matrix is in sync it is
    /// rank-1 *downdated* (`−wᵢ·aᵢaᵢᵀ`) rather than rebuilt; the usual
    /// drift caveat applies and, like reweights, the edit counts against
    /// the `rebuild_every` drift budget.
    ///
    /// # Panics
    ///
    /// Panics when `at` is out of bounds.
    pub fn remove_row(&mut self, at: usize) {
        assert!(at < self.rhs.len(), "remove position out of bounds");
        if !self.dirty {
            let start = at * self.cols;
            accumulate(
                &mut self.gram,
                &mut self.atk,
                self.cols,
                &self.rows[start..start + self.cols],
                self.rhs[at],
                -self.weights[at],
            );
        }
        let old = self.rows.len();
        self.rows
            .copy_within((at + 1) * self.cols.., at * self.cols);
        self.rows.truncate(old - self.cols);
        self.rhs.remove(at);
        self.weights.remove(at);
        self.note_updates(1);
    }

    /// Removes the first `count` rows in one batched front drain — the
    /// sliding-window case, where evicted reads retire the oldest
    /// equations. Each dropped row is rank-1 downdated (when in sync) and
    /// counted against the drift budget; the surviving rows then shift
    /// down with a single `memmove` instead of `count` of them.
    ///
    /// # Panics
    ///
    /// Panics when `count` exceeds the row count.
    pub fn remove_rows_front(&mut self, count: usize) {
        assert!(count <= self.rhs.len(), "front drain past the end");
        if count == 0 {
            return;
        }
        if !self.dirty {
            for at in 0..count {
                let start = at * self.cols;
                accumulate(
                    &mut self.gram,
                    &mut self.atk,
                    self.cols,
                    &self.rows[start..start + self.cols],
                    self.rhs[at],
                    -self.weights[at],
                );
            }
        }
        let old = self.rows.len();
        self.rows.copy_within(count * self.cols.., 0);
        self.rows.truncate(old - count * self.cols);
        self.rhs.drain(..count);
        self.weights.drain(..count);
        self.note_updates(count);
    }

    /// Replaces the row at `at` in place (resetting its weight to 1): a
    /// rank-1 downdate of the old equation plus a rank-1 update of the
    /// new one, with no row shuffling. This is the refresh primitive for
    /// equations whose underlying data changed (e.g. a smoothed phase
    /// near a window boundary) while their position in the system did
    /// not. Counts one edit against the drift budget.
    ///
    /// # Panics
    ///
    /// Panics when `a.len()` differs from the column count or `at` is out
    /// of bounds.
    pub fn replace_row(&mut self, at: usize, a: &[f64], k: f64) {
        assert_eq!(a.len(), self.cols, "row length must equal column count");
        assert!(at < self.rhs.len(), "replace position out of bounds");
        let start = at * self.cols;
        if !self.dirty {
            accumulate(
                &mut self.gram,
                &mut self.atk,
                self.cols,
                &self.rows[start..start + self.cols],
                self.rhs[at],
                -self.weights[at],
            );
            accumulate(&mut self.gram, &mut self.atk, self.cols, a, k, 1.0);
        }
        self.rows[start..start + self.cols].copy_from_slice(a);
        self.rhs[at] = k;
        self.weights[at] = 1.0;
        self.note_updates(1);
    }

    /// Replaces the weight diagonal.
    ///
    /// In-sync systems receive per-row rank-1 updates `Δwᵢ·aᵢaᵢᵀ`
    /// (skipping unchanged rows); every `rebuild_every`-th call — or any
    /// call on a dirty system — triggers a full rebuild instead, which
    /// bounds the accumulated floating-point drift of the updates.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] when `w.len()` differs from
    ///   the row count,
    /// - [`LinalgError::NotFinite`] when a weight is negative or
    ///   non-finite (matching [`crate::lstsq::solve_weighted`]).
    pub fn set_weights(&mut self, w: &[f64]) -> Result<(), LinalgError> {
        let m = self.rhs.len();
        if w.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "normal-equation reweight",
                found: format!("{} weights for {m} rows", w.len()),
            });
        }
        if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(LinalgError::NotFinite {
                operation: "normal-equation reweight (weights)",
            });
        }
        self.apply_weights(w);
        Ok(())
    }

    /// [`NormalEq::set_weights`] minus the validation passes, for
    /// in-crate callers whose weights are valid by construction (the
    /// IRLS loop's come out of a weight function that maps into
    /// `[0, 1]`). The caller must also have checked the length. Takes
    /// the vector by `&mut` so the stored weights can be swapped in
    /// instead of copied; on return `w` holds the *previous* weights.
    pub(crate) fn set_weights_trusted(&mut self, w: &mut Vec<f64>) {
        debug_assert_eq!(w.len(), self.rhs.len());
        debug_assert!(w.iter().all(|x| x.is_finite() && *x >= 0.0));
        if self.dirty || self.updates_since_rebuild + 1 >= self.rebuild_every {
            std::mem::swap(&mut self.weights, w);
            self.rebuild();
            return;
        }
        self.updates_since_rebuild += 1;
        match self.cols {
            2 => self.reweight_fixed::<2>(w),
            3 => self.reweight_fixed::<3>(w),
            4 => self.reweight_fixed::<4>(w),
            _ => {
                self.reweight_generic(w);
                return;
            }
        }
        std::mem::swap(&mut self.weights, w);
    }

    fn apply_weights(&mut self, w: &[f64]) {
        if self.dirty || self.updates_since_rebuild + 1 >= self.rebuild_every {
            self.weights.clear();
            self.weights.extend_from_slice(w);
            self.rebuild();
            return;
        }
        self.updates_since_rebuild += 1;
        match self.cols {
            2 => {
                self.reweight_fixed::<2>(w);
                self.weights.clear();
                self.weights.extend_from_slice(w);
            }
            3 => {
                self.reweight_fixed::<3>(w);
                self.weights.clear();
                self.weights.extend_from_slice(w);
            }
            4 => {
                self.reweight_fixed::<4>(w);
                self.weights.clear();
                self.weights.extend_from_slice(w);
            }
            _ => self.reweight_generic(w),
        }
    }

    /// Per-row rank-1 reweight for arbitrary column counts, skipping
    /// unchanged rows; stores the new weights as it goes.
    fn reweight_generic(&mut self, w: &[f64]) {
        for (i, &wi) in w.iter().enumerate() {
            let dw = wi - self.weights[i];
            if dw != 0.0 {
                let start = i * self.cols;
                accumulate(
                    &mut self.gram,
                    &mut self.atk,
                    self.cols,
                    &self.rows[start..start + self.cols],
                    self.rhs[i],
                    dw,
                );
                self.weights[i] = wi;
            }
        }
    }

    /// Rank-1 reweight via [`bulk_accumulate`] over the weight deltas:
    /// one register-resident pass over the rows, then a single update of
    /// the Gram storage. IRLS changes every weight every iteration, so
    /// the per-row skip of the generic path buys nothing there. The
    /// caller stores the new weights afterwards (by copy or swap).
    fn reweight_fixed<const N: usize>(&mut self, w: &[f64]) {
        self.wdelta.clear();
        self.wdelta
            .extend(w.iter().zip(&self.weights).map(|(new, old)| new - old));
        let (dg, datk) = bulk_accumulate::<N>(&self.rows, &self.rhs, &self.wdelta);
        for r in 0..N {
            for (c, d) in dg[r][..=r].iter().enumerate() {
                self.gram[r * N + c] += d;
            }
            self.atk[r] += datk[r];
        }
    }

    /// Resets all weights to 1 (the IRLS starting point). A no-op when
    /// the weights are already uniform and the Gram matrix is in sync;
    /// otherwise rebuilds, so the resulting Gram matrix is bit-identical
    /// to a fresh unit-weight build of the same rows.
    pub fn reset_weights_uniform(&mut self) {
        if !self.dirty && self.weights.iter().all(|w| *w == 1.0) {
            return;
        }
        self.weights.iter_mut().for_each(|w| *w = 1.0);
        self.rebuild();
    }

    /// Recomputes `AᵀWA` / `AᵀWk` from the stored rows in storage order,
    /// clearing any drift from rank-1 updates and syncing after inserts.
    pub fn rebuild(&mut self) {
        self.gram.iter_mut().for_each(|g| *g = 0.0);
        self.atk.iter_mut().for_each(|g| *g = 0.0);
        match self.cols {
            2 => self.rebuild_fixed::<2>(),
            3 => self.rebuild_fixed::<3>(),
            4 => self.rebuild_fixed::<4>(),
            _ => {
                for i in 0..self.rhs.len() {
                    let start = i * self.cols;
                    accumulate(
                        &mut self.gram,
                        &mut self.atk,
                        self.cols,
                        &self.rows[start..start + self.cols],
                        self.rhs[i],
                        self.weights[i],
                    );
                }
            }
        }
        self.dirty = false;
        self.updates_since_rebuild = 0;
        self.gram_rebuilds += 1;
    }

    /// [`bulk_accumulate`]-backed rebuild for the column counts the
    /// localizers actually use (2 for a collinear radical-line system,
    /// 3 for 2D, 4 for 3D). Bit-identical to the generic row-at-a-time
    /// path.
    fn rebuild_fixed<const N: usize>(&mut self) {
        let (gram, atk) = bulk_accumulate::<N>(&self.rows, &self.rhs, &self.weights);
        for r in 0..N {
            for (c, &g) in gram[r][..=r].iter().enumerate() {
                self.gram[r * N + c] = g;
            }
            self.atk[r] = atk[r];
        }
    }

    /// Solves the current system, rebuilding first if rows were inserted
    /// since the last sync. The returned slice aliases
    /// [`NormalEq::solution`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] when the weighted Gram matrix
    /// is singular (fewer independent rows than unknowns, or all weights
    /// collapsed to zero).
    pub fn solve(&mut self) -> Result<&[f64], LinalgError> {
        if self.dirty {
            self.rebuild();
        }
        self.chol.clear();
        self.chol.extend_from_slice(&self.gram);
        cholesky::factor_in_place(&mut self.chol, self.cols)?;
        self.solution.clear();
        self.solution.extend_from_slice(&self.atk);
        cholesky::solve_in_place(&self.chol, self.cols, &mut self.solution);
        Ok(&self.solution)
    }

    /// Per-row residuals `rᵢ = aᵢ·x − kᵢ` into `out` (allocation-free
    /// once `out` has capacity).
    pub fn residuals_into(&self, x: &[f64], out: &mut Vec<f64>) {
        self.residuals_stats_into(x, out);
    }

    /// [`NormalEq::residuals_into`] fused with a left-to-right `(Σr, Σr²)`
    /// accumulation — exactly what the Gaussian weight function consumes
    /// via [`WeightFunction::weights_into_with_stats`], one pass cheaper
    /// than computing the sums separately.
    pub fn residuals_stats_into(&self, x: &[f64], out: &mut Vec<f64>) -> (f64, f64) {
        out.clear();
        match self.cols {
            2 => residuals_fixed::<2>(&self.rows, &self.rhs, x, out),
            3 => residuals_fixed::<3>(&self.rows, &self.rhs, x, out),
            4 => residuals_fixed::<4>(&self.rows, &self.rhs, x, out),
            _ => {
                let mut sum = 0.0;
                let mut sumsq = 0.0;
                for i in 0..self.rhs.len() {
                    let start = i * self.cols;
                    let dot: f64 = self.rows[start..start + self.cols]
                        .iter()
                        .zip(x)
                        .map(|(p, q)| p * q)
                        .sum();
                    let r = dot - self.rhs[i];
                    sum += r;
                    sumsq += r * r;
                    out.push(r);
                }
                (sum, sumsq)
            }
        }
    }

    /// Diagonal of `(AᵀWA)⁻¹` — the parameter covariance up to the
    /// residual variance factor — into `out`.
    ///
    /// # Errors
    ///
    /// Same as [`NormalEq::solve`].
    pub fn covariance_diag_into(&mut self, out: &mut Vec<f64>) -> Result<(), LinalgError> {
        if self.dirty {
            self.rebuild();
        }
        self.chol.clear();
        self.chol.extend_from_slice(&self.gram);
        cholesky::factor_in_place(&mut self.chol, self.cols)?;
        out.clear();
        for j in 0..self.cols {
            self.unit.clear();
            self.unit.resize(self.cols, 0.0);
            self.unit[j] = 1.0;
            cholesky::solve_in_place(&self.chol, self.cols, &mut self.unit);
            out.push(self.unit[j]);
        }
        Ok(())
    }
}

impl Default for NormalEq {
    fn default() -> Self {
        NormalEq::new()
    }
}

/// Reusable buffers for [`solve_irls_normal`].
#[derive(Debug, Clone, Default)]
pub struct NormalIrlsScratch {
    x: Vec<f64>,
    residuals: Vec<f64>,
    weights: Vec<f64>,
}

impl NormalIrlsScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The final per-row weights of the last run (what
    /// [`crate::IrlsReport::weights`] would hold).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The final per-row residuals of the last run.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Realigns the stored warm-start weights with a system that dropped
    /// `dropped_front` rows from the front and now has `rows` rows:
    /// surviving rows keep their weights, new tail rows start at 1.0.
    /// Call before [`solve_irls_normal_warm`] when the row set shifted.
    pub fn align_weights(&mut self, dropped_front: usize, rows: usize) {
        self.weights.drain(..dropped_front.min(self.weights.len()));
        self.weights.resize(rows, 1.0);
    }
}

/// Summary of a [`solve_irls_normal`] run; the solution itself stays in
/// [`NormalEq::solution`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalIrlsOutcome {
    /// Number of reweighting iterations performed (the initial plain
    /// solve is not counted), matching [`crate::IrlsReport::iterations`].
    pub iterations: usize,
    /// Whether the iteration converged before `max_iterations`.
    pub converged: bool,
    /// Plain mean of the final residuals.
    pub mean_residual: f64,
    /// Weighted root-mean-square residual.
    pub weighted_rms: f64,
}

/// IRLS over an incrementally maintained [`NormalEq`] system.
///
/// Mirrors [`crate::lstsq::solve_irls_with`] step for step — initial
/// uniform-weight solve, then residuals → weights → weighted solve until
/// `‖Δx‖∞ < tolerance` — but reweights are rank-1 Gram updates instead of
/// per-iteration re-factorizations of the scaled `m × n` system, and the
/// whole loop is allocation-free in steady state.
///
/// # Errors
///
/// Propagates [`NormalEq::solve`]/[`NormalEq::set_weights`] errors.
pub fn solve_irls_normal(
    ne: &mut NormalEq,
    config: &IrlsConfig,
    scratch: &mut NormalIrlsScratch,
) -> Result<NormalIrlsOutcome, LinalgError> {
    ne.reset_weights_uniform();
    solve_irls_from_current(ne, config, scratch)
}

/// [`solve_irls_normal`] warm-started from the weights left in `scratch`
/// by the previous run, instead of restarting from uniform.
///
/// When consecutive systems differ by only a few rows — the streaming
/// delta-tick case — the previous weights are already near the fixed
/// point and the iteration converges in one or two reweights instead of
/// replaying the whole cold-start trajectory. Both starts stop at the
/// same `‖Δx‖∞ < tolerance` criterion, so the solutions agree to within
/// the configured tolerance; call [`NormalIrlsScratch::align_weights`]
/// first if rows were dropped or appended since the weights were
/// recorded. Falls back to the cold start when the stored weights do not
/// match the system's row count.
///
/// # Errors
///
/// Propagates [`NormalEq::solve`]/[`NormalEq::set_weights`] errors.
pub fn solve_irls_normal_warm(
    ne: &mut NormalEq,
    config: &IrlsConfig,
    scratch: &mut NormalIrlsScratch,
) -> Result<NormalIrlsOutcome, LinalgError> {
    let warm = scratch.weights.len() == ne.rows()
        && !matches!(config.weight_fn, WeightFunction::Uniform)
        && scratch
            .weights
            .iter()
            .all(|w| w.is_finite() && (0.0..=1.0).contains(w));
    if warm {
        ne.set_weights_trusted(&mut scratch.weights);
    } else {
        ne.reset_weights_uniform();
    }
    solve_irls_from_current(ne, config, scratch)
}

/// The shared IRLS loop: solve with whatever weights `ne` currently
/// carries, then reweight from residuals until the step converges.
fn solve_irls_from_current(
    ne: &mut NormalEq,
    config: &IrlsConfig,
    scratch: &mut NormalIrlsScratch,
) -> Result<NormalIrlsOutcome, LinalgError> {
    let x0 = ne.solve()?;
    scratch.x.clear();
    scratch.x.extend_from_slice(x0);
    let (mut sum, mut sumsq) = ne.residuals_stats_into(&scratch.x, &mut scratch.residuals);
    config
        .weight_fn
        .weights_into_with_stats(&scratch.residuals, sum, sumsq, &mut scratch.weights);
    let mut iterations = 0;
    let mut converged = matches!(config.weight_fn, WeightFunction::Uniform);
    if !converged {
        for _ in 0..config.max_iterations {
            iterations += 1;
            // Weight functions map into [0, 1] over as many entries as
            // there are rows, so the validating entry point is redundant
            // here. The swap leaves last iteration's weights in the
            // scratch buffer; they are overwritten below.
            ne.set_weights_trusted(&mut scratch.weights);
            let x_new = ne.solve()?;
            let delta = x_new
                .iter()
                .zip(scratch.x.iter())
                .fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()));
            scratch.x.clear();
            scratch.x.extend_from_slice(x_new);
            (sum, sumsq) = ne.residuals_stats_into(&scratch.x, &mut scratch.residuals);
            config.weight_fn.weights_into_with_stats(
                &scratch.residuals,
                sum,
                sumsq,
                &mut scratch.weights,
            );
            if delta < config.tolerance {
                converged = true;
                break;
            }
        }
    }
    // `sum` was accumulated left-to-right over the final residuals, so
    // this is bit-identical to `stats::mean(&scratch.residuals)`.
    let mean_residual = if scratch.residuals.is_empty() {
        0.0
    } else {
        sum / scratch.residuals.len() as f64
    };
    let wsum: f64 = scratch.weights.iter().sum();
    let weighted_rms = if wsum > 0.0 {
        (scratch
            .residuals
            .iter()
            .zip(scratch.weights.iter())
            .map(|(r, w)| w * r * r)
            .sum::<f64>()
            / wsum)
            .sqrt()
    } else {
        0.0
    };
    Ok(NormalIrlsOutcome {
        iterations,
        converged,
        mean_residual,
        weighted_rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::{self, IrlsConfig, WeightFunction};
    use crate::matrix::Matrix;
    use crate::vector::Vector;

    fn line_rows() -> Vec<([f64; 2], f64)> {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut rows: Vec<([f64; 2], f64)> =
            xs.iter().map(|&x| ([x, 1.0], 2.0 * x + 1.0)).collect();
        rows[7].1 += 10.0; // outlier
        rows
    }

    fn build(rows: &[([f64; 2], f64)]) -> NormalEq {
        let mut ne = NormalEq::new();
        ne.begin(2);
        for (a, k) in rows {
            ne.push_row(a, *k);
        }
        ne
    }

    fn qr_weighted(rows: &[([f64; 2], f64)], w: &[f64]) -> Vec<f64> {
        let refs: Vec<&[f64]> = rows.iter().map(|(a, _)| a.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let k = Vector::from_slice(&rows.iter().map(|(_, k)| *k).collect::<Vec<_>>());
        lstsq::solve_weighted(&a, &k, w).unwrap().into_inner()
    }

    #[test]
    fn plain_solve_matches_qr() {
        let rows = line_rows();
        let mut ne = build(&rows);
        let sol = ne.solve().unwrap().to_vec();
        let qr = qr_weighted(&rows, &[1.0; 8]);
        for (p, q) in sol.iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9, "{sol:?} vs {qr:?}");
        }
    }

    #[test]
    fn reweight_matches_qr() {
        let rows = line_rows();
        let mut ne = build(&rows);
        let w = [1.0, 0.5, 2.0, 1.0, 0.1, 1.0, 3.0, 0.7];
        ne.set_weights(&w).unwrap();
        let sol = ne.solve().unwrap().to_vec();
        let qr = qr_weighted(&rows, &w);
        for (p, q) in sol.iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9, "{sol:?} vs {qr:?}");
        }
    }

    #[test]
    fn rank_one_updates_match_rebuild() {
        let rows = line_rows();
        // High cadence: every reweight below stays rank-1.
        let mut incremental = NormalEq::with_rebuild_every(100);
        incremental.begin(2);
        for (a, k) in &rows {
            incremental.push_row(a, *k);
        }
        // Cadence 1: every reweight is a full rebuild.
        let mut rebuilt = NormalEq::with_rebuild_every(1);
        rebuilt.begin(2);
        for (a, k) in &rows {
            rebuilt.push_row(a, *k);
        }
        let seqs: [[f64; 8]; 3] = [
            [1.0, 0.5, 2.0, 1.0, 0.1, 1.0, 3.0, 0.7],
            [0.2, 0.2, 0.2, 5.0, 1.0, 1.0, 1.0, 1.0],
            [1.0; 8],
        ];
        for w in &seqs {
            incremental.set_weights(w).unwrap();
            rebuilt.set_weights(w).unwrap();
            let a = incremental.solve().unwrap().to_vec();
            let b = rebuilt.solve().unwrap().to_vec();
            for (p, q) in a.iter().zip(&b) {
                assert!((p - q).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn insert_extends_to_wider_system() {
        let rows = line_rows();
        // Narrow system: middle rows 2..6; wide system: all rows.
        let mut ne = NormalEq::new();
        ne.begin(2);
        for (a, k) in &rows[2..6] {
            ne.push_row(a, *k);
        }
        let narrow = ne.solve().unwrap().to_vec();
        let narrow_qr = qr_weighted(&rows[2..6], &[1.0; 4]);
        for (p, q) in narrow.iter().zip(&narrow_qr) {
            assert!((p - q).abs() < 1e-9);
        }
        // Extend to the full row set, keeping storage order canonical.
        ne.insert_row(0, &rows[0].0, rows[0].1);
        ne.insert_row(1, &rows[1].0, rows[1].1);
        ne.insert_row(6, &rows[6].0, rows[6].1);
        ne.insert_row(7, &rows[7].0, rows[7].1);
        let wide = ne.solve().unwrap().to_vec();
        let wide_qr = qr_weighted(&rows, &[1.0; 8]);
        for (p, q) in wide.iter().zip(&wide_qr) {
            assert!((p - q).abs() < 1e-9, "{wide:?} vs {wide_qr:?}");
        }
        assert_eq!(ne.rows(), 8);
        for (i, (a, _)) in rows.iter().enumerate() {
            assert_eq!(ne.row(i), a.as_slice());
        }
    }

    #[test]
    fn insert_then_rebuild_is_bit_identical_to_fresh_build() {
        let rows = line_rows();
        let mut extended = NormalEq::new();
        extended.begin(2);
        for (a, k) in &rows[2..6] {
            extended.push_row(a, *k);
        }
        extended.solve().unwrap();
        extended.insert_row(0, &rows[0].0, rows[0].1);
        extended.insert_row(1, &rows[1].0, rows[1].1);
        extended.insert_row(6, &rows[6].0, rows[6].1);
        extended.insert_row(7, &rows[7].0, rows[7].1);
        let a = extended.solve().unwrap().to_vec();
        let mut fresh = build(&rows);
        let b = fresh.solve().unwrap().to_vec();
        // Exactly equal, not approximately: the determinism contract.
        assert_eq!(a, b);
    }

    #[test]
    fn remove_row_matches_subset() {
        let rows = line_rows();
        let mut ne = build(&rows);
        ne.solve().unwrap();
        ne.remove_row(7); // drop the outlier
        let sol = ne.solve().unwrap().to_vec();
        let qr = qr_weighted(&rows[..7], &[1.0; 7]);
        for (p, q) in sol.iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9, "{sol:?} vs {qr:?}");
        }
        // The clean line is recovered exactly once the outlier is gone.
        assert!((sol[0] - 2.0).abs() < 1e-9 && (sol[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irls_matches_qr_irls() {
        let rows = line_rows();
        let refs: Vec<&[f64]> = rows.iter().map(|(a, _)| a.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let k = Vector::from_slice(&rows.iter().map(|(_, k)| *k).collect::<Vec<_>>());
        let config = IrlsConfig::default();
        let report = lstsq::solve_irls(&a, &k, &config).unwrap();
        let mut ne = build(&rows);
        let mut scratch = NormalIrlsScratch::new();
        let outcome = solve_irls_normal(&mut ne, &config, &mut scratch).unwrap();
        assert_eq!(outcome.iterations, report.iterations);
        assert_eq!(outcome.converged, report.converged);
        for (p, q) in ne.solution().iter().zip(report.solution.as_slice()) {
            assert!(
                (p - q).abs() < 1e-7,
                "{:?} vs {:?}",
                ne.solution(),
                report.solution
            );
        }
        assert!((outcome.mean_residual - report.mean_residual).abs() < 1e-7);
        assert!((outcome.weighted_rms - report.weighted_rms).abs() < 1e-7);
    }

    #[test]
    fn irls_uniform_converges_immediately() {
        let rows = line_rows();
        let mut ne = build(&rows);
        let config = IrlsConfig {
            weight_fn: WeightFunction::Uniform,
            ..IrlsConfig::default()
        };
        let outcome = solve_irls_normal(&mut ne, &config, &mut NormalIrlsScratch::new()).unwrap();
        assert_eq!(outcome.iterations, 0);
        assert!(outcome.converged);
    }

    #[test]
    fn covariance_diag_matches_explicit_inverse() {
        let rows = line_rows();
        let mut ne = build(&rows);
        let w = [1.0, 0.5, 2.0, 1.0, 0.1, 1.0, 3.0, 0.7];
        ne.set_weights(&w).unwrap();
        let mut diag = Vec::new();
        ne.covariance_diag_into(&mut diag).unwrap();
        let refs: Vec<&[f64]> = rows.iter().map(|(a, _)| a.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let gram = a.weighted_gram(&w).unwrap();
        let inv = crate::lu::Lu::decompose(&gram).unwrap().inverse().unwrap();
        for (j, d) in diag.iter().enumerate() {
            assert!((d - inv[(j, j)]).abs() < 1e-9, "{diag:?}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let mut ne = NormalEq::new();
        ne.begin(3);
        ne.push_row(&[1.0, 0.0, 0.0], 1.0);
        assert_eq!(ne.solve().unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn remove_rows_front_matches_suffix() {
        let rows = line_rows();
        let mut ne = build(&rows);
        ne.solve().unwrap();
        ne.remove_rows_front(3);
        assert_eq!(ne.rows(), 5);
        for (i, (a, _)) in rows[3..].iter().enumerate() {
            assert_eq!(ne.row(i), a.as_slice());
        }
        let sol = ne.solve().unwrap().to_vec();
        let qr = qr_weighted(&rows[3..], &[1.0; 5]);
        for (p, q) in sol.iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9, "{sol:?} vs {qr:?}");
        }
        // Zero-count drain is a no-op.
        let before = ne.rows();
        ne.remove_rows_front(0);
        assert_eq!(ne.rows(), before);
    }

    #[test]
    fn replace_row_matches_fresh_build() {
        let rows = line_rows();
        let mut ne = build(&rows);
        ne.solve().unwrap();
        // Swap the outlier for its clean value, in place.
        let clean = ([7.0, 1.0], 15.0);
        ne.replace_row(7, &clean.0, clean.1);
        let sol = ne.solve().unwrap().to_vec();
        let mut fixed = rows.clone();
        fixed[7] = clean;
        let qr = qr_weighted(&fixed, &[1.0; 8]);
        for (p, q) in sol.iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9, "{sol:?} vs {qr:?}");
        }
        assert_eq!(ne.row(7), clean.0.as_slice());
        // The clean line is recovered.
        assert!((sol[0] - 2.0).abs() < 1e-9 && (sol[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_edits_count_toward_rebuild_cadence() {
        // Regression for the drift bound under mixed insert/remove
        // streams: before the fix only reweights ticked the budget, so a
        // caller that only edits rows (uniform weights, sliding window)
        // accumulated unbounded rank-1 drift. Now every row edit counts,
        // and crossing the budget forces a full rebuild on the next
        // solve.
        let rows = line_rows();
        let mut ne = NormalEq::with_rebuild_every(4);
        ne.begin(2);
        for (a, k) in &rows {
            ne.push_row(a, *k);
        }
        ne.solve().unwrap();
        let rebuilds_before = ne.gram_rebuilds();
        // Three edits: under budget, still rank-1 (no rebuild yet).
        ne.remove_row(7);
        ne.replace_row(0, &rows[0].0, rows[0].1);
        ne.remove_rows_front(1);
        assert_eq!(ne.gram_rebuilds(), rebuilds_before);
        ne.solve().unwrap();
        assert_eq!(ne.gram_rebuilds(), rebuilds_before);
        // One more edit crosses the budget of 4: the next solve rebuilds.
        ne.remove_row(0);
        ne.solve().unwrap();
        assert_eq!(ne.gram_rebuilds(), rebuilds_before + 1);
        // The rebuild resets the budget: further under-budget edits stay
        // rank-1 again.
        ne.remove_row(0);
        ne.solve().unwrap();
        assert_eq!(ne.gram_rebuilds(), rebuilds_before + 1);
        // And the post-rebuild answer matches a fresh build exactly.
        let survivors: Vec<([f64; 2], f64)> = rows[2..7].iter().skip(1).copied().collect();
        let mut fresh = build(&survivors);
        assert_eq!(ne.solve().unwrap(), fresh.solve().unwrap());
    }

    #[test]
    fn inserts_and_removes_share_one_drift_budget() {
        // Mixed sequences: inserts force a rebuild via `dirty` anyway,
        // but they must also tick the shared budget so interleaved
        // removals cannot stretch the cadence.
        let rows = line_rows();
        let mut ne = NormalEq::with_rebuild_every(2);
        ne.begin(2);
        for (a, k) in &rows[..6] {
            ne.push_row(a, *k);
        }
        ne.solve().unwrap();
        let before = ne.gram_rebuilds();
        ne.insert_row(6, &rows[6].0, rows[6].1);
        ne.remove_row(0);
        ne.solve().unwrap();
        // The budget of 2 was spent (insert + remove): exactly one
        // rebuild, folded into the solve.
        assert_eq!(ne.gram_rebuilds(), before + 1);
        let qr = qr_weighted(&rows[1..7], &[1.0; 6]);
        for (p, q) in ne.solution().iter().zip(&qr) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_matches_cold_start_with_fewer_iterations() {
        let rows = line_rows();
        let cfg = IrlsConfig::default();
        // Cold reference run on the full system.
        let mut cold_ne = build(&rows);
        let mut cold = NormalIrlsScratch::new();
        solve_irls_normal(&mut cold_ne, &cfg, &mut cold).unwrap();
        let cold_sol = cold_ne.solution().to_vec();
        // Warm run: converge once, slide the system by one row, realign
        // the weights, and re-solve from them.
        let mut ne = build(&rows);
        let mut scratch = NormalIrlsScratch::new();
        solve_irls_normal(&mut ne, &cfg, &mut scratch).unwrap();
        ne.remove_rows_front(1);
        ne.push_row(&[8.0, 1.0], 17.0);
        scratch.align_weights(1, ne.rows());
        let warm = solve_irls_normal_warm(&mut ne, &cfg, &mut scratch).unwrap();
        assert!(warm.converged);
        // Oracle: cold start on the slid system.
        let slid: Vec<([f64; 2], f64)> = rows[1..]
            .iter()
            .copied()
            .chain([([8.0, 1.0], 17.0)])
            .collect();
        let mut oracle_ne = build(&slid);
        let mut oracle = NormalIrlsScratch::new();
        let cold_out = solve_irls_normal(&mut oracle_ne, &cfg, &mut oracle).unwrap();
        for (p, q) in ne.solution().iter().zip(oracle_ne.solution()) {
            assert!((p - q).abs() < 1e-6, "warm vs cold: {p} vs {q}");
        }
        assert!(
            warm.iterations <= cold_out.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold_out.iterations
        );
        // Mismatched weight length falls back to the cold start exactly.
        let mut fb_ne = build(&rows);
        let mut fb = NormalIrlsScratch::new();
        fb.weights = vec![0.5; 3]; // wrong length
        solve_irls_normal_warm(&mut fb_ne, &cfg, &mut fb).unwrap();
        assert_eq!(fb_ne.solution(), cold_sol.as_slice());
    }

    #[test]
    fn weight_validation_matches_weighted_ls() {
        let mut ne = build(&line_rows());
        assert!(matches!(
            ne.set_weights(&[1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let mut bad = [1.0; 8];
        bad[0] = -1.0;
        assert!(matches!(
            ne.set_weights(&bad),
            Err(LinalgError::NotFinite { .. })
        ));
        bad[0] = f64::NAN;
        assert!(matches!(
            ne.set_weights(&bad),
            Err(LinalgError::NotFinite { .. })
        ));
    }
}
