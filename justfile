# Project task runner. `just verify` is the full pre-merge gate.

# Build, test, lint, and check formatting — everything CI would run.
verify:
    cargo build --release
    cargo test --workspace -q
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Regenerate every paper figure.
figures:
    cargo run --release -p lion-bench --bin run_experiments -- all

# Run the Criterion microbenchmarks (solver, hologram, engine batch, ...).
bench:
    cargo bench --workspace

# Run the conveyor batch and export its telemetry (JSON-lines registry
# snapshot + Prometheus text exposition) to target/telemetry/.
telemetry:
    cargo run --release --example conveyor_batch -- target/telemetry
