# Project task runner. `just verify` is the full pre-merge gate.

# Build, test, lint, and check formatting — everything CI would run.
# Tests run with overflow-checks on (see [profile.test] in Cargo.toml);
# the streaming parity + backpressure suites are named explicitly so a
# test-filter typo can't silently skip the bit-identicality gate.
verify:
    cargo build --release
    cargo test --workspace -q
    cargo test -q --test stream_parity --test stream_backpressure
    cargo test -q --test tracing_causality
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Regenerate every paper figure.
figures:
    cargo run --release -p lion-bench --bin run_experiments -- all

# Run the Criterion microbenchmarks (solver, hologram, engine batch, ...).
bench:
    cargo bench --workspace

# Streaming pipeline benchmarks only: throughput across window sizes,
# window-maintenance cost per read, and single windowed re-solve latency.
stream-bench:
    cargo bench -p lion-bench --bench stream

# Run the conveyor batch and export its telemetry (JSON-lines registry
# snapshot + Prometheus text exposition) to target/telemetry/.
telemetry:
    cargo run --release --example conveyor_batch -- target/telemetry

# Record a causally-traced conveyor_stream run: Chrome trace-event JSON
# (load target/trace/*.trace.json at https://ui.perfetto.dev), the
# calibration HealthReport, and the registry snapshot.
trace:
    cargo run --release --example conveyor_stream -- --trace target/trace
