# Project task runner. `just verify` is the full pre-merge gate.

# Build, test, lint, and check formatting — everything CI would run.
# Tests run with overflow-checks on (see [profile.test] in Cargo.toml);
# the streaming parity + backpressure suites are named explicitly so a
# test-filter typo can't silently skip the bit-identicality gate.
verify:
    cargo build --release
    cargo test --workspace -q
    cargo test -q --test stream_parity --test stream_backpressure
    cargo test -q --test tracing_causality
    cargo test -q -p lion-linalg --test proptests normal_eq
    cargo test -q -p lion-core --test zero_alloc --test adaptive_regression
    cargo test -q -p lion-core --test scalar_dispatch
    cargo test -q -p lion-linalg --test simd_parity
    cargo test -q --test solver_parity
    cargo test -q -p lion-obs --test http_plane
    cargo test -q --test fleet_health
    cargo test -q --test alerts_history
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Regenerate every paper figure.
figures:
    cargo run --release -p lion-bench --bin run_experiments -- all

# Tracked benchmarks: run the adaptive-sweep, solver-backend,
# streaming-resolve, and SIMD-kernel bench bins and diff against the
# committed baselines (generous 3× regression threshold; speedup ratios
# must stay near their committed values, the solver-backend parity must
# stay inside the documented 2 cm radius, and the kernel bench enforces
# the absolute 700 µs single-solve / 14 672 ns incremental budgets).
# Each check refuses — exit 0, not failure — when the committed
# baseline's env block (machine, rustc, CPU features, SIMD backend)
# doesn't match this machine; regenerate with `just bench-write` first.
bench:
    cargo run --release -p lion-bench --bin bench_adaptive -- --check BENCH_5.json
    cargo run --release -p lion-bench --bin bench_solvers -- --check BENCH_6.json
    cargo run --release -p lion-bench --bin bench_stream_resolve -- --check BENCH_8.json
    cargo run --release -p lion-bench --bin bench_kernels -- --check BENCH_10.json

# Regenerate the committed benchmark baselines. Run on a quiet machine
# and eyeball the diff before committing.
bench-write:
    cargo run --release -p lion-bench --bin bench_adaptive -- --write BENCH_5.json
    cargo run --release -p lion-bench --bin bench_solvers -- --write BENCH_6.json
    cargo run --release -p lion-bench --bin bench_stream_resolve -- --write BENCH_8.json
    cargo run --release -p lion-bench --bin bench_kernels -- --write BENCH_10.json

# SIMD kernel bench compiled for this exact CPU (`-C target-cpu=native`
# lets LLVM use every feature the host has, beyond the portable AVX2/NEON
# dispatch). Numbers are NOT comparable to the committed baselines —
# print-only, no --check, never `--write` from here.
bench-native:
    RUSTFLAGS="-C target-cpu=native" cargo run --release -p lion-bench --bin bench_kernels

# Run the Criterion microbenchmarks (solver, hologram, engine batch, ...).
microbench:
    cargo bench --workspace

# Streaming pipeline benchmarks only: throughput across window sizes,
# window-maintenance cost per read, and single windowed re-solve latency.
stream-bench:
    cargo bench -p lion-bench --bench stream

# Run the conveyor batch and export its telemetry (JSON-lines registry
# snapshot + Prometheus text exposition) to target/telemetry/.
telemetry:
    cargo run --release --example conveyor_batch -- target/telemetry

# Record a causally-traced conveyor_stream run: Chrome trace-event JSON
# (load target/trace/*.trace.json at https://ui.perfetto.dev), the
# calibration HealthReport, and the registry snapshot.
trace:
    cargo run --release --example conveyor_stream -- --trace target/trace

# Live telemetry plane for manual poking: run the twelve-portal fleet
# under the HTTP scrape server and hold until Enter. Scrape
# /metrics /health /snapshot /trace /profile /query /alerts on the
# printed port.
serve:
    cargo run --release --example conveyor_stream -- --serve 127.0.0.1:9184 --hold

# Metrics-history & alerting demo: same fleet as `just serve` with the
# embedded TSDB sampling in the background; range-query stored series
# with `curl 'http://127.0.0.1:9184/query?series=<name>&tier=raw'` and
# watch alert states at /alerts while it holds.
alerts:
    cargo run --release --example conveyor_stream -- --serve 127.0.0.1:9184 --hold
