//! Offline stand-in for `serde_derive`.
//!
//! The real `serde` crates cannot be fetched in the air-gapped build
//! environment, so this proc-macro crate provides `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` that expand to nothing. The companion
//! `serde` stub blanket-implements both traits for every type, so the
//! empty expansion still leaves every annotated type satisfying its
//! bounds. Swapping the real serde back in requires no source changes —
//! only restoring the registry dependency in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` stub's blanket impl already
/// covers the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the `serde` stub's blanket impl already
/// covers the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
