//! Offline stand-in for `serde`.
//!
//! The build environment is air-gapped, so the real `serde` cannot be
//! fetched. This stub keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations and `Serialize`/`Deserialize` bounds
//! compiling: both traits are blanket-implemented for every type, and the
//! `derive` feature re-exports no-op derive macros from the vendored
//! `serde_derive`.
//!
//! Nothing in this workspace performs actual serialization (there is no
//! `serde_json`/`bincode` dependency); the derives exist so downstream
//! users with the real serde get working impls. Restoring the real crate
//! is a one-line change in the workspace manifest — no source edits.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derived and bounded code compiles unchanged.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types so derived and bounded code compiles unchanged.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
