//! Test configuration, case outcomes, and the deterministic test RNG.

use std::fmt;

/// Per-test configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejection: the input is out of scope; retry.
    Reject(String),
}

impl TestCaseError {
    /// A property violation carrying the failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection carrying the violated assumption.
    pub fn reject(assumption: impl Into<String>) -> Self {
        TestCaseError::Reject(assumption.into())
    }

    /// Whether this outcome is a `prop_assume!` rejection.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(a) => write!(f, "rejected: {a}"),
        }
    }
}

/// Result alias matching `proptest::test_runner::TestCaseResult`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic input generator: xoshiro256++ seeded from the test name,
/// so every test explores its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`; panics on an empty range.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }
}
