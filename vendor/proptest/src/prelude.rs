//! One-stop imports mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

/// Alias so `prop::collection::vec(...)` works as in the real prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
