//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment is air-gapped, so the real `proptest` cannot be
//! fetched. This crate is a miniature but genuine property-testing
//! runner: the [`proptest!`] macro generates each named test with a
//! deterministic per-test RNG (seeded from the test name), draws inputs
//! from [`strategy::Strategy`] values, honors `prop_assume!` rejections,
//! and panics with the failing inputs on `prop_assert!` violations.
//!
//! It intentionally omits shrinking, failure persistence, and the full
//! strategy combinator zoo — only the surface exercised by this
//! workspace's property tests is provided: range strategies, tuples,
//! `prop_map`, `collection::vec`, `ProptestConfig::with_cases`, and the
//! assertion macros. Restoring the real crate is a one-line change in
//! the workspace manifest.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body for `cases` generated
/// inputs (default 256, overridable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut cases_run: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while cases_run < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many prop_assume! rejections \
                     ({cases_run}/{} cases after {attempts} attempts)",
                    stringify!($name),
                    config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let desc = || {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&::std::format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => cases_run += 1,
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => ::std::panic!(
                        "proptest '{}' failed at case {}: {}\nwith inputs:\n{}",
                        stringify!($name), cases_run, e, desc(),
                    ),
                }
            }
        }
    )*};
}

/// Fails the current case (returning through the runner, which panics
/// with the generated inputs) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

/// Rejects the current case without counting it when the assumption does
/// not hold; the runner draws a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
