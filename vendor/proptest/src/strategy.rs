//! Value-generation strategies: ranges, tuples, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating test inputs of type [`Strategy::Value`].
///
/// Unlike the real proptest there is no value tree or shrinking — a
/// strategy simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        S::generate(self, rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty i32 strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 strategy range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_stay_in_bounds() {
        let mut rng = TestRng::from_name("strategy-test");
        let s = (0.0_f64..1.0, 3_usize..7).prop_map(|(x, n)| x * n as f64);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((0.0..7.0).contains(&v));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
