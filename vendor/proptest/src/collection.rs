//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy generating `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vec-test");
        let exact = vec(0.0_f64..1.0, 5);
        assert_eq!(exact.generate(&mut rng).len(), 5);
        let ranged = vec(0.0_f64..1.0, 2_usize..6);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }
}
