//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment is air-gapped, so the real `criterion` cannot be
//! fetched. This crate is a miniature but genuine wall-clock benchmark
//! harness with criterion's API shape: [`Criterion`], benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], `criterion_group!`/
//! `criterion_main!`. Each benchmark runs a warm-up pass, then
//! `sample_size` timed samples, and prints the per-iteration mean and
//! min/max to stdout.
//!
//! It omits criterion's statistical analysis, HTML reports, and baseline
//! comparison. Restoring the real crate is a one-line change in the
//! workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation accepted (and currently only echoed) by groups.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, as `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the argument types `bench_function` accepts into a
/// [`BenchmarkId`], mirroring `criterion::IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once as warm-up, then repeatedly under the timer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    // Calibrate the per-sample iteration count so one sample costs
    // roughly a millisecond — keeps fast kernels measurable without
    // making slow end-to-end benches crawl.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut bencher);
    let once = bencher.elapsed.as_secs_f64().max(1e-9);
    let iters = ((1e-3 / once).round() as u64).clamp(1, 10_000);
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench {label:<40} mean {:>12.3} µs/iter  [{:.3} .. {:.3}]  ({} samples × {} iters)",
        mean * 1e6,
        min * 1e6,
        max * 1e6,
        per_iter.len(),
        iters,
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_sampled(&id.into_benchmark_id().id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Records the work performed per iteration (echoed, not analyzed).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_sampled(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_sampled(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
