//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator standing in for `rand::rngs::StdRng`.
///
/// Implemented as xoshiro256++ with SplitMix64 seed expansion: fast,
/// well-distributed, and byte-for-byte reproducible for a given seed.
/// Not cryptographically secure (the real `StdRng` is ChaCha12) — the
/// simulator only needs determinism and statistical quality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
