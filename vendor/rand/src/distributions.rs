//! Standard-distribution sampling, mirroring `rand::distributions`.

use crate::RngCore;

/// The standard distribution for a type: uniform over `[0, 1)` for
/// floats, uniform over the full range for integers, fair for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high-quality bits → [0, 1) with full double precision,
        // matching the construction rand uses for `Standard` f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u: f64 = Distribution::<f64>::sample(&Standard, rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty usize sample range");
        let span = (self.end - self.start) as u64;
        // Modulo bias is < 2⁻⁴⁰ for the spans used here; acceptable for
        // simulation workloads.
        self.start + (rng.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = r.gen_range(2.0..3.5);
            assert!((2.0..3.5).contains(&x));
            let n = r.gen_range(4usize..9);
            assert!((4..9).contains(&n));
        }
    }
}
