//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment is air-gapped, so the real `rand` cannot be
//! fetched. This crate reproduces the API surface the simulator depends
//! on — [`SeedableRng::seed_from_u64`], [`Rng::gen`] for primitives, and
//! [`rngs::StdRng`] — over a xoshiro256++ generator seeded via SplitMix64.
//!
//! The stream differs from the real `StdRng` (ChaCha12), so simulated
//! noise realizations differ numerically from upstream rand while staying
//! fully deterministic per seed, which is all the experiments and tests
//! rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

/// Low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}
