//! Engine determinism and metrics consistency, end to end through the
//! facade: a 64-job batch must produce bit-identical estimates for any
//! worker count, and the aggregated metrics must equal the per-job sums.

use lion::prelude::*;

/// 64 independent localization jobs on serially-simulated noisy traces.
fn batch() -> Vec<Job> {
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(antenna_pos)
        .phase_center_displacement(0.015, -0.01, 0.0)
        .build();
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-determinism"))
        .noise(NoiseModel::paper_default())
        .seed(90_210)
        .build()
        .expect("antenna and tag are set");
    (0..64)
        .map(|i| {
            let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
            let m = scenario
                .scan(&track, 0.1, 100.0)
                .expect("valid scan")
                .to_measurements();
            let config = LocalizerConfig {
                side_hint: Some(antenna_pos),
                ..LocalizerConfig::paper()
            };
            // Every fourth job exercises the adaptive sweep so its
            // counters show up in the aggregate as well.
            if i % 4 == 3 {
                Job::adaptive_2d(m, config, AdaptiveConfig::default())
            } else {
                Job::locate_2d(m, config)
            }
        })
        .collect()
}

#[test]
fn parallel_estimates_are_bit_identical_to_serial() {
    let jobs = batch();
    let reference = Engine::serial().run(&jobs);
    assert_eq!(reference.results.len(), 64);
    for workers in [1usize, 2, 8] {
        let outcome = Engine::builder()
            .workers(workers)
            .build()
            .expect("valid")
            .run(&jobs);
        assert_eq!(outcome.results.len(), reference.results.len());
        for (i, (got, want)) in outcome.results.iter().zip(&reference.results).enumerate() {
            let got = got.as_ref().expect("job succeeds");
            let want = want.as_ref().expect("job succeeds");
            // Point3 equality is exact: bit-identical coordinates.
            assert_eq!(
                got.position(),
                want.position(),
                "job {i} diverged at {workers} workers"
            );
            assert_eq!(
                got.estimate().map(|e| e.equation_count),
                want.estimate().map(|e| e.equation_count),
                "job {i} equation count diverged at {workers} workers"
            );
        }
        // Deterministic counters match the serial run exactly.
        assert_eq!(outcome.report.total.solves, reference.report.total.solves);
        assert_eq!(
            outcome.report.total.equations,
            reference.report.total.equations
        );
        assert_eq!(
            outcome.report.total.irls_iterations,
            reference.report.total.irls_iterations
        );
        assert_eq!(
            outcome.report.total.adaptive_trials,
            reference.report.total.adaptive_trials
        );
    }
}

#[test]
fn aggregate_metrics_equal_per_job_sums_and_counters_are_live() {
    let jobs = batch();
    let outcome = Engine::builder()
        .workers(2)
        .build()
        .expect("valid")
        .run(&jobs);
    assert_eq!(outcome.job_metrics.len(), 64);

    let mut summed = StageMetrics::default();
    for m in &outcome.job_metrics {
        summed.merge(m);
    }
    assert_eq!(summed, outcome.report.total);

    let total = &outcome.report.total;
    assert!(total.solves >= 64, "solves {}", total.solves);
    assert!(total.equations > 0, "equations {}", total.equations);
    assert!(
        total.irls_iterations > 0,
        "irls_iterations {}",
        total.irls_iterations
    );
    assert!(
        total.adaptive_trials > 0,
        "adaptive_trials {}",
        total.adaptive_trials
    );
    assert!(total.solve_ns > 0, "solve_ns {}", total.solve_ns);
    assert_eq!(outcome.report.jobs, 64);
    assert_eq!(outcome.report.failed, 0);
    assert_eq!(outcome.report.workers, 2);
}
