//! Calibration-health watchdog integration tests: a clean streamed run
//! reports all rules healthy, and a mid-stream phase-offset ramp
//! (injected by the simulator) trips `residual_drift` within one
//! watchdog window — through the real engine + doctor wiring, not the
//! unit-level `Doctor` API.

use lion::obs::RuleStatus;
use lion::prelude::*;
use lion::sim::PhaseSample;
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// A noiseless circular scan as simulator samples: 100 Hz, `n` reads.
fn circle_samples(antenna: Point3, n: usize) -> Vec<PhaseSample> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            PhaseSample {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA).rem_euclid(TAU),
                rssi_dbm: -55.0,
                frequency_hz: 920.625e6,
            }
        })
        .collect()
}

fn doctored_job(reads: Vec<StreamRead>) -> StreamJob {
    // Noiseless fixture: smoothing off keeps both solver backends exact,
    // so the cross-check disagreement reflects injected faults only (the
    // smoothing bias otherwise separates the two objectives' minima
    // along the grid's shallow range valley on short-arc windows).
    // Incremental resolve mode so the doctor's sixth rule
    // (`resolve_fallback`) sees data — in replay mode it is
    // insufficient-data by design.
    let config = StreamConfig::builder()
        .localizer(LocalizerConfig {
            smoothing_window: 1,
            ..LocalizerConfig::default()
        })
        .window_capacity(200)
        .min_window_len(40)
        .cadence(Cadence::EveryReads(20))
        .resolve_mode(ResolveMode::Incremental)
        .build()
        .expect("valid config");
    StreamJob::new(reads, config)
        .with_doctor(DoctorConfig::default())
        .with_solver_cross_check(SolverKind::Grid(GridConfig::default()))
}

fn run_health(reads: Vec<StreamRead>) -> HealthReport {
    let outcome = Engine::serial()
        .run_streams(&[doctored_job(reads)])
        .pop()
        .unwrap()
        .expect("stream runs");
    assert!(!outcome.estimates.is_empty(), "cadence solves happened");
    outcome.health.expect("doctor attached to the job")
}

#[test]
fn clean_run_reports_all_rules_healthy() {
    let samples = circle_samples(Point3::new(1.2, 0.4, 0.0), 300);
    let trace = PhaseTrace::new(samples, LAMBDA);
    let reads: Vec<StreamRead> = SampleSource::replay(&trace).map(StreamRead::from).collect();
    let health = run_health(reads);
    assert!(health.healthy, "clean run degraded: {health}");
    assert!(health.firing().is_empty());
    // Enough solves that every rule judged (none left insufficient).
    for rule in &health.rules {
        assert_eq!(rule.status, RuleStatus::Healthy, "{}: {health}", rule.rule);
    }
}

#[test]
fn injected_phase_ramp_trips_residual_drift_within_one_window() {
    let samples = circle_samples(Point3::new(1.2, 0.4, 0.0), 300);
    let trace = PhaseTrace::new(samples, LAMBDA);
    // The simulator ramps the antenna's phase offset from t = 2.0 s:
    // 50 rad/s shreds intra-window phase coherence, so solves past the
    // onset carry residuals far above the clean baseline. The doctor's
    // baseline froze earlier (8 solves ≈ reads 40..180, all clean).
    let reads: Vec<StreamRead> = SampleSource::replay(&trace)
        .with_phase_ramp(2.0, 50.0)
        .map(StreamRead::from)
        .collect();
    let health = run_health(reads);
    assert!(!health.healthy, "drift went unflagged: {health}");
    assert!(
        health.firing().contains(&"residual_drift"),
        "expected residual_drift to fire: {health}"
    );
    let rule = health.rule("residual_drift").expect("rule present");
    assert!(
        rule.value > rule.threshold,
        "ratio {} must exceed threshold {}",
        rule.value,
        rule.threshold
    );
    // The shredded phases also pull the linear and grid estimators apart
    // far beyond the 5 cm agreement radius.
    assert!(
        health.firing().contains(&"solver_disagreement"),
        "expected solver_disagreement to fire: {health}"
    );

    // The report renders deterministically and round-trips the in-repo
    // JSON parser.
    let json = health.to_json();
    let doc = lion::obs::json::parse(&json).expect("valid JSON");
    assert_eq!(
        doc.get("healthy"),
        Some(&lion::obs::json::Json::Bool(false))
    );
    let rules = doc.get("rules").and_then(|v| v.as_array()).expect("rules");
    let names: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("rule").and_then(|v| v.as_str()))
        .collect();
    assert_eq!(
        names,
        [
            "residual_drift",
            "convergence_stall",
            "ingress_shed",
            "solve_latency",
            "solver_disagreement",
            "resolve_fallback"
        ],
        "rule order is fixed"
    );
}

#[test]
fn health_is_absent_without_a_doctor() {
    let samples = circle_samples(Point3::new(1.2, 0.4, 0.0), 200);
    let trace = PhaseTrace::new(samples, LAMBDA);
    let reads: Vec<StreamRead> = SampleSource::replay(&trace).map(StreamRead::from).collect();
    let job = StreamJob::new(reads, StreamConfig::default());
    let outcome = Engine::serial()
        .run_streams(&[job])
        .pop()
        .unwrap()
        .expect("stream runs");
    assert!(outcome.health.is_none(), "no doctor, no report");
}
