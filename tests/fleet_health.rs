//! Fleet-wide telemetry integration: `Engine::run_streams` feeding the
//! installed telemetry hub, scraped over the live HTTP plane.
//!
//! One test drives a ≥ 8-stream fleet (some streams deliberately
//! starved so watchdogs fire) with the hub and scrape server up, then
//! asserts `/health` carries the full rollup — per-rule firing counts,
//! healthy/degraded totals, SLO budget burn — and that the engine's
//! outcomes are bit-identical to a hub-less run of the same jobs (the
//! telemetry plane observes; it must not perturb).
//!
//! The hub, registry, and recorder are process globals, so this file
//! holds exactly one test.

use lion::prelude::*;
use std::f64::consts::{PI, TAU};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// A noiseless circular scan around `antenna`: 100 Hz, `n` reads.
fn circle_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA).rem_euclid(TAU),
                ..StreamRead::default()
            }
        })
        .collect()
}

fn fleet_jobs() -> Vec<StreamJob> {
    let config = StreamConfig::builder()
        .window_capacity(200)
        .min_window_len(40)
        .cadence(Cadence::EveryReads(20))
        .build()
        .expect("valid config");
    (0..10)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
            let mut job = StreamJob::new(circle_reads(antenna, 300), config.clone())
                .with_doctor(DoctorConfig::default());
            if i >= 8 {
                // Starved ingress: 100-read bursts into 25 slots shed
                // 75%, so `ingress_shed` fires on these two streams.
                job = job.with_burst(100).with_queue_capacity(25);
            }
            job
        })
        .collect()
}

fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
    body.to_string()
}

#[test]
fn fleet_rollup_is_scrapeable_and_does_not_perturb_outcomes() {
    let jobs = fleet_jobs();
    let engine = Engine::builder().workers(4).build().expect("valid engine");

    // Baseline: the same fleet with no telemetry plane attached.
    let baseline = engine.run_streams(&jobs);

    // Live plane up: hub + scrape server (the recorder stays out — the
    // profile/trace routes are covered by the obs crate's own tests).
    let hub = install_telemetry_hub(lion::obs::SloConfig::default());
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind ephemeral");
    let observed = engine.run_streams(&jobs);

    // The plane observes without perturbing: bit-identical estimates.
    for (b, o) in baseline.iter().zip(&observed) {
        let (b, o) = (b.as_ref().unwrap(), o.as_ref().unwrap());
        assert_eq!(b.estimates.len(), o.estimates.len());
        for (x, y) in b.estimates.iter().zip(&o.estimates) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.seq, y.seq);
        }
    }

    // `/health` carries the rollup of all 10 doctored streams.
    let health = scrape(server.local_addr(), "/health");
    let doc = lion::obs::json::parse(health.trim()).expect("health JSON parses");
    assert_eq!(
        doc.get("hub_installed").and_then(|v| v.as_bool()),
        Some(true)
    );
    let fleet = doc.get("fleet").expect("fleet rollup present");
    let streams = fleet.get("streams").and_then(|v| v.as_u64()).unwrap();
    assert!(streams >= 8, "only {streams} streams aggregated");

    // Per-rule firing counts: the two starved streams trip ingress_shed
    // and nothing reports the clean streams unhealthy.
    let rules = fleet
        .get("rules")
        .and_then(|v| v.as_array())
        .expect("rules array");
    let firing = |name: &str| {
        rules
            .iter()
            .find(|r| r.get("rule").and_then(|v| v.as_str()) == Some(name))
            .and_then(|r| r.get("firing"))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("rule {name} missing from rollup"))
    };
    assert_eq!(firing("ingress_shed"), 2, "{health}");
    assert_eq!(firing("convergence_stall"), 0, "{health}");
    let healthy = fleet.get("healthy").and_then(|v| v.as_u64()).unwrap();
    assert!(healthy >= 8, "{health}");

    // SLO budget burn is present and finite (every solve fed the window).
    let slo = fleet.get("slo").expect("slo verdict");
    assert!(slo.get("window_len").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(slo.get("burn_rate").and_then(|v| v.as_f64()).is_some());

    // The same rollup reaches Prometheus as fleet gauges.
    let metrics = scrape(server.local_addr(), "/metrics");
    assert!(
        metrics.contains(&format!("fleet_streams {streams}")),
        "{metrics}"
    );
    assert!(metrics.contains("fleet_rule_ingress_shed_firing 2"));
    assert!(metrics.contains("# TYPE fleet_slo_burn_rate gauge"));

    // And the rollup is submission-order deterministic: the worst shed
    // offender is one of the two starved slots, by stream id.
    let worst = rules
        .iter()
        .find(|r| r.get("rule").and_then(|v| v.as_str()) == Some("ingress_shed"))
        .and_then(|r| r.get("worst_stream"))
        .and_then(|v| v.as_str())
        .expect("worst offender recorded");
    assert!(worst == "stream-8" || worst == "stream-9", "{worst}");

    server.shutdown();
    let hub_again = uninstall_telemetry_hub().expect("hub was installed");
    assert_eq!(hub_again.fleet_report().streams, hub.fleet_report().streams);
}
