//! Causal-tracing integration tests: every stage span emitted by
//! [`Engine::run_streams`] must hang under exactly one `lion.stream.job`
//! root, the span *tree* (ids normalized away) must be identical across
//! worker counts, the flight recorder must retain a failing solve's full
//! ancestry with deterministic drop counters, and a recorded run must
//! round-trip through the Chrome trace exporter with correct nesting.
//!
//! The flight recorder is a process-wide singleton, so every test here
//! serializes on one lock.

use std::collections::BTreeMap;
use std::f64::consts::{PI, TAU};
use std::sync::{Mutex, MutexGuard};

use lion::obs::{uninstall_flight_recorder, FlightSnapshot, SpanClose};
use lion::prelude::*;

/// Tests share the global flight-recorder slot; run them one at a time.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// Clean circular-scan reads for one antenna: every solve succeeds.
fn circle_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

fn stream_jobs(count: usize) -> Vec<StreamJob> {
    let config = lion::stream::StreamConfig::builder()
        .window_capacity(128)
        .min_window_len(48)
        .cadence(Cadence::EveryReads(40))
        .build()
        .expect("valid config");
    (0..count)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
            StreamJob::new(circle_reads(antenna, 240), config.clone())
        })
        .collect()
}

/// Runs `jobs` under a fresh flight recorder and returns the drained
/// tail. `capacity` is the per-thread ring size.
fn run_and_drain(workers: usize, jobs: &[StreamJob], capacity: usize) -> FlightSnapshot {
    let recorder = install_flight_recorder(capacity);
    let engine = if workers == 1 {
        Engine::serial()
    } else {
        Engine::builder().workers(workers).build().expect("valid")
    };
    let outcomes = engine.run_streams(jobs);
    let snapshot = recorder.drain();
    uninstall_flight_recorder();
    for outcome in outcomes {
        outcome.expect("clean stream runs");
    }
    snapshot
}

/// Renders one trace's span tree with ids erased: `name(child,child,…)`.
/// Children appear in canonical merge order, which for a stream (one
/// thread, sequential solves) is chronological close order.
fn render(span: &SpanClose, children: &BTreeMap<u64, Vec<&SpanClose>>) -> String {
    let kids = children
        .get(&span.id)
        .map(|kids| {
            kids.iter()
                .map(|c| render(c, children))
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default();
    format!("{}({kids})", span.name)
}

/// Groups the snapshot's spans by trace, checks every span's parent
/// chain resolves to exactly one `lion.stream.job` root, and returns the
/// normalized trees in trace-id order (= submission order, since roots
/// are minted on the submitting thread).
fn normalized_trees(snapshot: &FlightSnapshot) -> Vec<String> {
    let mut by_trace: BTreeMap<u64, Vec<&SpanClose>> = BTreeMap::new();
    for span in snapshot.spans() {
        assert_ne!(span.trace_id, 0, "span {} outside any trace", span.name);
        by_trace.entry(span.trace_id).or_default().push(span);
    }
    by_trace
        .values()
        .map(|spans| {
            let by_id: BTreeMap<u64, &SpanClose> = spans.iter().map(|s| (s.id, *s)).collect();
            let roots: Vec<&&SpanClose> = spans.iter().filter(|s| s.parent == 0).collect();
            assert_eq!(roots.len(), 1, "trace must have exactly one root");
            let root = *roots[0];
            assert_eq!(root.name, "lion.stream.job");
            // Every span walks its parent chain back to that root.
            for span in spans {
                let mut cursor = *span;
                let mut hops = 0;
                while cursor.parent != 0 {
                    cursor = by_id
                        .get(&cursor.parent)
                        .unwrap_or_else(|| panic!("span {} has unresolvable parent", span.name));
                    hops += 1;
                    assert!(hops < 64, "parent chain cycle at {}", span.name);
                }
                assert_eq!(cursor.id, root.id, "span {} roots elsewhere", span.name);
            }
            let mut children: BTreeMap<u64, Vec<&SpanClose>> = BTreeMap::new();
            for span in spans {
                children.entry(span.parent).or_default().push(span);
            }
            render(root, &children)
        })
        .collect()
}

#[test]
fn every_stage_span_roots_in_one_job_span() {
    let _serial = recorder_lock();
    let jobs = stream_jobs(3);
    let snapshot = run_and_drain(1, &jobs, 1 << 16);
    assert_eq!(snapshot.total_dropped(), 0, "ring must hold the whole run");
    let trees = normalized_trees(&snapshot);
    assert_eq!(trees.len(), jobs.len(), "one trace per stream job");
    for tree in &trees {
        // The full pipeline shows up nested under the job root:
        // job → solve → unwrap/smooth/pairs/solve (three levels).
        assert!(tree.starts_with("lion.stream.job("), "tree: {tree}");
        assert!(tree.contains("lion.stream.ingress"), "tree: {tree}");
        assert!(tree.contains("lion.stream.window"), "tree: {tree}");
        assert!(
            tree.contains("lion.stream.solve(lion.unwrap"),
            "solve must nest the core stages: {tree}"
        );
        assert!(tree.contains("lion.pairs"), "tree: {tree}");
    }
}

#[test]
fn span_trees_are_identical_across_worker_counts() {
    let _serial = recorder_lock();
    let jobs = stream_jobs(4);
    let serial = normalized_trees(&run_and_drain(1, &jobs, 1 << 16));
    let parallel = normalized_trees(&run_and_drain(4, &jobs, 1 << 16));
    assert_eq!(serial.len(), 4);
    // Ids and lanes differ between runs; the normalized trees do not.
    assert_eq!(serial, parallel);
}

/// A stationary tag: every position identical, so every cadence solve
/// hits `DegenerateGeometry` and fails.
fn degenerate_job() -> StreamJob {
    let reads: Vec<StreamRead> = (0..200)
        .map(|i| StreamRead {
            time: i as f64 * 0.01,
            position: Point3::new(0.2, 0.0, 0.0),
            phase: 0.3,
            ..StreamRead::default()
        })
        .collect();
    let config = lion::stream::StreamConfig::builder()
        .window_capacity(64)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(8))
        .build()
        .expect("valid config");
    StreamJob::new(reads, config)
}

#[test]
fn flight_recorder_keeps_failing_solve_ancestry_and_counts_drops() {
    let _serial = recorder_lock();
    let run = || {
        let recorder = install_flight_recorder(32);
        let outcome = Engine::serial()
            .run_streams(&[degenerate_job()])
            .pop()
            .unwrap()
            .expect("stream survives failing solves");
        let snapshot = recorder.drain();
        uninstall_flight_recorder();
        (outcome, snapshot)
    };
    let (outcome, snapshot) = run();
    assert!(outcome.solve_errors > 0, "solves must actually fail");
    assert!(outcome.estimates.is_empty());

    // The tiny ring overflowed — deterministically.
    assert!(snapshot.total_dropped() > 0);

    // The last failing solve's full ancestry is still in the tail: the
    // solve span itself chains to the `lion.stream.job` trace root.
    let failing = snapshot
        .spans()
        .filter(|s| s.name == "lion.stream.solve")
        .last()
        .expect("a failing solve span survives in the tail");
    let chain = snapshot.ancestry(failing.id);
    let names: Vec<&str> = chain.iter().map(|s| s.name).collect();
    assert_eq!(names.first(), Some(&"lion.stream.solve"));
    assert_eq!(names.last(), Some(&"lion.stream.job"));
    assert_eq!(chain.last().unwrap().parent, 0, "ancestry reaches the root");

    // Same workload, fresh recorder: identical drop counter.
    let (_, again) = run();
    assert_eq!(again.total_dropped(), snapshot.total_dropped());
}

#[test]
fn error_construction_files_a_dump_with_ambient_context() {
    let _serial = recorder_lock();
    let recorder = install_flight_recorder(64);
    let expected = {
        let span = lion::obs::span!("causality.failing.op");
        let id = span.id().expect("recording");
        // A per-crate error surfacing as `lion::Error` inside the span
        // must file a dump stamped with this exact trace position.
        let core_err = Localizer2d::new(LocalizerConfig::default())
            .locate(&[])
            .unwrap_err();
        let _: lion::Error = core_err.into();
        TraceContext {
            trace_id: id,
            parent: id,
        }
    };
    let failures = recorder.failures();
    uninstall_flight_recorder();
    let dump = failures.last().expect("error construction filed a dump");
    assert_eq!(dump.domain, "core");
    assert_eq!(dump.kind, "too_few_measurements");
    assert_eq!(dump.trace, Some(expected));
    assert!(!dump.snapshot.is_empty());
}

#[test]
fn recorded_run_round_trips_through_chrome_trace_export() {
    let _serial = recorder_lock();
    let jobs = stream_jobs(1);
    let snapshot = run_and_drain(1, &jobs, 1 << 16);
    let trace = lion::obs::export::to_chrome_trace(snapshot.records());
    let doc = lion::obs::json::parse(&trace).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // Pull ts/dur (µs) for one complete event by name.
    let complete = |name: &str| -> Vec<(f64, f64)> {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && e.get("name").and_then(|v| v.as_str()) == Some(name)
            })
            .map(|e| {
                let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
                let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
                (ts, dur)
            })
            .collect()
    };
    let jobs_spans = complete("lion.stream.job");
    let solves = complete("lion.stream.solve");
    let unwraps = complete("lion.unwrap");
    assert_eq!(jobs_spans.len(), 1);
    assert!(!solves.is_empty());
    assert!(!unwraps.is_empty());

    // Three nested levels with ts/dur containment (ε covers the f64
    // rounding of the exact-decimal µs rendering).
    let within = |inner: (f64, f64), outer: (f64, f64)| {
        inner.0 >= outer.0 - 1e-3 && inner.0 + inner.1 <= outer.0 + outer.1 + 1e-3
    };
    let job = jobs_spans[0];
    for &solve in &solves {
        assert!(within(solve, job), "solve {solve:?} outside job {job:?}");
    }
    // Every unwrap sits inside some solve, which sits inside the job.
    for &unwrap in &unwraps {
        assert!(
            solves.iter().any(|&solve| within(unwrap, solve)),
            "unwrap {unwrap:?} not contained in any solve"
        );
        assert!(within(unwrap, job));
    }

    // Lanes surfaced as thread metadata for Perfetto's track names.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(|v| v.as_str()) == Some("M")
            && e.get("name").and_then(|v| v.as_str()) == Some("thread_name")
    }));
}
