//! Determinism of the history plane across worker counts: with the same
//! jobs, the same injected clock schedule, and the same alert rules, the
//! stored time series, the alert state machine's transition log, and the
//! rendered `/alerts` JSON are **bit-identical** whether the engine ran
//! the streams on 1, 2, or 4 workers.
//!
//! Kept as a single test function: it owns the process-global registry
//! and telemetry hub for its whole duration.

use std::f64::consts::{PI, TAU};

use lion::obs::fleet::HistoryConfig;
use lion::prelude::*;

fn clean_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    let lambda = StreamConfig::default().localizer.wavelength;
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / lambda) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

/// Six labelled, doctored streams; the last one floods a tiny ingress
/// queue so its doctor deterministically fires `ingress_shed`.
fn jobs() -> Vec<StreamJob> {
    (0..6)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
            let config = StreamConfig::builder()
                .label(format!("portal-{i}"))
                .build()
                .expect("valid");
            let job = StreamJob::new(clean_reads(antenna, 300), config)
                .with_doctor(DoctorConfig::default());
            if i == 5 {
                job.with_burst(100).with_queue_capacity(25)
            } else {
                job
            }
        })
        .collect()
}

/// Everything the history plane produced for one run, flattened to
/// comparable strings. Only deterministic series are queried — solve
/// latencies are wall-clock and differ run to run, so no rule or query
/// here references them.
#[derive(Debug, PartialEq)]
struct RunArtifacts {
    transitions: Vec<String>,
    alerts_json: String,
    summary: String,
    series: Vec<String>,
}

fn alert_rules() -> Vec<AlertRule> {
    vec![
        // A fleet-health alert: the doctor rollup's shed verdict.
        AlertRule::above(
            "fleet_ingress_shed",
            AlertExpr::GaugeLast {
                series: "fleet.rule.ingress_shed.firing".to_string(),
            },
            0.0,
        )
        .annotate("doctor_rule", "ingress_shed"),
        // A plain threshold alert with a `for` duration and hysteresis,
        // driven by a gauge the test sets by hand.
        AlertRule::above(
            "test_fault",
            AlertExpr::GaugeLast {
                series: "test.fault".to_string(),
            },
            0.5,
        )
        .clear_at(0.25)
        .for_duration(1_500_000_000),
    ]
}

fn run_with_workers(workers: usize) -> RunArtifacts {
    lion::obs::global().clear();
    let hub = install_telemetry_hub(SloConfig::default());
    let clock = ManualClock::new(0);
    let tsdb = hub.enable_history(HistoryConfig {
        clock: clock.clone(),
        sample_period_ns: 1_000_000_000,
        alert_rules: alert_rules(),
        ..HistoryConfig::default()
    });

    // The engine brackets the run with sampler due-checks at fixed
    // lifecycle points; with the clock pinned at 0 exactly one sample
    // (t=0) is taken regardless of worker count or wall time.
    let engine = Engine::builder().workers(workers).build().expect("valid");
    let outcomes = engine.run_streams(&jobs());
    assert_eq!(outcomes.len(), 6);
    for outcome in &outcomes {
        assert!(outcome.is_ok());
    }

    // Scripted clock schedule: breach at 1s (pending), still short of the
    // 1.5s `for` at 2s, firing at 3s, resolved at 4s.
    for (t_ns, fault) in [
        (1_000_000_000u64, 1.0),
        (2_000_000_000, 1.0),
        (3_000_000_000, 1.0),
        (4_000_000_000, 0.1),
    ] {
        clock.set(t_ns);
        lion::obs::global().gauge_set("test.fault", fault);
        assert_eq!(hub.sample_tick(), Some(t_ns), "tick at {t_ns}");
    }

    let (transitions, alerts_json, summary) = hub
        .with_alerts(|alerts| {
            (
                alerts
                    .transitions()
                    .map(|t| format!("{t:?}"))
                    .collect::<Vec<_>>(),
                alerts.to_json(),
                alerts.summary(),
            )
        })
        .expect("history enabled");

    // Every deterministic series the engine recorded, rendered through
    // the same point JSON the `/query` route serves.
    let mut series = Vec::new();
    for info in tsdb.series_list() {
        // Per-stream series (stream-time stamped), fleet verdict gauges,
        // and the hand-driven fault gauge are deterministic; the bare
        // registry samples (e.g. `lion.stream.solve_ns` latencies) are
        // wall-clock and excluded.
        if !((info.name.starts_with("lion.stream.") && info.name.contains("{stream=\""))
            || info.name.starts_with("fleet.rule.")
            || info.name == "test.fault")
        {
            continue;
        }
        let points = tsdb
            .query(&info.name, Tier::Raw, 0, u64::MAX)
            .expect("listed series exists");
        let lines = match points {
            lion::obs::SeriesPoints::Gauge(ps) => {
                ps.iter().map(|p| p.to_json()).collect::<Vec<_>>()
            }
            lion::obs::SeriesPoints::Counter(ps) => {
                ps.iter().map(|p| p.to_json()).collect::<Vec<_>>()
            }
            lion::obs::SeriesPoints::Histogram(ps) => {
                ps.iter().map(|p| p.to_json()).collect::<Vec<_>>()
            }
        };
        series.push(format!("{} {}", info.name, lines.join(" ")));
    }

    uninstall_telemetry_hub();
    lion::obs::global().clear();
    RunArtifacts {
        transitions,
        alerts_json,
        summary,
        series,
    }
}

#[test]
fn alert_transitions_and_history_are_identical_across_worker_counts() {
    let baseline = run_with_workers(1);

    // The scripted schedule walked the full state machine.
    assert!(
        baseline.summary.contains("firing"),
        "summary: {}",
        baseline.summary
    );
    assert!(
        baseline
            .transitions
            .iter()
            .any(|t| t.contains("test_fault") && t.contains("Pending")),
        "{:?}",
        baseline.transitions
    );
    assert!(
        baseline
            .transitions
            .iter()
            .any(|t| t.contains("test_fault") && t.contains("Firing")),
        "{:?}",
        baseline.transitions
    );
    assert!(
        baseline.alerts_json.contains("\"resolved\""),
        "{}",
        baseline.alerts_json
    );
    // The shed alert annotated its firing with the worst stream from the
    // fleet rollup — the flooded portal.
    assert!(
        baseline.alerts_json.contains("portal-5"),
        "{}",
        baseline.alerts_json
    );
    // The engine recorded per-stream series under the configured labels.
    assert!(
        baseline
            .series
            .iter()
            .any(|s| s.starts_with("lion.stream.residual{stream=\"portal-0\"}")),
        "{:#?}",
        baseline.series
    );
    assert!(!baseline.series.is_empty());

    for workers in [2, 4] {
        let run = run_with_workers(workers);
        assert_eq!(baseline, run, "history plane diverged at {workers} workers");
    }
}
