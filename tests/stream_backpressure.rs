//! Per-stream backpressure: bounded ingress, deterministic oldest-drop.
//!
//! A burst larger than the ingress queue must shed exactly its oldest
//! reads — the same reads, the same counts, every run, any worker count.

use lion::prelude::*;
use lion::stream::Ingress;
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn circle_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

#[test]
fn ingress_sheds_exactly_the_oldest() {
    let reads = circle_reads(Point3::new(1.2, 0.4, 0.0), 10);
    let mut q = Ingress::new(4).expect("valid");
    let mut shed = Vec::new();
    for &read in &reads {
        if let Some(old) = q.offer(read) {
            shed.push(old.time);
        }
    }
    // Capacity 4, 10 offers: reads 0..6 shed in order, 6..10 retained.
    assert_eq!(shed, vec![0.0, 0.01, 0.02, 0.03, 0.04, 0.05]);
    let kept: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|r| r.time).collect();
    assert_eq!(kept, vec![0.06, 0.07, 0.08, 0.09]);
    assert_eq!(q.overflow_dropped(), 6);
    assert_eq!(q.offered(), 10);
}

#[test]
fn overflow_counts_are_an_exact_function_of_burst_shape() {
    let reads = circle_reads(Point3::new(1.2, 0.4, 0.0), 600);
    // burst 100 into queue 30: each full burst sheds 70.
    let job = StreamJob::new(reads, StreamConfig::default())
        .with_burst(100)
        .with_queue_capacity(30);
    let outcome = Engine::serial()
        .run_streams(std::slice::from_ref(&job))
        .pop()
        .unwrap()
        .expect("runs");
    assert_eq!(outcome.reads_in, 600);
    assert_eq!(outcome.overflow_dropped, 6 * 70);
    // The pipeline only ever saw the surviving 30 reads per burst.
    let survivors = 600 - outcome.overflow_dropped;
    assert_eq!(survivors, 180);
}

#[test]
fn capacity_at_least_burst_never_drops() {
    let reads = circle_reads(Point3::new(1.2, 0.4, 0.0), 400);
    let job = StreamJob::new(reads, StreamConfig::default())
        .with_burst(32)
        .with_queue_capacity(32);
    let outcome = Engine::serial()
        .run_streams(std::slice::from_ref(&job))
        .pop()
        .unwrap()
        .expect("runs");
    assert_eq!(outcome.overflow_dropped, 0);
    assert!(outcome.final_estimate().is_some());
}

#[test]
fn backpressure_outcomes_identical_across_worker_counts() {
    let jobs: Vec<StreamJob> = (0..8)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.05 * i as f64, 0.4, 0.0);
            StreamJob::new(circle_reads(antenna, 350), StreamConfig::default())
                .with_burst(90)
                .with_queue_capacity(40)
        })
        .collect();
    let serial = Engine::serial().run_streams(&jobs);
    let parallel = Engine::builder()
        .workers(4)
        .build()
        .expect("valid")
        .run_streams(&jobs);
    for (slot, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.overflow_dropped, p.overflow_dropped, "slot {slot}");
        assert_eq!(s.late_rejected, p.late_rejected, "slot {slot}");
        assert_eq!(s.estimates.len(), p.estimates.len(), "slot {slot}");
        for (a, b) in s.estimates.iter().zip(&p.estimates) {
            assert_eq!(a.position, b.position, "slot {slot} seq {}", a.seq);
            assert_eq!(a.d_r, b.d_r);
            assert_eq!(a.window_span, b.window_span);
        }
    }
}

#[test]
fn dropped_reads_do_not_block_convergence() {
    // Heavy shedding still leaves a usable stream: the estimates that do
    // come out are built from the retained reads and still locate.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let job = StreamJob::new(
        circle_reads(antenna, 1_200),
        StreamConfig::builder()
            .min_window_len(24)
            .cadence(Cadence::EveryReads(16))
            .build()
            .expect("valid"),
    )
    .with_burst(60)
    .with_queue_capacity(45);
    let outcome = Engine::serial()
        .run_streams(&[job])
        .pop()
        .unwrap()
        .expect("runs");
    assert!(outcome.overflow_dropped > 0, "test needs real shedding");
    let last = outcome.final_estimate().expect("estimates emitted");
    assert!(
        last.position.distance(antenna) < 5e-2,
        "located {:?} despite {} drops",
        last.position,
        outcome.overflow_dropped
    );
}
