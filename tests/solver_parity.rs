//! Cross-backend parity suite: the likelihood-grid solver must agree
//! with the linear (least-squares) solver within the documented
//! tolerance, stay bit-identical across engine worker counts, and
//! surface its typed failures through the workspace error taxonomy and
//! the engine's failure accounting.

use lion::prelude::*;
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// Deterministic LCG standard-normal-ish draws (sum of 12 uniforms).
struct Lcg(u64);

impl Lcg {
    fn normal(&mut self) -> f64 {
        let mut sum = 0.0;
        for _ in 0..12 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sum += (self.0 >> 11) as f64 / (1u64 << 53) as f64;
        }
        sum - 6.0
    }
}

/// A fig16-style workload: a tag scanned along a ±0.75 m track in front
/// of an antenna at 0.8 m depth, with Gaussian phase noise.
fn fig16_measurements(target: Point3, sigma: f64, seed: u64) -> Vec<(Point3, f64)> {
    let mut rng = Lcg(seed);
    (0..=300)
        .map(|i| {
            let p = Point3::new(-0.75 + i as f64 * 0.005, 0.0, 0.0);
            let phase = 4.0 * PI * target.distance(p) / LAMBDA + sigma * rng.normal();
            (p, phase.rem_euclid(TAU))
        })
        .collect()
}

fn config(solver: SolverKind) -> LocalizerConfig {
    LocalizerConfig::builder()
        .pair_strategy(PairStrategy::Interval { interval: 0.2 })
        .side_hint(Point3::new(0.0, 0.5, 0.0))
        .solver(solver)
        .build()
        .expect("valid config")
}

/// DESIGN §12 documents the cross-backend agreement contract: on the
/// fig16 rig the grid backend lands within 2 cm of the linear estimate
/// under σ = 0.1 rad phase noise, and within 1 mm noiselessly.
#[test]
fn grid_matches_linear_within_documented_tolerance_on_fig16() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let linear = Localizer2d::new(config(SolverKind::Linear));
    let grid = Localizer2d::new(config(SolverKind::Grid(GridConfig::default())));

    // Noiseless (smoothing off, so neither backend sees biased phases):
    // both objectives share the same global minimum, and the grid's
    // final polish converges onto it.
    let unsmoothed = |solver| {
        let mut c = config(solver);
        c.smoothing_window = 1;
        Localizer2d::new(c)
    };
    let clean = fig16_measurements(target, 0.0, 7);
    let ls = unsmoothed(SolverKind::Linear)
        .locate(&clean)
        .expect("linear solves");
    let lg = unsmoothed(SolverKind::Grid(GridConfig::default()))
        .locate(&clean)
        .expect("grid solves");
    let d = ls.position.distance(lg.position);
    assert!(d < 1e-3, "noiseless backends diverged by {d} m");
    assert!(lg.distance_error(target) < 1e-3);

    // Noisy: the per-sample likelihood and the pairwise WLS objective
    // weight the same data differently, so the minima separate — but
    // must stay inside the documented 2 cm agreement radius.
    for seed in [7, 42, 1234] {
        let noisy = fig16_measurements(target, 0.1, seed);
        let ls = linear.locate(&noisy).expect("linear solves");
        let lg = grid.locate(&noisy).expect("grid solves");
        let d = ls.position.distance(lg.position);
        assert!(d < 0.02, "seed {seed}: backends diverged by {d} m");
        assert!(
            lg.distance_error(target) < 0.1,
            "seed {seed}: grid error {}",
            lg.distance_error(target)
        );
    }
}

/// The adaptive sweep with a grid backend is one deterministic function
/// of its inputs: fanning the sweep plan across workers must reproduce
/// the serial outcome bit for bit.
#[test]
fn grid_sweep_is_bit_identical_across_worker_counts() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let m = fig16_measurements(target, 0.1, 99);
    let cfg = config(SolverKind::Grid(GridConfig::default()));
    let adaptive = AdaptiveConfig::default();

    let serial = Engine::serial()
        .locate_adaptive_2d(&m, &cfg, &adaptive)
        .expect("serial sweep");
    for workers in [2, 4, 7] {
        let engine = Engine::builder().workers(workers).build().expect("valid");
        let fanned = engine
            .locate_adaptive_2d(&m, &cfg, &adaptive)
            .expect("fanned sweep");
        let (s, f) = (serial.estimate.position, fanned.estimate.position);
        assert_eq!(s.x.to_bits(), f.x.to_bits(), "{workers} workers: x");
        assert_eq!(s.y.to_bits(), f.y.to_bits(), "{workers} workers: y");
        assert_eq!(s.z.to_bits(), f.z.to_bits(), "{workers} workers: z");
        assert_eq!(serial.trials.len(), fanned.trials.len());
        for (rank, (a, b)) in serial.trials.iter().zip(&fanned.trials).enumerate() {
            assert_eq!(
                (a.range, a.interval),
                (b.range, b.interval),
                "{workers} workers: ranking diverged at rank {rank}"
            );
        }
    }
}

/// A grid whose contrast gate is impossibly strict fails with
/// `DegenerateLikelihood`; the kind must survive the trip through the
/// engine's per-kind failure accounting, the workspace `lion::Error`,
/// and the flight recorder's failure dumps.
#[test]
fn degenerate_likelihood_flows_through_the_error_taxonomy() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let m = fig16_measurements(target, 0.0, 7);
    let poisoned = config(SolverKind::Grid(GridConfig {
        min_contrast: 1e12,
        ..GridConfig::default()
    }));
    let jobs = vec![
        Job::locate_2d(m.clone(), poisoned.clone()),
        Job::locate_2d(m.clone(), poisoned),
        Job::locate_2d(m, config(SolverKind::Linear)),
    ];
    let outcome = Engine::serial().run(&jobs);

    // The healthy linear job is unaffected; both poisoned jobs fail
    // with the typed grid error.
    assert!(outcome.results[2].is_ok(), "linear job must still solve");
    for result in &outcome.results[..2] {
        let err = result.as_ref().expect_err("poisoned grid fails");
        assert_eq!(err.kind(), "degenerate_likelihood");
    }
    assert_eq!(outcome.report.failed, 2);
    assert!(
        outcome
            .report
            .failures_by_kind
            .contains(&("degenerate_likelihood".to_string(), 2)),
        "failures_by_kind: {:?}",
        outcome.report.failures_by_kind
    );

    // Conversion into the workspace error preserves kind and domain and
    // files a flight-recorder dump.
    let recorder = install_flight_recorder(64);
    let core_err = outcome.results[0].as_ref().unwrap_err().clone();
    let unified: lion::Error = core_err.into();
    assert_eq!(unified.kind(), "degenerate_likelihood");
    assert_eq!(unified.domain(), "core");
    let failures = recorder.failures();
    lion::obs::uninstall_flight_recorder();
    let dump = failures.last().expect("conversion filed a dump");
    assert_eq!(dump.domain, "core");
    assert_eq!(dump.kind, "degenerate_likelihood");
}
