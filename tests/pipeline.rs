//! End-to-end integration tests: simulate hardware with hidden ground
//! truth, run the full LION pipeline, and check the truth is recovered.

use lion::core::{
    AdaptiveConfig, Calibrator, Localizer2d, Localizer3d, LocalizerConfig, PairStrategy,
};
use lion::geom::{CircularArc, LineSegment, Point3, ThreeLineScan, Trajectory};
use lion::linalg::stats;
use lion::sim::{Antenna, NoiseModel, ScenarioBuilder, Tag};

fn scenario(antenna: Antenna, seed: u64) -> lion::sim::Scenario {
    ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("it").with_phase_offset(0.8))
        .noise(NoiseModel::paper_default())
        .seed(seed)
        .build()
        .expect("components set")
}

#[test]
fn full_calibration_recovers_planted_displacement_and_offset() {
    let physical = Point3::new(0.0, 0.8, 0.05);
    let antenna = Antenna::builder(physical)
        .phase_center_displacement(0.022, -0.013, 0.017)
        .phase_offset(3.1)
        .build();
    let truth_center = antenna.phase_center();
    let truth_offset = 3.1 + 0.8; // antenna + tag

    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid scan");
    let mut sc = scenario(antenna, 17);
    let m = sc
        .scan(&scan.to_path(), 0.1, 100.0)
        .expect("valid scan")
        .to_measurements();
    let cfg = LocalizerConfig {
        pair_strategy: PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        },
        side_hint: Some(physical),
        ..LocalizerConfig::default()
    };
    let cal = Calibrator::new(cfg)
        .with_adaptive(None)
        .calibrate(&m, physical)
        .expect("calibration succeeds");

    assert!(
        cal.phase_center.distance(truth_center) < 0.008,
        "center error {} m",
        cal.phase_center.distance(truth_center)
    );
    let off_err = stats::circular_diff(cal.phase_offset, truth_offset).abs();
    assert!(off_err < 0.3, "offset error {off_err} rad");
    // Displacement = estimated center − physical center.
    let disp_err = (cal.center_displacement - (truth_center - physical)).norm();
    assert!(disp_err < 0.008, "displacement error {disp_err}");
}

#[test]
fn calibration_with_adaptive_sweep_also_works() {
    let physical = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(physical)
        .phase_center_displacement(0.018, -0.01, 0.012)
        .build();
    let truth = antenna.phase_center();
    let scan = ThreeLineScan::new(-0.5, 0.5, 0.2, 0.2).expect("valid scan");
    let mut sc = scenario(antenna, 23);
    let m = sc
        .scan(&scan.to_path(), 0.1, 100.0)
        .expect("valid scan")
        .to_measurements();
    let cfg = LocalizerConfig {
        pair_strategy: PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        },
        side_hint: Some(physical),
        ..LocalizerConfig::default()
    };
    let cal = Calibrator::new(cfg)
        .with_adaptive(Some(AdaptiveConfig::default()))
        .calibrate(&m, physical)
        .expect("calibration succeeds");
    assert!(
        cal.phase_center.distance(truth) < 0.012,
        "center error {} m",
        cal.phase_center.distance(truth)
    );
}

#[test]
fn localizer_2d_matches_hologram_on_shared_trace() {
    use lion::baselines::hologram::{self, HologramConfig, SearchVolume};
    let target = Point3::new(0.4, 0.9, 0.0);
    let antenna = Antenna::builder(target).build();
    let circle = CircularArc::turntable(Point3::ORIGIN, 0.3).expect("valid");
    let mut sc = scenario(antenna, 29);
    let trace = sc.scan(&circle, 0.1, 100.0).expect("valid scan");
    let m = trace.to_measurements();

    let lion_est = Localizer2d::new(LocalizerConfig {
        side_hint: Some(Point3::new(0.3, 0.8, 0.0)),
        ..LocalizerConfig::default()
    })
    .locate(&m)
    .expect("lion locates");

    let dec: Vec<(Point3, f64)> = m.iter().step_by(10).copied().collect();
    let dah_est = hologram::locate(
        &dec,
        SearchVolume::square_2d(target, 0.05),
        &HologramConfig {
            grid_size: 0.002,
            wavelength: trace.wavelength(),
            augmented: true,
        },
    )
    .expect("hologram locates");

    // Both close to the truth, and to each other.
    assert!(lion_est.distance_error(target) < 0.02);
    assert!(dah_est.position.distance(target) < 0.02);
    assert!(lion_est.position.distance(dah_est.position) < 0.03);
}

#[test]
fn localizer_agrees_with_hyperbola_baseline() {
    use lion::baselines::hyperbola::{self, HyperbolaConfig};
    let target = Point3::new(0.7, 0.4, 0.0);
    let antenna = Antenna::builder(target).build();
    let circle = CircularArc::turntable(Point3::ORIGIN, 0.3).expect("valid");
    let mut sc = scenario(antenna, 31);
    let m = sc
        .scan(&circle, 0.1, 100.0)
        .expect("valid scan")
        .to_measurements();

    let lion_est = Localizer2d::new(LocalizerConfig::default())
        .locate(&m)
        .expect("lion locates");
    let hyp_est = hyperbola::locate(&m, &HyperbolaConfig::default()).expect("hyperbola locates");

    assert!(lion_est.distance_error(target) < 0.02);
    assert!(hyp_est.position.distance(target) < 0.02);
}

#[test]
fn three_d_localization_from_planar_circle_recovers_height() {
    let target = Point3::new(0.1, 0.2, 0.8);
    let antenna = Antenna::builder(target)
        .boresight(lion::geom::Vec3::new(0.0, 0.0, -1.0))
        .build();
    let circle = CircularArc::turntable(Point3::ORIGIN, 0.35).expect("valid");
    let mut sc = scenario(antenna, 43);
    let m = sc
        .scan(&circle, 0.1, 100.0)
        .expect("valid scan")
        .to_measurements();
    // Nearly-overhead geometry: the phase varies little around the circle,
    // so noisy distance differences attenuate the d_r regressor unless the
    // pairwise phase difference is enlarged — the paper's Fig. 18 lesson
    // (bigger scanning interval) plus heavier smoothing.
    let est = Localizer3d::new(LocalizerConfig {
        side_hint: Some(Point3::new(0.0, 0.0, 0.5)),
        smoothing_window: 51,
        pair_strategy: lion::core::PairStrategy::Interval { interval: 0.45 },
        ..LocalizerConfig::default()
    })
    .locate(&m)
    .expect("locates");
    assert!(est.lower_dimension);
    assert!(
        est.distance_error(target) < 0.03,
        "error {} m",
        est.distance_error(target)
    );
}

#[test]
fn tag_relative_localization_roundtrip() {
    // The conveyor trick: locate a tag's start position from a calibrated
    // antenna via the relative frame, end to end.
    let antenna_center = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(antenna_center).build();
    let mut sc = scenario(antenna, 41);
    let p0 = Point3::new(-0.3, 0.0, 0.0);
    let track = LineSegment::new(p0, Point3::new(0.5, 0.0, 0.0)).expect("valid");
    let trace = sc.scan(&track, 0.1, 100.0).expect("valid scan");
    let rel: Vec<(Point3, f64)> = trace
        .samples()
        .iter()
        .map(|s| (Point3::new(s.position.x - p0.x, 0.0, 0.0), s.phase))
        .collect();
    let est = Localizer2d::new(LocalizerConfig {
        side_hint: Some(Point3::new(0.3, 0.8, 0.0)),
        ..LocalizerConfig::default()
    })
    .locate(&rel)
    .expect("locates");
    let p0_est = Point3::new(
        antenna_center.x - est.position.x,
        antenna_center.y - est.position.y,
        0.0,
    );
    assert!(
        p0_est.to_xy().distance(p0.to_xy()) < 0.01,
        "start-position error {} m",
        p0_est.to_xy().distance(p0.to_xy())
    );
}

#[test]
fn calibration_works_in_a_rotated_scan_frame() {
    // Build the scan in its local frame, place it in the world with an
    // Isometry (rotated 20° about z, pushed out to y = 0.3), and calibrate
    // in world coordinates — the localizer must not care about the frame.
    use lion::geom::{Isometry, Vec3};
    let frame = Isometry::rotation_z(20.0_f64.to_radians())
        .then(&Isometry::translation(Vec3::new(0.1, 0.3, 0.0)));
    let physical = frame.apply(Point3::new(0.0, 0.9, 0.1)); // antenna, in front of the scan
    let antenna = Antenna::builder(physical)
        .phase_center_displacement(0.02, -0.012, 0.015)
        .build();
    let truth = antenna.phase_center();
    let mut sc = scenario(antenna, 53);
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).expect("valid scan");
    // Sample the local path, map every waypoint into the world, measure.
    let m: Vec<(Point3, f64)> = scan
        .to_path()
        .sample(0.1, 100.0)
        .into_iter()
        .map(|w| {
            let world = frame.apply(w.position);
            let sample = sc.measure_at(w.time, world);
            (world, sample.phase)
        })
        .collect();
    // The structured strategy assumes the local frame, so use generic
    // pairs; the localizer's PCA frame handles the rotation.
    let cfg = LocalizerConfig {
        pair_strategy: PairStrategy::AllWithMinSeparation {
            min_separation: 0.18,
            max_pairs: 4000,
        },
        side_hint: Some(physical),
        ..LocalizerConfig::default()
    };
    let cal = Calibrator::new(cfg)
        .with_adaptive(None)
        .calibrate(&m, physical)
        .expect("calibration succeeds");
    assert!(
        cal.phase_center.distance(truth) < 0.01,
        "center error {} m in rotated frame",
        cal.phase_center.distance(truth)
    );
}

#[test]
fn estimates_are_reproducible_with_fixed_seed() {
    let target = Point3::new(0.5, 0.5, 0.0);
    let run = || {
        let antenna = Antenna::builder(target).build();
        let circle = CircularArc::turntable(Point3::ORIGIN, 0.3).expect("valid");
        let mut sc = scenario(antenna, 43);
        let m = sc
            .scan(&circle, 0.1, 100.0)
            .expect("valid scan")
            .to_measurements();
        Localizer2d::new(LocalizerConfig::default())
            .locate(&m)
            .expect("locates")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
