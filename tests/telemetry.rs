//! End-to-end observability: spans flow from the core pipeline and the
//! engine workers to a globally installed subscriber, batch reports carry
//! latency distributions, and registry snapshots survive both export
//! formats.

use std::f64::consts::{PI, TAU};
use std::sync::Arc;

use lion::obs::export::{parse_json_line, to_json_line, to_prometheus};
use lion::prelude::*;

fn clean_trace(antenna: Point3) -> Vec<(Point3, f64)> {
    let lambda = LocalizerConfig::paper().wavelength;
    (0..150)
        .map(|i| {
            let a = i as f64 * TAU / 150.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            (p, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
        })
        .collect()
}

fn batch_jobs(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.02 * i as f64, 0.0, 0.0);
            Job::locate_2d(clean_trace(antenna), LocalizerConfig::paper())
        })
        .collect()
}

/// The one test that installs the process-global subscriber (kept as a
/// single function so parallel tests in this binary can't race on it).
#[test]
fn spans_reach_a_global_subscriber_from_worker_threads() {
    let collector = Arc::new(lion::obs::CollectingSubscriber::new());
    lion::obs::set_global_subscriber(collector.clone());
    let mut jobs = batch_jobs(12);
    jobs.push(Job::locate_2d(Vec::new(), LocalizerConfig::paper()));
    let outcome = Engine::builder()
        .workers(4)
        .build()
        .expect("valid")
        .run(&jobs);
    lion::obs::clear_global_subscriber();

    // Engine workers are spawned threads — spans still reach the global
    // subscriber, one engine.job span per job.
    let spans = collector.span_histograms();
    let get = |name: &str| {
        spans
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.clone())
            .unwrap_or_else(|| panic!("missing span {name}: {spans:?}"))
    };
    assert_eq!(get("engine.job").count(), 13);
    // The failing job errors before reaching the solver, so the solve
    // span fires once per *successful* job (unwrap is entered before the
    // empty-trace validation rejects, so it sees the failing job too).
    assert_eq!(get("lion.solve").count(), 12);
    assert_eq!(get("lion.unwrap").count(), 13);
    assert!(get("lion.solve").p99() >= get("lion.solve").p50());

    // The report's distributions agree with the subscriber's view on
    // cardinality, and the failure taxonomy names the injected error.
    assert_eq!(outcome.report.stages.solve.count(), 13);
    assert_eq!(outcome.report.failed, 1);
    assert_eq!(outcome.report.failures_by_kind.len(), 1);
    assert_eq!(outcome.report.failures_by_kind[0].1, 1);
    assert!(outcome.report.to_string().contains("failures:"));

    // With the subscriber gone, telemetry is off again.
    assert!(!lion::obs::enabled());
}

#[test]
fn report_distributions_cover_every_job_and_round_trip() {
    let jobs = batch_jobs(8);
    let outcome = Engine::serial().run(&jobs);
    let report = &outcome.report;
    for (name, hist) in report.stages.named() {
        assert_eq!(hist.count(), 8, "stage {name}");
    }
    // Queue-wait and execute come from the engine's own clocks.
    assert!(report.stages.execute.sum() > 0);
    assert_eq!(outcome.timings.len(), 8);
    // Serde round trip (via the hand-rolled JSON codec) is lossless.
    let back = MetricsReport::from_json_str(&report.to_json_string()).expect("well-formed");
    assert_eq!(*report, back);
    assert_eq!(back.stages.solve.p99(), report.stages.solve.p99());
}

#[test]
fn registry_snapshot_exports_to_both_formats() {
    let outcome = Engine::serial().run(&batch_jobs(4));
    let registry = Registry::new();
    outcome.report.record_into(&registry);
    let snapshot = registry.snapshot();

    let line = to_json_line("batch", &snapshot);
    let (label, parsed) = parse_json_line(&line).expect("parses");
    assert_eq!(label, "batch");
    assert_eq!(parsed.counter("engine.jobs"), Some(4));
    assert_eq!(
        parsed.histogram("engine.stage.solve_ns").map(|h| h.count()),
        snapshot
            .histogram("engine.stage.solve_ns")
            .map(|h| h.count()),
    );

    let prom = to_prometheus(&snapshot);
    assert!(prom.contains("# TYPE engine_jobs_total counter"), "{prom}");
    assert!(prom.contains("engine_jobs_total 4"), "{prom}");
    assert!(prom.contains("engine_stage_solve_ns_bucket"), "{prom}");
    assert!(prom.contains("le=\"+Inf\""), "{prom}");
}
