//! Streaming ⇔ batch parity: a streaming solve on a static window must be
//! **bit-identical** to the batch solver on the same reads — under
//! in-order delivery AND under shuffled arrival (the window re-sorts by
//! timestamp, so the batch reference is the timestamp-sorted trace).
//!
//! Also pins the O(window) memory guarantee on a 1M-sample stream, and
//! the incremental-resolve oracle: a pipeline in
//! [`ResolveMode::Incremental`] must agree with the replay pipeline
//! **exactly** on every tick that fell back to replay (those ticks run
//! the replay code path) and within a documented 1e-6 on delta ticks
//! (frozen frame, continued unwrap chain, normal equations vs QR — see
//! DESIGN.md §14), under in-order, shuffled, shed, and grid-solver
//! arrival — with the replay/delta pattern identical on any worker count.

use lion::prelude::*;
use lion::stream::Space;
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// A noisy-free circular scan read stream with strictly increasing
/// timestamps (distinct timestamps make the sorted order unambiguous).
fn circle_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

/// Pseudo-shuffle with a fixed permutation: deterministic, displaces
/// every element, and depends on no external RNG.
fn shuffled<T: Clone>(items: &[T]) -> Vec<T> {
    let n = items.len();
    let mut out: Vec<T> = items.to_vec();
    // A fixed LCG-driven Fisher–Yates: reproducible across runs.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

/// Batch reference: the timestamp-sorted reads through the plain batch
/// entry point.
fn batch_reference(reads: &[StreamRead], config: &LocalizerConfig) -> Estimate {
    let mut sorted: Vec<&StreamRead> = reads.iter().collect();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
    let measurements: Vec<(Point3, f64)> = sorted.iter().map(|r| (r.position, r.phase)).collect();
    Localizer2d::new(config.clone())
        .locate(&measurements)
        .expect("batch reference solves")
}

fn stream_estimate(reads: &[StreamRead], config: StreamConfig) -> StreamEstimate {
    let mut stream = StreamLocalizer::new(config).expect("valid config");
    for &read in reads {
        // Cadence never fires (EveryReads(usize::MAX)); only the final
        // flush solves, on exactly the full window.
        let emitted = stream.push(read).expect("no cadence solve");
        assert!(emitted.is_none());
    }
    stream
        .flush()
        .expect("flush solves")
        .expect("window non-empty")
}

fn parity_config(window: usize) -> StreamConfig {
    StreamConfig::builder()
        .window_capacity(window)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(usize::MAX))
        .build()
        .expect("valid")
}

#[test]
fn in_order_streaming_is_bit_identical_to_batch() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 200);
    let config = parity_config(200);
    let batch = batch_reference(&reads, &config.localizer);
    let streamed = stream_estimate(&reads, config);
    // Bit-identical: == on f64, no tolerance.
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
    assert_eq!(streamed.mean_residual, batch.mean_residual);
    assert_eq!(streamed.batch.weighted_rms, batch.weighted_rms);
    assert_eq!(streamed.batch.iterations, batch.iterations);
    assert_eq!(streamed.window_len, 200);
}

#[test]
fn shuffled_arrival_is_bit_identical_to_sorted_batch() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 200);
    let config = parity_config(200);
    let batch = batch_reference(&reads, &config.localizer);
    let arrival = shuffled(&reads);
    assert_ne!(
        arrival.iter().map(|r| r.time).collect::<Vec<_>>(),
        reads.iter().map(|r| r.time).collect::<Vec<_>>(),
        "shuffle must actually reorder"
    );
    let streamed = stream_estimate(&arrival, config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
    assert_eq!(streamed.mean_residual, batch.mean_residual);
}

#[test]
fn sample_source_shuffle_preserves_parity() {
    // The same property through the simulator's out-of-order adapter.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 150);
    let samples: Vec<lion::sim::PhaseSample> = reads
        .iter()
        .map(|r| lion::sim::PhaseSample {
            time: r.time,
            position: r.position,
            phase: r.phase,
            rssi_dbm: r.rssi_dbm,
            frequency_hz: r.frequency_hz,
        })
        .collect();
    let trace = PhaseTrace::new(samples, LAMBDA);
    let config = parity_config(150);
    let batch = batch_reference(&reads, &config.localizer);
    let source = SampleSource::replay(&trace).with_shuffle(8, 42);
    let arrival: Vec<StreamRead> = source.map(StreamRead::from).collect();
    let streamed = stream_estimate(&arrival, config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
}

#[test]
fn windowed_streaming_matches_batch_on_each_window() {
    // Mid-stream (window full and sliding): every cadence solve must
    // equal the batch solver run on that window's reads.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 400);
    let window = 128;
    let config = StreamConfig::builder()
        .window_capacity(window)
        .min_window_len(window)
        .cadence(Cadence::EveryReads(64))
        .build()
        .expect("valid");
    let localizer = config.localizer.clone();
    let mut stream = StreamLocalizer::new(config).expect("valid");
    let mut solves = 0;
    for (i, &read) in reads.iter().enumerate() {
        if let Some(est) = stream.push(read).expect("solves") {
            let window_reads = &reads[i + 1 - window..=i];
            let batch = batch_reference(window_reads, &localizer);
            assert_eq!(est.position, batch.position, "solve at read {i}");
            assert_eq!(est.d_r, batch.reference_distance);
            solves += 1;
        }
    }
    assert!(
        solves >= 4,
        "expected several mid-stream solves, got {solves}"
    );
}

#[test]
fn three_d_parity() {
    // 3D space through the same path: a tilted circle spans all axes.
    let antenna = Point3::new(1.0, 0.5, 0.4);
    let reads: Vec<StreamRead> = (0..200)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.1 * (2.0 * a).sin());
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect();
    let config = StreamConfig::builder()
        .window_capacity(200)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(usize::MAX))
        .space(Space::ThreeD)
        .build()
        .expect("valid");
    let measurements: Vec<(Point3, f64)> = reads.iter().map(|r| (r.position, r.phase)).collect();
    let batch = Localizer3d::new(config.localizer.clone())
        .locate(&measurements)
        .expect("3d batch solves");
    let streamed = stream_estimate(&shuffled(&reads), config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
}

/// Runs the same feed through a replay-mode and an incremental-mode
/// pipeline and checks the parity tiering tick by tick: both emit at the
/// same cadence points; fallback/resync ticks are bit-identical to
/// replay; delta ticks agree to 1e-6. Returns the number of delta ticks.
fn assert_incremental_parity(reads: &[StreamRead], config: StreamConfig) -> usize {
    let replay_cfg = StreamConfig {
        resolve_mode: ResolveMode::Replay,
        ..config.clone()
    };
    let incr_cfg = StreamConfig {
        resolve_mode: ResolveMode::Incremental,
        ..config
    };
    let mut replay = StreamLocalizer::new(replay_cfg).expect("valid replay config");
    let mut incr = StreamLocalizer::new(incr_cfg).expect("valid incremental config");
    let mut delta_ticks = 0;
    for &read in reads {
        let a = replay.push(read);
        let b = incr.push(read);
        match (a, b) {
            (Ok(None), Ok(None)) => {}
            (Ok(Some(r)), Ok(Some(i))) => {
                assert_eq!(r.seq, i.seq);
                assert_eq!(r.trigger_time, i.trigger_time);
                assert_eq!(r.window_len, i.window_len);
                match i.resolve_path {
                    ResolvePath::Replayed => {
                        // Fallback/resync literally runs the replay path.
                        assert_eq!(i.position, r.position, "tick {}", r.seq);
                        assert_eq!(i.d_r, r.d_r, "tick {}", r.seq);
                        assert_eq!(i.mean_residual, r.mean_residual, "tick {}", r.seq);
                    }
                    ResolvePath::Incremental => {
                        delta_ticks += 1;
                        // Position-only comparison: the delta path pins
                        // its reference sample across slides while replay
                        // re-picks the window midpoint each tick, so d_r
                        // (distance *to the reference*) is relative to a
                        // different sample — the position is
                        // reference-invariant, d_r is not (DESIGN.md §14).
                        let err = i.position.distance(r.position);
                        assert!(err < 1e-6, "tick {}: delta position off by {err} m", r.seq);
                        assert!(i.d_r.is_finite());
                    }
                }
            }
            // A degenerate window fails identically in both modes (the
            // incremental tick bails to replay before solving).
            (Err(_), Err(_)) => {}
            (a, b) => panic!("modes diverged on tick pattern: {a:?} vs {b:?}"),
        }
    }
    assert_eq!(replay.estimates_emitted(), incr.estimates_emitted());
    delta_ticks
}

#[test]
fn incremental_in_order_tracks_replay_within_1e6() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 600);
    let config = StreamConfig::builder()
        .window_capacity(256)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(16))
        .build()
        .expect("valid");
    let delta_ticks = assert_incremental_parity(&reads, config);
    assert!(
        delta_ticks >= 10,
        "in-order feed must mostly take delta ticks, got {delta_ticks}"
    );
}

#[test]
fn incremental_shuffled_arrival_replays_exactly() {
    // Shuffled arrival splices the window, so incremental mode falls
    // back deterministically — and fallback ticks are exact.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 400);
    let arrival = shuffled(&reads);
    let config = StreamConfig::builder()
        .window_capacity(256)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(16))
        .build()
        .expect("valid");
    assert_incremental_parity(&arrival, config);
}

#[test]
fn incremental_with_grid_solver_always_replays_exactly() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 300);
    let localizer = LocalizerConfig {
        solver: SolverKind::Grid(GridConfig::default()),
        ..LocalizerConfig::default()
    };
    let config = StreamConfig::builder()
        .window_capacity(256)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(16))
        .localizer(localizer)
        .build()
        .expect("valid");
    let delta_ticks = assert_incremental_parity(&reads, config);
    assert_eq!(delta_ticks, 0, "grid solver must never take a delta tick");
}

#[test]
fn incremental_outcomes_are_bit_identical_across_worker_counts() {
    let jobs: Vec<StreamJob> = (0..4)
        .map(|i| {
            let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
            let config = StreamConfig::builder()
                .resolve_mode(ResolveMode::Incremental)
                .build()
                .expect("valid");
            StreamJob::new(circle_reads(antenna, 400), config)
                .with_burst(48)
                .with_queue_capacity(64)
        })
        .collect();
    let serial = Engine::serial().run_streams(&jobs);
    let parallel = Engine::builder()
        .workers(4)
        .build()
        .expect("valid")
        .run_streams(&jobs);
    for (s, p) in serial.iter().zip(&parallel) {
        let (s, p) = (s.as_ref().expect("runs"), p.as_ref().expect("runs"));
        assert_eq!(s.resolve_rows_delta, p.resolve_rows_delta);
        assert_eq!(s.resolve_rebuilds, p.resolve_rebuilds);
        assert_eq!(s.resolve_fallbacks, p.resolve_fallbacks);
        assert_eq!(s.estimates.len(), p.estimates.len());
        for (a, b) in s.estimates.iter().zip(&p.estimates) {
            assert_eq!(a.resolve_path, b.resolve_path);
            assert_eq!(a.position, b.position);
            assert_eq!(a.d_r, b.d_r);
        }
        assert!(s.resolve_rows_delta > 0, "delta ticks must have run");
    }
}

/// Deterministic feed mangler for the property test: drops ~1 read in
/// `8` via an LCG seeded with `drop_seed`, then reverses consecutive
/// chunks of `chunk` reads (bounded out-of-order arrival; `chunk <= 1`
/// leaves the order intact).
fn mangled(reads: &[StreamRead], drop_seed: u64, chunk: usize) -> Vec<StreamRead> {
    let mut state = drop_seed | 1;
    let mut kept: Vec<StreamRead> = reads
        .iter()
        .filter(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            !(state >> 33).is_multiple_of(8)
        })
        .copied()
        .collect();
    if chunk > 1 {
        for block in kept.chunks_mut(chunk) {
            block.reverse();
        }
    }
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random slide/shed/reorder sequences: whatever the feed looks
    /// like, every fallback tick is exact and every delta tick is
    /// within 1e-6 of the replay pipeline.
    #[test]
    fn incremental_parity_holds_under_random_feeds(
        ax in 0.8_f64..1.4,
        ay in 0.0_f64..0.6,
        n in 200_usize..400,
        cadence in 8_usize..32,
        drop_seed in 0_u64..u64::MAX,
        chunk in 1_usize..10,
    ) {
        let reads = circle_reads(Point3::new(ax, ay, 0.0), n);
        let arrival = mangled(&reads, drop_seed, chunk);
        let config = StreamConfig::builder()
            .window_capacity(128)
            .min_window_len(24)
            .cadence(Cadence::EveryReads(cadence))
            .build()
            .expect("valid");
        assert_incremental_parity(&arrival, config);
    }
}

#[test]
fn million_read_stream_stays_in_window_memory() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let config = StreamConfig::builder()
        .window_capacity(256)
        .min_window_len(64)
        .cadence(Cadence::EveryReads(10_000))
        .build()
        .expect("valid");
    let mut stream = StreamLocalizer::new(config).expect("valid");
    let read_at = |i: usize| {
        let a = i as f64 * TAU / 120.0;
        let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
        StreamRead {
            time: i as f64 * 1e-3,
            position: p,
            phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
            ..StreamRead::default()
        }
    };
    // Warm up past the first solves, then pin the ring buffer.
    for i in 0..50_000 {
        let _ = stream.push(read_at(i)).expect("solves");
    }
    let warm = stream.window().backing_capacity();
    for i in 50_000..1_000_000 {
        let _ = stream.push(read_at(i)).expect("solves");
    }
    assert_eq!(
        stream.window().backing_capacity(),
        warm,
        "ring buffer grew past its window"
    );
    assert_eq!(stream.window().len(), 256);
    assert_eq!(stream.reads_seen(), 1_000_000);
    assert!(stream.estimates_emitted() >= 99);
}
