//! Streaming ⇔ batch parity: a streaming solve on a static window must be
//! **bit-identical** to the batch solver on the same reads — under
//! in-order delivery AND under shuffled arrival (the window re-sorts by
//! timestamp, so the batch reference is the timestamp-sorted trace).
//!
//! Also pins the O(window) memory guarantee on a 1M-sample stream.

use lion::prelude::*;
use lion::stream::Space;
use std::f64::consts::{PI, TAU};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// A noisy-free circular scan read stream with strictly increasing
/// timestamps (distinct timestamps make the sorted order unambiguous).
fn circle_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
    (0..n)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect()
}

/// Pseudo-shuffle with a fixed permutation: deterministic, displaces
/// every element, and depends on no external RNG.
fn shuffled<T: Clone>(items: &[T]) -> Vec<T> {
    let n = items.len();
    let mut out: Vec<T> = items.to_vec();
    // A fixed LCG-driven Fisher–Yates: reproducible across runs.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

/// Batch reference: the timestamp-sorted reads through the plain batch
/// entry point.
fn batch_reference(reads: &[StreamRead], config: &LocalizerConfig) -> Estimate {
    let mut sorted: Vec<&StreamRead> = reads.iter().collect();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
    let measurements: Vec<(Point3, f64)> = sorted.iter().map(|r| (r.position, r.phase)).collect();
    Localizer2d::new(config.clone())
        .locate(&measurements)
        .expect("batch reference solves")
}

fn stream_estimate(reads: &[StreamRead], config: StreamConfig) -> StreamEstimate {
    let mut stream = StreamLocalizer::new(config).expect("valid config");
    for &read in reads {
        // Cadence never fires (EveryReads(usize::MAX)); only the final
        // flush solves, on exactly the full window.
        let emitted = stream.push(read).expect("no cadence solve");
        assert!(emitted.is_none());
    }
    stream
        .flush()
        .expect("flush solves")
        .expect("window non-empty")
}

fn parity_config(window: usize) -> StreamConfig {
    StreamConfig::builder()
        .window_capacity(window)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(usize::MAX))
        .build()
        .expect("valid")
}

#[test]
fn in_order_streaming_is_bit_identical_to_batch() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 200);
    let config = parity_config(200);
    let batch = batch_reference(&reads, &config.localizer);
    let streamed = stream_estimate(&reads, config);
    // Bit-identical: == on f64, no tolerance.
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
    assert_eq!(streamed.mean_residual, batch.mean_residual);
    assert_eq!(streamed.batch.weighted_rms, batch.weighted_rms);
    assert_eq!(streamed.batch.iterations, batch.iterations);
    assert_eq!(streamed.window_len, 200);
}

#[test]
fn shuffled_arrival_is_bit_identical_to_sorted_batch() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 200);
    let config = parity_config(200);
    let batch = batch_reference(&reads, &config.localizer);
    let arrival = shuffled(&reads);
    assert_ne!(
        arrival.iter().map(|r| r.time).collect::<Vec<_>>(),
        reads.iter().map(|r| r.time).collect::<Vec<_>>(),
        "shuffle must actually reorder"
    );
    let streamed = stream_estimate(&arrival, config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
    assert_eq!(streamed.mean_residual, batch.mean_residual);
}

#[test]
fn sample_source_shuffle_preserves_parity() {
    // The same property through the simulator's out-of-order adapter.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 150);
    let samples: Vec<lion::sim::PhaseSample> = reads
        .iter()
        .map(|r| lion::sim::PhaseSample {
            time: r.time,
            position: r.position,
            phase: r.phase,
            rssi_dbm: r.rssi_dbm,
            frequency_hz: r.frequency_hz,
        })
        .collect();
    let trace = PhaseTrace::new(samples, LAMBDA);
    let config = parity_config(150);
    let batch = batch_reference(&reads, &config.localizer);
    let source = SampleSource::replay(&trace).with_shuffle(8, 42);
    let arrival: Vec<StreamRead> = source.map(StreamRead::from).collect();
    let streamed = stream_estimate(&arrival, config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
}

#[test]
fn windowed_streaming_matches_batch_on_each_window() {
    // Mid-stream (window full and sliding): every cadence solve must
    // equal the batch solver run on that window's reads.
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let reads = circle_reads(antenna, 400);
    let window = 128;
    let config = StreamConfig::builder()
        .window_capacity(window)
        .min_window_len(window)
        .cadence(Cadence::EveryReads(64))
        .build()
        .expect("valid");
    let localizer = config.localizer.clone();
    let mut stream = StreamLocalizer::new(config).expect("valid");
    let mut solves = 0;
    for (i, &read) in reads.iter().enumerate() {
        if let Some(est) = stream.push(read).expect("solves") {
            let window_reads = &reads[i + 1 - window..=i];
            let batch = batch_reference(window_reads, &localizer);
            assert_eq!(est.position, batch.position, "solve at read {i}");
            assert_eq!(est.d_r, batch.reference_distance);
            solves += 1;
        }
    }
    assert!(
        solves >= 4,
        "expected several mid-stream solves, got {solves}"
    );
}

#[test]
fn three_d_parity() {
    // 3D space through the same path: a tilted circle spans all axes.
    let antenna = Point3::new(1.0, 0.5, 0.4);
    let reads: Vec<StreamRead> = (0..200)
        .map(|i| {
            let a = i as f64 * TAU / 120.0;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.1 * (2.0 * a).sin());
            StreamRead {
                time: i as f64 * 0.01,
                position: p,
                phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
                ..StreamRead::default()
            }
        })
        .collect();
    let config = StreamConfig::builder()
        .window_capacity(200)
        .min_window_len(24)
        .cadence(Cadence::EveryReads(usize::MAX))
        .space(Space::ThreeD)
        .build()
        .expect("valid");
    let measurements: Vec<(Point3, f64)> = reads.iter().map(|r| (r.position, r.phase)).collect();
    let batch = Localizer3d::new(config.localizer.clone())
        .locate(&measurements)
        .expect("3d batch solves");
    let streamed = stream_estimate(&shuffled(&reads), config);
    assert_eq!(streamed.position, batch.position);
    assert_eq!(streamed.d_r, batch.reference_distance);
}

#[test]
fn million_read_stream_stays_in_window_memory() {
    let antenna = Point3::new(1.2, 0.4, 0.0);
    let config = StreamConfig::builder()
        .window_capacity(256)
        .min_window_len(64)
        .cadence(Cadence::EveryReads(10_000))
        .build()
        .expect("valid");
    let mut stream = StreamLocalizer::new(config).expect("valid");
    let read_at = |i: usize| {
        let a = i as f64 * TAU / 120.0;
        let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
        StreamRead {
            time: i as f64 * 1e-3,
            position: p,
            phase: (4.0 * PI * antenna.distance(p) / LAMBDA) % TAU,
            ..StreamRead::default()
        }
    };
    // Warm up past the first solves, then pin the ring buffer.
    for i in 0..50_000 {
        let _ = stream.push(read_at(i)).expect("solves");
    }
    let warm = stream.window().backing_capacity();
    for i in 50_000..1_000_000 {
        let _ = stream.push(read_at(i)).expect("solves");
    }
    assert_eq!(
        stream.window().backing_capacity(),
        warm,
        "ring buffer grew past its window"
    );
    assert_eq!(stream.window().len(), 256);
    assert_eq!(stream.reads_seen(), 1_000_000);
    assert!(stream.estimates_emitted() >= 99);
}
