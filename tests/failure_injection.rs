//! Failure-injection integration tests: the public API must return typed
//! errors — never panic, never silently produce garbage — on degenerate or
//! hostile input.

use lion::baselines::{hologram, hyperbola, parabola, BaselineError};
use lion::core::{CoreError, Localizer2d, Localizer3d, LocalizerConfig};
use lion::geom::{CircularArc, LineSegment, Point3, Trajectory};
use lion::sim::{Antenna, FrequencyPlan, NoiseModel, ScenarioBuilder, Tag};

fn clean_circle_measurements(target: Point3, n: usize) -> Vec<(Point3, f64)> {
    let lambda = 299_792_458.0 / 920.625e6;
    (0..n)
        .map(|i| {
            let a = i as f64 * std::f64::consts::TAU / n as f64;
            let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
            let phase = (4.0 * std::f64::consts::PI * target.distance(p) / lambda)
                .rem_euclid(std::f64::consts::TAU);
            (p, phase)
        })
        .collect()
}

#[test]
fn nan_measurements_are_rejected_not_propagated() {
    let mut m = clean_circle_measurements(Point3::new(0.5, 0.5, 0.0), 100);
    m[50].1 = f64::NAN;
    let err = Localizer2d::new(LocalizerConfig::default())
        .locate(&m)
        .unwrap_err();
    assert!(matches!(err, CoreError::NonFiniteMeasurement { index: 50 }));

    m[50].1 = 0.5;
    m[10].0 = Point3::new(f64::INFINITY, 0.0, 0.0);
    let err = Localizer2d::new(LocalizerConfig::default())
        .locate(&m)
        .unwrap_err();
    assert!(matches!(err, CoreError::NonFiniteMeasurement { index: 10 }));
}

#[test]
fn empty_and_tiny_inputs_error_cleanly() {
    let l2 = Localizer2d::new(LocalizerConfig::default());
    assert!(matches!(
        l2.locate(&[]),
        Err(CoreError::TooFewMeasurements { .. })
    ));
    let one = vec![(Point3::ORIGIN, 0.2)];
    assert!(matches!(
        l2.locate(&one),
        Err(CoreError::TooFewMeasurements { .. })
    ));
}

#[test]
fn identical_positions_are_degenerate() {
    let m: Vec<(Point3, f64)> = (0..50).map(|i| (Point3::ORIGIN, 0.01 * i as f64)).collect();
    assert!(matches!(
        Localizer2d::new(LocalizerConfig::default()).locate(&m),
        Err(CoreError::DegenerateGeometry { .. })
    ));
}

#[test]
fn single_line_3d_is_rejected_with_guidance() {
    let target = Point3::new(0.0, 1.0, 0.3);
    let lambda = 299_792_458.0 / 920.625e6;
    let m: Vec<(Point3, f64)> = (0..200)
        .map(|i| {
            let p = Point3::new(-0.5 + i as f64 * 0.005, 0.0, 0.0);
            let phase = (4.0 * std::f64::consts::PI * target.distance(p) / lambda)
                .rem_euclid(std::f64::consts::TAU);
            (p, phase)
        })
        .collect();
    match Localizer3d::new(LocalizerConfig::default()).locate(&m) {
        Err(CoreError::DegenerateGeometry { detail }) => {
            assert!(detail.contains("linear"), "detail: {detail}");
        }
        other => panic!("expected DegenerateGeometry, got {other:?}"),
    }
}

#[test]
fn parabola_rejects_circular_scans() {
    let m = clean_circle_measurements(Point3::new(0.5, 0.5, 0.0), 100);
    assert!(matches!(
        parabola::locate(&m, &parabola::ParabolaConfig::default()),
        Err(BaselineError::UnsupportedGeometry { .. })
    ));
}

#[test]
fn hologram_rejects_bad_volumes_and_grids() {
    let m = clean_circle_measurements(Point3::new(0.5, 0.5, 0.0), 20);
    let volume = hologram::SearchVolume::square_2d(Point3::new(0.5, 0.5, 0.0), 0.0);
    assert!(hologram::locate(&m, volume, &hologram::HologramConfig::default()).is_err());
    let volume = hologram::SearchVolume::square_2d(Point3::new(0.5, 0.5, 0.0), 0.05);
    let bad = hologram::HologramConfig {
        grid_size: -0.001,
        ..hologram::HologramConfig::default()
    };
    assert!(hologram::locate(&m, volume, &bad).is_err());
}

#[test]
fn hyperbola_errors_are_typed() {
    assert!(matches!(
        hyperbola::locate(&[], &hyperbola::HyperbolaConfig::default()),
        Err(BaselineError::Core(_))
    ));
}

#[test]
fn errors_format_and_chain() {
    use std::error::Error;
    let err = Localizer2d::new(LocalizerConfig::default())
        .locate(&[])
        .unwrap_err();
    let s = err.to_string();
    assert!(!s.is_empty());
    // Boxing works (Send + Sync + 'static).
    let boxed: Box<dyn Error + Send + Sync> = Box::new(err);
    assert!(boxed.source().is_none());
}

#[test]
fn unified_error_preserves_kind_and_domain_across_crates() {
    // Every per-crate error funnels into `lion::Error` with its stable
    // machine-readable kind intact and a domain naming the origin crate.
    let core_err = Localizer2d::new(LocalizerConfig::default())
        .locate(&[])
        .unwrap_err();
    let unified: lion::Error = core_err.into();
    assert_eq!(unified.kind(), "too_few_measurements");
    assert_eq!(unified.domain(), "core");

    let geom_err = LineSegment::new(Point3::ORIGIN, Point3::ORIGIN).unwrap_err();
    let unified: lion::Error = geom_err.into();
    assert_eq!(unified.kind(), "invalid_input");
    assert_eq!(unified.domain(), "geom");

    let baseline_err = hyperbola::locate(&[], &hyperbola::HyperbolaConfig::default()).unwrap_err();
    let unified: lion::Error = baseline_err.into();
    assert_eq!(unified.domain(), "baselines");

    // Display carries the domain prefix; source() chains to the inner error.
    use std::error::Error as _;
    assert!(unified.to_string().starts_with("baselines: "));
    assert!(unified.source().is_some());
}

#[test]
fn frequency_hopping_degrades_but_does_not_panic() {
    // Naive unwrapping across channel hops violates the constant-λ
    // assumption; the pipeline must survive and report *something* (with
    // large error), never panic.
    let target = Point3::new(0.3, 0.8, 0.0);
    let antenna = Antenna::builder(target).build();
    let mut sc = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("hop"))
        .noise(NoiseModel::noiseless())
        .frequency_plan(FrequencyPlan::fcc_hopping(0.2))
        .seed(5)
        .build()
        .expect("components set");
    let circle = CircularArc::turntable(Point3::ORIGIN, 0.3).expect("valid");
    let m = sc
        .scan(&circle, 0.1, 100.0)
        .expect("valid scan")
        .to_measurements();
    // May succeed with degraded accuracy or fail with a typed error; both
    // are acceptable, panicking is not.
    let _ = Localizer2d::new(LocalizerConfig::default()).locate(&m);
}

#[test]
fn zero_speed_scan_is_rejected() {
    let antenna = Antenna::builder(Point3::new(0.0, 1.0, 0.0)).build();
    let mut sc = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("t"))
        .seed(1)
        .build()
        .expect("components set");
    let track = LineSegment::along_x(-0.1, 0.1, 0.0, 0.0).expect("valid");
    assert!(sc.scan(&track, 0.0, 100.0).is_err());
    assert!(sc.scan(&track, 0.1, f64::NAN).is_err());
}

#[test]
fn recovery_failure_is_reported_when_hint_is_wrong_side_of_disc() {
    // Craft measurements where d_r² < planar distance² by corrupting the
    // phases so the implied reference distance shrinks drastically.
    let lambda = 299_792_458.0 / 920.625e6;
    let target = Point3::new(0.0, 0.05, 0.0); // extremely close to the track
    let m: Vec<(Point3, f64)> = (0..100)
        .map(|i| {
            let p = Point3::new(-0.5 + i as f64 * 0.01, 0.0, 0.0);
            let phase = (4.0 * std::f64::consts::PI * target.distance(p) / lambda)
                .rem_euclid(std::f64::consts::TAU);
            (p, phase)
        })
        .collect();
    // With heavy smoothing the near-field kink is distorted; whatever
    // happens must be an Ok or a typed error.
    let cfg = LocalizerConfig {
        smoothing_window: 101,
        ..LocalizerConfig::default()
    };
    let _ = Localizer2d::new(cfg).locate(&m);
}

#[test]
fn trajectory_validation_propagates_through_sim() {
    use lion::geom::GeomError;
    let bad = LineSegment::new(Point3::ORIGIN, Point3::ORIGIN);
    assert!(matches!(bad, Err(GeomError::InvalidInput { .. })));
    // Path with zero segments scans to an empty trace... the sampler emits
    // nothing, and the localizer then rejects it.
    let path = lion::geom::Path::new();
    assert_eq!(path.sample(0.1, 100.0).len(), 1);
}
