//! Batch localization on a conveyor line with the parallel engine.
//!
//! A portal antenna reads every case rolling past on a belt. Each case's
//! trace is an independent localization problem — exactly the shape the
//! [`Engine`] is built for: one [`Job`] per case, fanned across worker
//! threads, results back in submission order, bit-identical to a serial
//! run, with per-stage instrumentation aggregated into a
//! [`MetricsReport`].
//!
//! With an output directory argument the run also exports its telemetry
//! — a JSON-lines registry snapshot and a Prometheus text exposition —
//! which `just telemetry` and `examples/telemetry_dashboard.rs` consume:
//!
//! ```bash
//! cargo run --release --example conveyor_batch
//! cargo run --release --example conveyor_batch -- target/telemetry
//! ```

use std::path::Path;
use std::time::Instant;

use lion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The portal: one antenna looking down at the belt from 0.8 m.
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(antenna_pos)
        .phase_center_displacement(0.013, -0.008, 0.0)
        .build();
    let truth = antenna.phase_center();

    // 96 cases roll past; each gets its own noisy trace. Traces are
    // simulated up front (serially, so the RNG stream is reproducible) —
    // the engine then parallelizes the pure solve work.
    let track = LineSegment::along_x(-0.45, 0.45, 0.0, 0.0)?;
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-conveyor"))
        .noise(NoiseModel::paper_default())
        .seed(20_108)
        .build()?;
    // Every eighth case runs the adaptive range/interval sweep — the
    // QC station double-checking a sample of cases — so the batch also
    // exercises the shared-prefix sweep and its reuse counters.
    let mut jobs = Vec::new();
    for case in 0..96 {
        let trace = scenario.scan(&track, 0.25, 120.0)?;
        let measurements = trace.to_measurements();
        let config = LocalizerConfig::paper();
        jobs.push(if case % 8 == 0 {
            Job::adaptive_2d(measurements, config, AdaptiveConfig::default())
        } else {
            Job::locate_2d(measurements, config)
        });
    }

    // Serial reference.
    let serial_start = Instant::now();
    let serial = Engine::serial().run(&jobs);
    let serial_elapsed = serial_start.elapsed();

    // Parallel run on every available core.
    let engine = Engine::new();
    let parallel_start = Instant::now();
    let parallel = engine.run(&jobs);
    let parallel_elapsed = parallel_start.elapsed();

    println!("== conveyor batch: 96 cases ==");
    println!(
        "serial   ({} worker):  {:8.2} ms",
        serial.report.workers,
        serial_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "parallel ({} workers): {:8.2} ms  ({:.2}x)",
        parallel.report.workers,
        parallel_elapsed.as_secs_f64() * 1e3,
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );

    // Determinism: the parallel estimates are bit-identical to serial.
    let identical = serial
        .results
        .iter()
        .zip(&parallel.results)
        .all(|(s, p)| match (s, p) {
            (Ok(a), Ok(b)) => a.position() == b.position(),
            (Err(_), Err(_)) => true,
            _ => false,
        });
    println!("parallel == serial (bitwise): {identical}");
    assert!(identical, "engine must be deterministic");

    // Accuracy: every case pins the same hidden phase center.
    let mean_error: f64 = parallel
        .results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|o| o.position().distance(truth))
        .sum::<f64>()
        / parallel.results.len() as f64;
    println!("mean phase-center error: {:.2} mm", mean_error * 1e3);

    println!("\n== per-stage instrumentation ==\n{}", parallel.report);

    // The shared-prefix sweep's reuse counters: how many grid cells
    // extended a previous cell's normal equations instead of rebuilding,
    // and how often the Gram matrix was rebuilt from scratch.
    let totals = &parallel.report.total;
    println!(
        "adaptive sweep: {} trials ({} skipped), {} cells reused, {} gram rebuilds",
        totals.adaptive_trials,
        totals.adaptive_skipped,
        totals.adaptive_cells_reused,
        totals.adaptive_gram_rebuilds,
    );

    // Optional telemetry export: `conveyor_batch -- <dir>` writes the
    // registry snapshot as JSON lines and Prometheus text.
    if let Some(dir) = std::env::args().nth(1) {
        let dir = Path::new(&dir);
        let registry = Registry::new();
        parallel.report.record_into(&registry);
        let snapshot = registry.snapshot();
        let jsonl = dir.join("snapshot.jsonl");
        let prom = dir.join("metrics.prom");
        lion::obs::export::append_json_line(&jsonl, "conveyor_batch", &snapshot)?;
        lion::obs::export::write_prometheus(&prom, &snapshot)?;
        println!(
            "\ntelemetry written: {} and {}",
            jsonl.display(),
            prom.display()
        );
    }
    Ok(())
}
