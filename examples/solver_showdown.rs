//! Side-by-side comparison of the solver backends behind the
//! [`Solver`] seam.
//!
//! The same simulated scan is solved by the paper's linear backend
//! (radical-line system + IRLS) and the coarse-to-fine likelihood grid,
//! at several phase-noise levels. The linear backend is orders of
//! magnitude faster; the grid needs no pairing strategy and degrades
//! differently under noise — the accuracy-vs-latency dial the
//! [`SolverKind`] knob exposes (see DESIGN §12 and the README's
//! "Choosing a solver").
//!
//! ```bash
//! cargo run --release --example solver_showdown
//! ```

use lion::prelude::*;
use std::time::Instant;

fn main() -> Result<(), lion::Error> {
    let truth = Point3::new(0.12, 0.85, 0.0);
    let track = LineSegment::along_x(-0.4, 0.4, 0.0, 0.0)?;

    println!("target (hidden phase center): {truth}");
    println!();
    println!("noise σ  | backend | error      | time      | iters");
    println!("---------|---------|------------|-----------|------");

    for sigma in [0.0_f64, 0.05, 0.15] {
        let antenna = Antenna::builder(truth).build();
        let noise = NoiseModel {
            phase_noise_std: sigma,
            ..NoiseModel::noiseless()
        };
        let trace = ScenarioBuilder::new()
            .antenna(antenna)
            .tag(Tag::new("E51-showdown"))
            .noise(noise)
            .seed(42)
            .build()?
            .scan(&track, 0.1, 100.0)?;
        let m = trace.to_measurements();

        for kind in [SolverKind::Linear, SolverKind::Grid(GridConfig::default())] {
            let config = LocalizerConfig::builder()
                .side_hint(Point3::new(0.0, 1.0, 0.0))
                .solver(kind)
                .build()?;
            let localizer = Localizer2d::new(config);
            let t = Instant::now();
            let estimate = localizer.locate(&m)?;
            let elapsed = t.elapsed();
            println!(
                "{sigma:>5.2}    | {:<7} | {:>7.2} mm | {:>7.2} ms | {}",
                kind.label(),
                estimate.distance_error(truth) * 1e3,
                elapsed.as_secs_f64() * 1e3,
                estimate.iterations,
            );
        }
    }

    println!();
    println!(
        "The grid pays its latency for robustness knobs (search region,\n\
         contrast gate) and pairing-free scoring; the linear model is\n\
         the right default. Select per workload via\n\
         LocalizerConfig::builder().solver(...)."
    );
    Ok(())
}
