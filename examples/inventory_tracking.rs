//! Realistic end-to-end pipeline: an EPC Gen2-style reader with read
//! dropouts inventories an item on a conveyor, and the sliding-window
//! [`ConveyorTracker`] follows it through the read zone.
//!
//! This exercises two properties the paper's industrial pitch depends on:
//! LION tolerates irregular sampling (misses, slot jitter), and each
//! window solve is fast enough to run online at the edge.
//!
//! ```bash
//! cargo run --release --example inventory_tracking
//! ```

use std::time::Instant;

use lion::prelude::*;
use lion::sim::{InventoryConfig, Reader};

fn main() -> Result<(), lion::Error> {
    // A calibrated antenna 0.8 m above the belt; warehouse multipath.
    let antenna_center = Point3::new(0.0, 0.8, 0.0);
    let mut scenario = ScenarioBuilder::new()
        .antenna(Antenna::builder(antenna_center).build())
        .tag(Tag::new("pallet-0042"))
        .environment(Environment::warehouse())
        .noise(NoiseModel::indoor_default())
        .seed(7)
        .build()?;

    // The item rides the belt through the read zone at 10 cm/s.
    let start = Point3::new(-0.6, 0.0, 0.0);
    let belt = LineSegment::new(start, Point3::new(0.6, 0.0, 0.0))?;

    // Inventory with misses and slot jitter (a real reader's cadence).
    let reader = Reader::new(InventoryConfig::default());
    let trace = reader.inventory(&mut scenario, &belt, 0.1)?;
    let attempts = (belt.length() / 0.1 * reader.config().attempt_rate) as usize;
    println!(
        "inventory: {} reads from ~{} attempts ({:.0}% read rate)",
        trace.len(),
        attempts,
        100.0 * trace.len() as f64 / attempts as f64
    );

    // Track through the read zone. Each window must span enough belt
    // travel to constrain the geometry (the paper's scanning-range lesson:
    // ~0.6-0.8 m works best at 0.8 m depth).
    let mut config = TrackerConfig::belt_along_x(antenna_center, 0.1);
    config.window = 700; // ~6 s of reads = ~0.6 m of travel
    config.stride = 120;
    let tracker = ConveyorTracker::new(config)?;
    let reads: Vec<(f64, f64)> = trace.samples().iter().map(|s| (s.time, s.phase)).collect();
    let t0 = Instant::now();
    let track = tracker.track(&reads)?;
    let elapsed = t0.elapsed().as_secs_f64();

    println!("\n  time | estimated x | true x | error");
    for tp in &track {
        let truth_x = start.x + 0.1 * tp.time;
        println!(
            "{:>5.1} s | {:+9.4} m | {:+.4} m | {:4.1} mm",
            tp.time,
            tp.position.x,
            truth_x,
            (tp.position.x - truth_x).abs() * 1000.0
        );
    }
    println!(
        "\n{} windows solved in {:.1} ms total ({:.2} ms each) — easily real-time",
        track.len(),
        elapsed * 1e3,
        elapsed * 1e3 / track.len().max(1) as f64
    );
    Ok(())
}
