//! Full 3D phase calibration with the paper's three-line scan (Fig. 11).
//!
//! The tag traverses three parallel lines (serpentine, so the unwrapped
//! phase profile stays continuous); LION locates the phase center in 3D
//! with the structured pair-selection scheme, then derives the center
//! displacement and the hardware phase offset (paper Eq. 17).
//!
//! ```bash
//! cargo run --release --example antenna_calibration_3d
//! ```

use lion::geom::ThreeLineScan;
use lion::linalg::stats;
use lion::prelude::*;

fn main() -> Result<(), lion::Error> {
    let physical_center = Point3::new(0.0, 0.8, 0.1);
    let antenna = Antenna::builder(physical_center)
        .phase_center_displacement(0.024, -0.015, 0.018)
        .phase_offset(3.98)
        .build();
    let planted_displacement = antenna.phase_center_displacement();
    let planted_offset = antenna.phase_offset() + 1.1; // + tag offset below

    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-cal").with_phase_offset(1.1))
        .seed(42)
        .build()?;

    // The three-line scan: x in [-0.4, 0.4], depth offset y_o = 0.2,
    // height offset z_o = 0.2.
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2)?;
    let trace = scenario.scan(&scan.to_path(), 0.1, 100.0)?;
    println!(
        "scanned {} samples over a {:.2} m serpentine path",
        trace.len(),
        {
            use lion::geom::Trajectory;
            scan.to_path().length()
        }
    );

    let config = LocalizerConfig {
        pair_strategy: PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        },
        ..LocalizerConfig::default()
    };
    let calibration = Calibrator::new(config)
        .with_adaptive(None)
        .calibrate(&trace.to_measurements(), physical_center)?;

    println!("planted displacement : {planted_displacement}");
    println!(
        "estimated displacement: {}",
        calibration.center_displacement
    );
    println!(
        "center error          : {:.2} mm",
        (calibration.center_displacement - planted_displacement).norm() * 1000.0
    );
    let offset_err = stats::circular_diff(calibration.phase_offset, planted_offset).abs();
    println!(
        "phase offset          : {:.3} rad (planted {:.3}, error {:.4} rad)",
        calibration.phase_offset,
        stats::wrap_angle(planted_offset),
        offset_err
    );
    println!(
        "offset spread         : {:.4} rad (small = trustworthy center)",
        calibration.offset_spread
    );
    Ok(())
}
