//! Quickstart: locate an RFID antenna's true phase center with LION.
//!
//! A simulated antenna is mounted at a known physical position, but — like
//! real hardware — actually transmits from a phase center a couple of
//! centimeters away. One tag pass along a linear slide is enough for LION
//! to pinpoint the phase center in 2D.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lion::prelude::*;

fn main() -> Result<(), lion::Error> {
    // The installer measured the antenna at (0, 0.8) m... but the phase
    // center hides 2.1 cm to the side and 1.2 cm closer to the track.
    let physical_center = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(physical_center)
        .phase_center_displacement(0.021, -0.012, 0.0)
        .phase_offset(2.74)
        .build();
    let truth = antenna.phase_center();

    // One pass of a tag along a 0.8 m track at 10 cm/s, read at 100 Hz.
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-quickstart").with_phase_offset(1.3))
        .seed(7)
        .build()?;
    let track = LineSegment::along_x(-0.4, 0.4, 0.0, 0.0)?;
    let trace = scenario.scan(&track, 0.1, 100.0)?;
    println!("collected {} phase samples", trace.len());

    // LION: unwrap, pair, solve the radical-line system, recover the
    // perpendicular coordinate from the reference distance.
    let config = LocalizerConfig {
        side_hint: Some(physical_center),
        ..LocalizerConfig::default()
    };
    let estimate = Localizer2d::new(config).locate(&trace.to_measurements())?;

    println!("physical center : {physical_center}");
    println!("true phase center: {truth}");
    println!("LION estimate    : {}", estimate.position);
    println!(
        "error vs truth   : {:.2} mm  (vs {:.1} mm if you trusted the physical center)",
        estimate.position.to_xy().distance(truth.to_xy()) * 1000.0,
        physical_center.to_xy().distance(truth.to_xy()) * 1000.0
    );
    println!(
        "solved {} radical-line equations in {} reweighting iterations",
        estimate.equation_count, estimate.iterations
    );
    Ok(())
}
