//! Rotating-tag scanning (paper Sec. V-F2, Fig. 21): LION is trajectory-
//! agnostic, so a turntable replaces the linear slide when that is more
//! convenient.
//!
//! A tag spins on a turntable 0.7 m in front of the antenna; LION locates
//! the antenna from one revolution. The error shrinks as the rotation
//! radius grows, and concentrates along the center→antenna direction.
//!
//! ```bash
//! cargo run --release --example rotating_tag
//! ```

use lion::prelude::*;

fn main() -> Result<(), lion::Error> {
    let target = Point3::new(0.0, 0.7, 0.0);
    let antenna = Antenna::builder(target).build();
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("spinner").with_phase_offset(0.4))
        .seed(21)
        .build()?;

    println!("radius | estimate           | err_x  | err_y  | total");
    for radius in [0.05, 0.10, 0.15, 0.20] {
        let turntable = CircularArc::turntable(Point3::ORIGIN, radius)?;
        // Average a few revolutions per radius.
        let mut ex = 0.0;
        let mut ey = 0.0;
        let mut et = 0.0;
        let mut last = Point3::ORIGIN;
        const REVS: usize = 5;
        for _ in 0..REVS {
            let trace = scenario.scan(&turntable, 0.1, 100.0)?;
            let config = LocalizerConfig {
                side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
                // Pair spacing must fit on the circle.
                pair_strategy: lion::core::PairStrategy::Interval {
                    interval: (radius * 0.9_f64).min(0.2),
                },
                ..LocalizerConfig::default()
            };
            let est = Localizer2d::new(config).locate(&trace.to_measurements())?;
            ex += (est.position.x - target.x).abs() / REVS as f64;
            ey += (est.position.y - target.y).abs() / REVS as f64;
            et += est.distance_error(target) / REVS as f64;
            last = est.position;
        }
        println!(
            "{:.2} m | ({:+.4}, {:.4}) | {:5.2} cm | {:5.2} cm | {:5.2} cm",
            radius,
            last.x,
            last.y,
            ex * 100.0,
            ey * 100.0,
            et * 100.0
        );
    }
    println!("\nas in the paper: y-error (toward the antenna) dominates and");
    println!("both errors shrink as the rotation radius grows.");
    Ok(())
}
