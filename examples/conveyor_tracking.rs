//! Conveyor scenario: a calibrated antenna locates the start position of
//! each tagged item moving past it — the paper's industrial motivation.
//!
//! Localizing a tag with one antenna is the relative-frame mirror of
//! localizing an antenna with one tag: the item's *trajectory shape* is
//! known (the conveyor), so LION solves for the antenna position in the
//! item-start frame and subtracts. The example also times LION against
//! the Tagoram-style hologram on the same data.
//!
//! ```bash
//! cargo run --release --example conveyor_tracking
//! ```

use std::time::Instant;

use lion::baselines::hologram::{self, HologramConfig, SearchVolume};
use lion::prelude::*;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn main() -> Result<(), lion::Error> {
    // Calibrated antenna 0.8 m above the belt (we aim at the true phase
    // center, as one would after running the calibration example).
    let antenna_center = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(antenna_center).build();
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("item"))
        .environment(Environment::indoor_lab())
        .noise(NoiseModel::indoor_default())
        .seed(2024)
        .build()?;

    println!("item | true start | LION estimate | error | LION time | DAH time");
    let mut lion_total = 0.0;
    let mut dah_total = 0.0;
    for item in 0..8 {
        // Items enter the read zone at slightly different positions.
        let p0 = Point3::new(-0.55 + 0.03 * item as f64, 0.0, 0.0);
        let belt = LineSegment::new(p0, Point3::new(p0.x + 0.8, 0.0, 0.0))?;
        let trace = scenario.scan(&belt, 0.1, 100.0)?;
        // Known shape: express positions relative to the unknown start.
        let relative: Vec<(Point3, f64)> = trace
            .samples()
            .iter()
            .map(|s| (Point3::new(s.position.x - p0.x, 0.0, 0.0), s.phase))
            .collect();

        let hint = Point3::new(0.4, 0.8, 0.0);
        let config = LocalizerConfig {
            side_hint: Some(hint),
            ..LocalizerConfig::default()
        };
        let t0 = Instant::now();
        let est = Localizer2d::new(config).locate(&relative)?;
        let lion_time = t0.elapsed().as_secs_f64();
        lion_total += lion_time;
        let start = Point3::new(
            antenna_center.x - est.position.x,
            antenna_center.y - est.position.y,
            0.0,
        );
        let error = start.to_xy().distance(p0.to_xy());

        // The hologram route, for comparison (decimated input, 1 mm grid).
        let dec: Vec<(Point3, f64)> = relative.iter().step_by(20).copied().collect();
        let t0 = Instant::now();
        let _ = hologram::locate(
            &dec,
            SearchVolume::square_2d(hint, 0.1),
            &HologramConfig {
                grid_size: 0.001,
                wavelength: LAMBDA,
                augmented: true,
            },
        )?;
        let dah_time = t0.elapsed().as_secs_f64();
        dah_total += dah_time;

        println!(
            "{item:>4} | ({:+.3}, 0.000) | ({:+.3}, {:+.3}) | {:>5.1} mm | {:>7.2} ms | {:>7.1} ms",
            p0.x,
            start.x,
            start.y,
            error * 1000.0,
            lion_time * 1e3,
            dah_time * 1e3,
        );
    }
    println!(
        "\ntotals: LION {:.1} ms vs DAH {:.0} ms ({:.0}x speedup at equal-or-better accuracy)",
        lion_total * 1e3,
        dah_total * 1e3,
        dah_total / lion_total.max(1e-9)
    );
    Ok(())
}
