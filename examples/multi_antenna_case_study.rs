//! The paper's case study (Sec. V-F1, Figs. 19–20): three antennas locate
//! a static tag with a differential hologram, at three calibration levels.
//!
//! 1. **No calibration** — physical centers, raw phases.
//! 2. **Center calibration** — LION-estimated phase centers.
//! 3. **Full calibration** — phase centers *and* per-antenna offsets.
//!
//! The paper measured 8.49 → 5.76 → 4.68 cm on its real rig.
//!
//! ```bash
//! cargo run --release --example multi_antenna_case_study
//! ```

use lion::baselines::hologram::SearchVolume;
use lion::baselines::multi_antenna::{locate_tag, AntennaReading, MultiAntennaConfig};
use lion::geom::ThreeLineScan;
use lion::linalg::stats;
use lion::prelude::*;

fn main() -> Result<(), lion::Error> {
    // Three antennas in a line, 0.3 m apart, each with its own hidden
    // displacement and hardware offset (the offsets are the paper's
    // measured 3.98 / 2.74 / 4.07 rad).
    let offsets = [3.98, 2.74, 4.07];
    let displacements = [
        Vec3::new(0.024, -0.010, 0.012),
        Vec3::new(-0.018, 0.015, -0.020),
        Vec3::new(0.012, 0.022, 0.008),
    ];
    let antennas: Vec<Antenna> = (0..3)
        .map(|i| {
            Antenna::builder(Point3::new(-0.3 + 0.3 * i as f64, 0.0, 0.0))
                .phase_center_displacement(
                    displacements[i].x,
                    displacements[i].y,
                    displacements[i].z,
                )
                .phase_offset(offsets[i])
                .boresight(Vec3::new(0.0, 1.0, 0.0))
                .build()
        })
        .collect();

    let scenario_for = |antenna: Antenna, seed: u64| {
        ScenarioBuilder::new()
            .antenna(antenna)
            .tag(Tag::new("case-tag").with_phase_offset(0.9))
            .environment(Environment::indoor_lab())
            .noise(NoiseModel::indoor_default())
            .seed(seed)
            .build()
            .expect("components set")
    };

    // Step 1: calibrate each antenna with a three-line scan in front of it.
    println!("calibrating antennas with the three-line scan (Fig. 11)...");
    let mut calibrations = Vec::new();
    for (i, antenna) in antennas.iter().enumerate() {
        let physical = antenna.physical_center();
        let mut scenario = scenario_for(antenna.clone(), 40 + i as u64);
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2)?;
        let m: Vec<(Point3, f64)> = scan
            .to_path()
            .sample(0.1, 100.0)
            .into_iter()
            .map(|w| {
                let world =
                    Point3::new(w.position.x + physical.x, 0.7 - w.position.y, w.position.z);
                let s = scenario.measure_at(w.time, world);
                (world, s.phase)
            })
            .collect();
        let cfg = LocalizerConfig {
            pair_strategy: PairStrategy::AllWithMinSeparation {
                min_separation: 0.18,
                max_pairs: 4000,
            },
            side_hint: Some(physical),
            ..LocalizerConfig::default()
        };
        let cal = Calibrator::new(cfg)
            .with_adaptive(None)
            .calibrate(&m, physical)?;
        println!(
            "  A{}: displacement {} ({:.1} mm), offset {:.2} rad (planted {:.2}+tag)",
            i + 1,
            cal.center_displacement,
            cal.center_displacement.norm() * 1000.0,
            cal.phase_offset,
            offsets[i],
        );
        calibrations.push(cal);
    }

    // Step 2: the three antennas read a static tag at (−10 cm, 80 cm).
    let tag_pos = Point3::new(-0.1, 0.8, 0.0);
    let phases: Vec<f64> = antennas
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let mut scenario = scenario_for(a.clone(), 90 + i as u64);
            let trace = scenario.read_static(tag_pos, 500, 100.0).expect("valid");
            stats::circular_mean(&trace.phases()).expect("concentrated")
        })
        .collect();

    // Step 3: differential hologram at the three calibration levels.
    let volume = SearchVolume::square_2d(Point3::new(0.0, 0.8, 0.0), 0.2);
    let config = MultiAntennaConfig::default();
    let locate = |positions: &[Point3], offs: Option<&[f64]>| -> Result<f64, lion::Error> {
        let readings: Vec<AntennaReading> = positions
            .iter()
            .zip(&phases)
            .enumerate()
            .map(|(i, (&p, &ph))| {
                let r = AntennaReading::new(p, ph);
                match offs {
                    Some(o) => r.with_offset(o[i]),
                    None => r,
                }
            })
            .collect();
        Ok(locate_tag(&readings, volume, &config)?
            .position
            .distance(tag_pos))
    };
    let physical: Vec<Point3> = antennas.iter().map(|a| a.physical_center()).collect();
    let centers: Vec<Point3> = calibrations.iter().map(|c| c.phase_center).collect();
    let cal_offsets: Vec<f64> = calibrations.iter().map(|c| c.phase_offset).collect();

    let raw = locate(&physical, None)?;
    let center_only = locate(&centers, None)?;
    let full = locate(&centers, Some(&cal_offsets))?;
    println!("\ntag localization error (truth at {tag_pos}):");
    println!("  no calibration     : {:.2} cm", raw * 100.0);
    println!("  center calibration : {:.2} cm", center_only * 100.0);
    println!("  full calibration   : {:.2} cm", full * 100.0);
    println!("  paper              : 8.49 -> 5.76 -> 4.68 cm");
    Ok(())
}
