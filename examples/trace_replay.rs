//! Offline workflow: record a scan to a CSV log, validate it, replay it
//! through the calibration pipeline.
//!
//! Real deployments log reader reports to flat files and post-process
//! them; this example shows the same loop against the simulator —
//! including the physics sanity check ([`lion::core::quality`]) that
//! catches unwrap slips before they poison the solve.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use lion::core::quality::validate_profile;
use lion::geom::ThreeLineScan;
use lion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Record -----------------------------------------------------------
    let physical = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(physical)
        .phase_center_displacement(0.019, -0.011, 0.014)
        .phase_offset(3.1)
        .build();
    let truth = antenna.phase_center();
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("logged-tag").with_phase_offset(0.6))
        .seed(99)
        .build()?;
    let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2)?;
    let trace = scenario.scan(&scan.to_path(), 0.1, 100.0)?;

    let path = std::env::temp_dir().join("lion_trace_replay.csv");
    trace.write_csv(std::fs::File::create(&path)?)?;
    println!(
        "recorded {} samples to {} ({} bytes)",
        trace.len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // --- Reload & validate -------------------------------------------------
    let reloaded = PhaseTrace::read_csv(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    println!(
        "reloaded  {} samples (λ = {:.4} m)",
        reloaded.len(),
        reloaded.wavelength()
    );

    let profile = PhaseProfile::from_wrapped(&reloaded.to_measurements(), reloaded.wavelength())?;
    let quality = validate_profile(&profile, 0.008); // 3σ slack for N(0, 0.1)
    println!(
        "quality: {}/{} steps within the triangle-inequality bound ({:.1}%), trustworthy: {}",
        quality.steps - quality.violations.len(),
        quality.steps,
        quality.fraction_ok() * 100.0,
        quality.is_trustworthy(reloaded.wavelength())
    );

    // --- Replay through calibration ----------------------------------------
    let config = LocalizerConfig {
        pair_strategy: PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        },
        ..LocalizerConfig::default()
    };
    let calibration = Calibrator::new(config)
        .with_adaptive(None)
        .calibrate(&reloaded.to_measurements(), physical)?;
    println!(
        "calibrated from the log: center {} ({:.2} mm from truth), offset {:.3} rad",
        calibration.phase_center,
        calibration.phase_center.distance(truth) * 1000.0,
        calibration.phase_offset
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
