//! A compact latency dashboard for one batch run.
//!
//! Runs the conveyor workload, exports the telemetry registry snapshot
//! to a JSON line, parses it back (exactly what an external collector
//! would do with `target/telemetry/snapshot.jsonl`), and renders a
//! per-stage percentile table from the round-tripped data — proving the
//! export is lossless enough to drive a dashboard.
//!
//! ```bash
//! cargo run --release --example telemetry_dashboard
//! # record a causal trace + health report + registry snapshot:
//! cargo run --release --example telemetry_dashboard -- --trace target/trace
//! # expose the run over the live scrape plane, holding after the batch:
//! cargo run --release --example telemetry_dashboard -- --serve 127.0.0.1:9185 --hold
//! ```
//!
//! With `--trace <dir>` the run installs the flight recorder and feeds a
//! calibration-health [`Doctor`] one observation per job, then writes
//! `<dir>/telemetry_dashboard.trace.json` (Chrome trace-event JSON —
//! load it at <https://ui.perfetto.dev>), `<dir>/health.json`, and
//! `<dir>/snapshot.jsonl`.
//!
//! With `--serve <addr>` the run starts the HTTP scrape server before
//! the batch, installs the telemetry hub with the metrics history plane
//! enabled, and publishes the batch report into the global registry, so
//! `/metrics`, `/snapshot`, `/trace`, `/profile`, `/query`, and
//! `/alerts` all carry the run. Add `--hold` to keep serving after the
//! table renders (Enter stops).

use lion::obs::export::{append_json_line, parse_json_line, to_json_line, write_chrome_trace};
use lion::obs::SolveObservation;
use lion::prelude::*;
use std::path::PathBuf;

/// Parses `--trace <dir>` from the command line, if present.
fn trace_dir_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace requires a directory"),
            ));
        }
    }
    None
}

/// Parses `--serve <addr>` from the command line, if present.
fn serve_addr_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--serve" {
            return Some(args.next().expect("--serve requires an address"));
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_dir = trace_dir_from_args();
    let server = serve_addr_from_args()
        .map(TelemetryServer::bind)
        .transpose()?;
    // Serving wants span rings for /trace and /profile even without
    // --trace; --trace's own (larger) recorder wins when both are given.
    let recorder = trace_dir
        .as_ref()
        .map(|_| install_flight_recorder(1 << 16))
        .or_else(|| server.as_ref().map(|_| install_flight_recorder(1 << 14)));
    // Serving also installs the telemetry hub with the history plane
    // enabled, so `/query` has stored samples to range over and
    // `/alerts` has a live (if rule-less) engine to render.
    let hub = server.as_ref().map(|_| {
        let hub = install_telemetry_hub(SloConfig::default());
        hub.enable_history(HistoryConfig::default());
        hub
    });
    if let Some(server) = &server {
        println!(
            "serving http://{}/metrics (and /health /snapshot /trace /profile /query /alerts)",
            server.local_addr()
        );
    }
    // Collect span durations too: the engine emits an `engine.job` span
    // per job, and the core stages emit lion.unwrap/smooth/pairs/solve.
    let collector = std::sync::Arc::new(lion::obs::CollectingSubscriber::new());
    lion::obs::set_global_subscriber(collector.clone());

    let antenna = Antenna::builder(Point3::new(0.0, 0.8, 0.0))
        .phase_center_displacement(0.013, -0.008, 0.0)
        .build();
    let track = LineSegment::along_x(-0.45, 0.45, 0.0, 0.0)?;
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-dashboard"))
        .noise(NoiseModel::paper_default())
        .seed(41_213)
        .build()?;
    // A sample of jobs runs the adaptive sweep so the dashboard shows
    // the shared-prefix reuse counters alongside the stage latencies.
    let mut jobs = Vec::new();
    for case in 0..64 {
        let trace = scenario.scan(&track, 0.25, 120.0)?;
        let measurements = trace.to_measurements();
        let config = LocalizerConfig::paper();
        jobs.push(if case % 8 == 0 {
            Job::adaptive_2d(measurements, config, AdaptiveConfig::default())
        } else {
            Job::locate_2d(measurements, config)
        });
    }
    let outcome = Engine::new().run(&jobs);
    lion::obs::clear_global_subscriber();

    // Export → parse round trip, as an external collector would see it.
    let registry = Registry::new();
    outcome.report.record_into(&registry);
    let line = to_json_line("telemetry_dashboard", &registry.snapshot());
    let (label, snapshot) = parse_json_line(&line)?;
    // Publish the batch report to the global registry too, so a scraper
    // hitting /metrics or /snapshot sees the same stage histograms.
    outcome.report.record_into(lion::obs::global());
    if let Some(hub) = &hub {
        // One history sample of the just-published report, so `/query`
        // serves the run's counters and stage histograms as points.
        hub.sample_tick();
        if let Some(summary) = hub.with_alerts(|alerts| alerts.summary()) {
            println!("alerts: {summary}");
        }
    }

    println!("== telemetry dashboard: {label} ==");
    println!(
        "jobs {} | failed {} | workers {}",
        snapshot.counter("engine.jobs").unwrap_or(0),
        snapshot.counter("engine.failed").unwrap_or(0),
        snapshot.gauge("engine.workers").unwrap_or(0.0),
    );
    println!(
        "adaptive: {} trials | {} cells reused | {} gram rebuilds",
        snapshot.counter("engine.adaptive_trials").unwrap_or(0),
        snapshot
            .counter("engine.adaptive_cells_reused")
            .unwrap_or(0),
        snapshot
            .counter("engine.adaptive_gram_rebuilds")
            .unwrap_or(0),
    );
    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "jobs", "p50 µs", "p90 µs", "p99 µs", "max µs"
    );
    for stage in [
        "unwrap",
        "smooth",
        "pairs",
        "solve",
        "adaptive",
        "job_busy",
        "queue_wait",
        "execute",
    ] {
        let Some(hist) = snapshot.histogram(&format!("engine.stage.{stage}_ns")) else {
            continue;
        };
        let us = |ns: u64| ns as f64 / 1e3;
        println!(
            "{:<12} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            stage,
            hist.count(),
            us(hist.p50()),
            us(hist.p90()),
            us(hist.p99()),
            us(hist.max()),
        );
    }

    // The span view of the same run, straight from the subscriber.
    println!("\n== span durations (collected live) ==");
    for (name, hist) in collector.span_histograms() {
        println!(
            "{:<14} n={:<5} p50 {:>8.1} µs  p99 {:>8.1} µs",
            name,
            hist.count(),
            hist.p50() as f64 / 1e3,
            hist.p99() as f64 / 1e3,
        );
    }

    // `--trace <dir>`: dump the causal trace, a batch-level health
    // report (one observation per job), and the registry snapshot.
    if let (Some(dir), Some(recorder)) = (trace_dir, recorder) {
        std::fs::create_dir_all(&dir)?;
        let tail = recorder.drain();
        lion::obs::uninstall_flight_recorder();
        let mut doctor = Doctor::new(DoctorConfig::default());
        for (i, result) in outcome.results.iter().enumerate() {
            let estimate = result.as_ref().ok().and_then(|output| output.estimate());
            doctor.observe(SolveObservation {
                time: i as f64,
                mean_residual: estimate.map_or(f64::NAN, |e| e.mean_residual),
                converged: estimate.is_some(),
                solve_ns: outcome.timings[i].execute_ns,
                reads_in: 1,
                shed: u64::from(result.is_err()),
                solver_disagreement_m: None,
                resolve_fallback: None,
            });
        }
        let trace_path = dir.join("telemetry_dashboard.trace.json");
        write_chrome_trace(&trace_path, tail.records())?;
        let health = doctor.report();
        let health_path = dir.join("health.json");
        std::fs::write(&health_path, health.to_json())?;
        let snapshot_path = dir.join("snapshot.jsonl");
        append_json_line(&snapshot_path, "telemetry_dashboard", &snapshot)?;
        println!();
        print!("{health}");
        println!(
            "trace written    : {} ({} spans/events, {} dropped)",
            trace_path.display(),
            tail.records().len(),
            tail.total_dropped(),
        );
        println!("health written   : {}", health_path.display());
        println!("snapshot written : {}", snapshot_path.display());
        println!("view the trace at https://ui.perfetto.dev (open trace file)");
    }
    if let Some(server) = server {
        if std::env::args().any(|a| a == "--hold") {
            println!("\nserving until Enter is pressed...");
            let mut line = String::new();
            std::io::stdin().read_line(&mut line)?;
        }
        server.shutdown();
        uninstall_telemetry_hub();
    }
    Ok(())
}
