//! Online calibration of a conveyor portal, one read at a time.
//!
//! The batch sibling (`conveyor_batch.rs`) waits for each case's full
//! trace before solving. A live portal can't wait: reads trickle in —
//! out of order, some lost — and the operator wants a running antenna
//! estimate *now*, plus a signal that it has settled. That is the
//! streaming pipeline:
//!
//! [`SampleSource`] (simulated reader: bounded out-of-order delivery +
//! i.i.d. read loss) → [`StreamLocalizer`] (bounded sliding window,
//! cadence re-solves, hysteresis convergence) → estimates.
//!
//! ```bash
//! cargo run --release --example conveyor_stream
//! # record a causal trace + health report + registry snapshot:
//! cargo run --release --example conveyor_stream -- --trace target/trace
//! # live telemetry plane: run a whole portal fleet and scrape it:
//! cargo run --release --example conveyor_stream -- --serve 127.0.0.1:9184 --hold
//! ```
//!
//! With `--trace <dir>` the run installs the flight recorder and a
//! calibration-health [`Doctor`], then writes `<dir>/conveyor_stream.trace.json`
//! (Chrome trace-event JSON — load it at <https://ui.perfetto.dev>),
//! `<dir>/health.json`, and `<dir>/snapshot.jsonl`.
//!
//! With `--serve <addr>` the run switches to **fleet mode**: it installs
//! the telemetry hub + flight recorder, enables the metrics history
//! plane (embedded time-series store + alert rules + background
//! sampler), starts the HTTP scrape server, and drives twelve doctored
//! portal streams through [`Engine::run_streams`] while `/metrics`,
//! `/health`, `/snapshot`, `/trace`, `/profile`, `/query`, and `/alerts`
//! answer live. Add `--hold` to keep the server up after the fleet
//! drains (press Enter to stop) — port `0` picks an ephemeral port and
//! prints it.

use lion::obs::SolveObservation;
use lion::prelude::*;
use std::path::PathBuf;
use std::time::Instant;

/// Parses `--trace <dir>` from the command line, if present.
fn trace_dir_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace requires a directory"),
            ));
        }
    }
    None
}

/// Parses `--serve <addr>` from the command line, if present.
fn serve_addr_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--serve" {
            return Some(args.next().expect("--serve requires an address"));
        }
    }
    None
}

/// One portal's read feed: a calibration tag rides the belt past an
/// antenna at `x_offset`, with seeded delivery jitter and loss.
fn portal_reads(x_offset: f64, seed: u64) -> Result<Vec<StreamRead>, Box<dyn std::error::Error>> {
    let antenna = Antenna::builder(Point3::new(x_offset, 0.8, 0.0))
        .phase_center_displacement(0.013, -0.008, 0.0)
        .build();
    let track = LineSegment::along_x(x_offset - 0.45, x_offset + 0.45, 0.0, 0.0)?;
    let trace = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-fleet"))
        .noise(NoiseModel::paper_default())
        .seed(seed)
        .build()?
        .scan(&track, 0.25, 120.0)?;
    Ok(SampleSource::replay(&trace)
        .with_shuffle(6, seed)
        .with_drop_probability(0.10, seed)
        .map(StreamRead::from)
        .collect())
}

/// Fleet mode: twelve doctored portal streams under the live scrape
/// plane. Every solve feeds the hub's SLO window; every stream's health
/// report lands in the fleet rollup.
fn serve_fleet(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let hold = std::env::args().any(|a| a == "--hold");
    lion::obs::install_flight_recorder(1 << 14);
    let hub = install_telemetry_hub(SloConfig::default());
    // History plane: the embedded time-series store (raw/10s/1m tiers),
    // the default recording + doctor alert rules, and a background
    // sampler that snapshots the registry once a second while held.
    hub.enable_history(HistoryConfig::default());
    let sampler = hub.start_background_sampler(std::time::Duration::from_millis(250));
    let server = TelemetryServer::bind(addr)?;
    println!("== conveyor fleet: live telemetry ==");
    println!("scrape  http://{}/metrics", server.local_addr());
    for route in ["health", "snapshot", "trace", "profile", "query", "alerts"] {
        println!("        http://{}/{route}", server.local_addr());
    }
    println!();

    // Twelve labelled portals along the line. Portals 9-11 run starved
    // ingress queues so the shed watchdog has something to fire on.
    let mut jobs = Vec::new();
    for portal in 0..12u64 {
        let config = StreamConfig::builder()
            .window_capacity(320)
            .min_window_len(48)
            .cadence(Cadence::EveryReads(25))
            .label(format!("portal-{portal}"))
            .build()?;
        let reads = portal_reads(0.6 * portal as f64, 20_200 + portal)?;
        let mut job = StreamJob::new(reads, config).with_doctor(DoctorConfig::default());
        if portal >= 9 {
            job = job.with_burst(100).with_queue_capacity(25);
        }
        jobs.push(job);
    }
    let engine = Engine::builder().workers(4).build()?;
    let outcomes = engine.run_streams(&jobs);
    let solved = outcomes.iter().filter(|o| o.is_ok()).count();
    println!("fleet drained: {solved}/{} streams solved", outcomes.len());
    let report = hub.fleet_report();
    report.record_into(lion::obs::global());
    print!("{report}");
    if let Some(summary) = hub.with_alerts(|alerts| alerts.summary()) {
        println!("{summary}");
    }
    if let Some(tsdb) = hub.tsdb() {
        let stats = tsdb.stats();
        println!(
            "history: {} series, {} points stored ({} evicted), {} bytes of {} cap",
            stats.series,
            stats.inserted_points,
            stats.evicted_points,
            stats.bytes,
            stats.memory_cap_bytes,
        );
    }

    if hold {
        println!();
        println!("serving until Enter is pressed...");
        let mut line = String::new();
        std::io::stdin().read_line(&mut line)?;
    }
    sampler.stop();
    server.shutdown();
    uninstall_telemetry_hub();
    lion::obs::uninstall_flight_recorder();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(addr) = serve_addr_from_args() {
        return serve_fleet(&addr);
    }
    let trace_dir = trace_dir_from_args();
    let recorder = trace_dir.as_ref().map(|_| install_flight_recorder(1 << 16));
    let mut doctor = trace_dir
        .as_ref()
        .map(|_| Doctor::new(DoctorConfig::default()));
    // The portal: one antenna over the belt, its true phase center a
    // hidden ~1.5 cm off the physical mount.
    let antenna_pos = Point3::new(0.0, 0.8, 0.0);
    let antenna = Antenna::builder(antenna_pos)
        .phase_center_displacement(0.013, -0.008, 0.0)
        .build();
    let truth = antenna.phase_center();

    // A calibration tag rides the belt through the read zone.
    let track = LineSegment::along_x(-0.45, 0.45, 0.0, 0.0)?;
    let mut scenario = ScenarioBuilder::new()
        .antenna(antenna)
        .tag(Tag::new("E51-stream"))
        .noise(NoiseModel::paper_default())
        .seed(20_108)
        .build()?;
    let trace = scenario.scan(&track, 0.25, 120.0)?;
    let total_simulated = trace.samples().len();

    // The "live" feed: reads delivered up to 6 positions out of order,
    // 10% lost outright. Both effects are seeded — rerun and you get the
    // identical stream.
    let source = SampleSource::replay(&trace)
        .with_shuffle(6, 7)
        .with_drop_probability(0.10, 7);

    // The pipeline: keep the freshest 320 reads, re-solve every 25, call
    // it converged after 3 consecutive solves that each moved < 15 mm
    // (noisy portal reads; tighten for a quieter site).
    let config = StreamConfig::builder()
        .window_capacity(320)
        .min_window_len(48)
        .cadence(Cadence::EveryReads(25))
        .convergence(ConvergenceConfig {
            enter_eps: 15e-3,
            exit_eps: 50e-3,
            hold: 3,
        })
        .build()?;
    let mut stream = StreamLocalizer::new(config)?;

    println!("== conveyor stream: online calibration ==");
    println!("true phase center: ({:+.4}, {:+.4}) m", truth.x, truth.y);
    println!();
    println!("  seq   reads  window   span(s)    x(m)      y(m)    err(mm)  conf  state");

    let mut first_converged_at: Option<u64> = None;
    let mut observed_reads = 0u64;
    // One root span over the whole feed: every stage span the pipeline
    // emits (window → unwrap → … → solve) nests under it, so the
    // recorded Chrome trace shows one job tree instead of loose roots.
    let feed_span = lion::obs::span!("conveyor.feed");
    for sample in source {
        // Clock reads only while the doctor watches solve latency.
        let pushed_at = doctor.is_some().then(Instant::now);
        let emitted = match stream.push(StreamRead::from(sample)) {
            Ok(emitted) => emitted,
            // A transiently degenerate window (warm-up) is not fatal to
            // a live pipeline: keep feeding reads.
            Err(_) => continue,
        };
        if let Some(est) = emitted {
            if let Some(doctor) = doctor.as_mut() {
                doctor.observe(SolveObservation {
                    time: est.trigger_time,
                    mean_residual: est.mean_residual,
                    converged: est.converged,
                    solve_ns: pushed_at
                        .map_or(0, |t| lion::obs::saturating_ns_between(t, Instant::now())),
                    reads_in: est.reads_seen - observed_reads,
                    shed: 0,
                    solver_disagreement_m: None,
                    resolve_fallback: None,
                });
                observed_reads = est.reads_seen;
            }
            let err_mm = est.position.distance(truth) * 1e3;
            println!(
                "  {:3}  {:6}  {:6}  {:7.3}  {:+.4}  {:+.4}  {:7.2}  {:.2}  {}",
                est.seq,
                est.reads_seen,
                est.window_len,
                est.window_span,
                est.position.x,
                est.position.y,
                err_mm,
                est.confidence,
                if est.converged {
                    "converged"
                } else {
                    "settling"
                },
            );
            if est.converged && first_converged_at.is_none() {
                first_converged_at = Some(est.reads_seen);
            }
        }
    }
    // End of belt: solve whatever the window still holds.
    let final_estimate = stream.flush()?.expect("stream saw reads");
    drop(feed_span);

    println!();
    println!("reads simulated     : {total_simulated}");
    println!(
        "reads delivered     : {} ({} lost in the air)",
        stream.reads_seen(),
        total_simulated as u64 - stream.reads_seen()
    );
    println!("reads rejected late : {}", stream.rejected_late());
    println!("estimates emitted   : {}", stream.estimates_emitted());
    match first_converged_at {
        Some(reads) => println!("converged after     : {reads} reads"),
        None => println!("converged after     : (never)"),
    }
    println!(
        "final estimate      : ({:+.4}, {:+.4}) m, {:.2} mm off truth",
        final_estimate.position.x,
        final_estimate.position.y,
        final_estimate.position.distance(truth) * 1e3
    );
    if let Some(offset) = final_estimate.phase_offset {
        println!(
            "phase offset        : {:.4} rad (spread {:.4})",
            offset,
            final_estimate.offset_spread.unwrap_or(f64::NAN)
        );
    }

    // The pipeline instrumented itself: solve latency and read→estimate
    // lag live in the global registry.
    let snapshot = lion::obs::global().snapshot();
    for name in [
        lion::stream::SOLVE_HISTOGRAM,
        lion::stream::STREAM_LAG_HISTOGRAM,
    ] {
        if let Some(h) = snapshot.histogram(name) {
            println!(
                "{name}: n={} p50={}ns p99={}ns",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
    }

    // `--trace <dir>`: dump everything observability collected.
    if let (Some(dir), Some(recorder)) = (trace_dir, recorder) {
        std::fs::create_dir_all(&dir)?;
        let tail = recorder.drain();
        lion::obs::uninstall_flight_recorder();
        let trace_path = dir.join("conveyor_stream.trace.json");
        lion::obs::export::write_chrome_trace(&trace_path, tail.records())?;
        let health = doctor.expect("doctor runs alongside the recorder").report();
        let health_path = dir.join("health.json");
        std::fs::write(&health_path, health.to_json())?;
        let snapshot_path = dir.join("snapshot.jsonl");
        lion::obs::export::append_json_line(&snapshot_path, "conveyor_stream", &snapshot)?;
        println!();
        print!("{health}");
        println!(
            "trace written       : {} ({} spans/events, {} dropped)",
            trace_path.display(),
            tail.records().len(),
            tail.total_dropped(),
        );
        println!("health written      : {}", health_path.display());
        println!("snapshot written    : {}", snapshot_path.display());
        println!("view the trace at https://ui.perfetto.dev (open trace file)");
    }
    Ok(())
}
